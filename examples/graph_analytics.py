"""Graph analytics across all system designs.

The workloads that motivated NDPBridge: irregular graph algorithms whose
vertices live in different banks, so every edge crossing a bank boundary
becomes a message, and power-law degree distributions concentrate work in
a few banks.  This example runs BFS and PageRank on an R-MAT graph over
the full design matrix and prints a Fig.-10-style comparison.

Run:  python examples/graph_analytics.py
"""

from repro import Design, make_app, run_app, small_config
from repro.apps import BfsApp, PageRankApp
from repro.sim import DeterministicRNG
from repro.workloads import rmat_graph

DESIGNS = [Design.C, Design.B, Design.W, Design.O]


def run_design_matrix(app_factory, label: str) -> None:
    print(f"\n--- {label} ---")
    baseline = None
    print(f"{'design':>8} {'makespan':>12} {'speedup':>8} "
          f"{'wait':>6} {'avg/max':>8}")
    for design in DESIGNS:
        result = run_app(app_factory(), small_config(design))
        m = result.metrics
        if baseline is None:
            baseline = m.makespan
        print(f"{design.value:>8} {m.makespan:>12,} "
              f"{baseline / m.makespan:>7.2f}x "
              f"{m.wait_fraction:>6.1%} {m.avg_over_max:>8.2f}")


def main() -> None:
    # Build one shared power-law graph so every design sees identical
    # input (the generators are fully deterministic anyway).
    rng = DeterministicRNG(99, "example")
    graph = rmat_graph(2048, 8, rng.substream("g"))

    run_design_matrix(
        lambda: BfsApp(graph=graph.undirected(), source=0, seed=99),
        "BFS on a 2048-vertex R-MAT graph",
    )
    run_design_matrix(
        lambda: PageRankApp(graph=graph, iterations=3, seed=99),
        "PageRank (3 iterations) on the same graph",
    )

    print(
        "\nReading the table: design C forwards every cross-bank message"
        "\nthrough the host CPU; B adds the hardware bridges; W adds"
        "\ntraditional work stealing; O is full NDPBridge with"
        "\ndata-transfer-aware balancing (hot-block selection, in-advance"
        "\nscheduling, fine-grained budgets)."
    )


if __name__ == "__main__":
    main()
