"""Writing your own application against the task-based API (Section IV).

This example implements 1-D stencil smoothing -- the paper's own
illustration of push-based communication: instead of pulling neighbor
values (which would need coherent remote reads), every cell *pushes* its
value to its neighbors as tasks, then applies the received values.  Two
bulk-synchronous timestamps per smoothing step keep the phases ordered.

It shows the full application surface:
  * allocating a partitioned array (``system.partition.allocate``),
  * registering task functions (and an optional dispatch-time cost),
  * spawning children with ``ctx.enqueue_task`` at ``ts`` and ``ts + 1``,
  * seeding and verifying a run.

Run:  python examples/custom_application.py
"""

from repro import Design, run_app, small_config
from repro.apps.base import NDPApplication
from repro.runtime.task import Task

PUSH_COST = 6
APPLY_COST = 10


class StencilApp(NDPApplication):
    """Iterative 3-point smoothing over a distributed 1-D array."""

    name = "stencil"

    def __init__(self, n_cells: int = 4096, steps: int = 4, seed: int = 1):
        super().__init__(seed)
        self.n_cells = n_cells
        self.steps = steps
        self.values = []
        self.acc = []

    def build(self, system) -> None:
        rng = self.rng.substream("init")
        self.values = [rng.uniform(0.0, 100.0) for _ in range(self.n_cells)]
        self.acc = [0.0] * self.n_cells
        self.cells = system.partition.allocate(
            "stencil_cells", self.n_cells, element_size=64
        )
        system.registry.register("push", self._push)
        system.registry.register("recv", self._recv)
        system.registry.register("apply", self._apply)

    # Phase 1 (ts = 2k): each cell pushes its value to both neighbors and
    # schedules its own apply for the next timestamp.
    def _push(self, ctx, task: Task) -> None:
        i = self.index(self.cells, task.data_addr)
        step = task.args[0]
        for j in (i - 1, i + 1):
            if 0 <= j < self.n_cells:
                ctx.enqueue_task(
                    "recv", task.ts, self.addr(self.cells, j),
                    workload=PUSH_COST, args=(self.values[i],),
                )
        ctx.enqueue_task(
            "apply", task.ts + 1, task.data_addr,
            workload=APPLY_COST, args=(step,),
        )

    # Still phase 1: accumulate a neighbor's pushed value locally.
    def _recv(self, ctx, task: Task) -> None:
        i = self.index(self.cells, task.data_addr)
        self.acc[i] += task.args[0]

    # Phase 2 (ts = 2k+1): fold the accumulated neighbor values in, and
    # kick off the next smoothing step.
    def _apply(self, ctx, task: Task) -> None:
        i = self.index(self.cells, task.data_addr)
        step = task.args[0]
        neighbors = (i > 0) + (i < self.n_cells - 1)
        self.values[i] = (self.values[i] + self.acc[i]) / (1 + neighbors)
        self.acc[i] = 0.0
        if step + 1 < self.steps:
            ctx.enqueue_task(
                "push", task.ts + 1, task.data_addr,
                workload=PUSH_COST, args=(step + 1,),
            )

    def seed_tasks(self, system) -> None:
        for i in range(self.n_cells):
            system.seed_task(Task(
                func="push", ts=0,
                data_addr=self.addr(self.cells, i),
                workload=PUSH_COST, args=(0,),
            ))

    def reference(self):
        rng = self.rng.substream("init")
        vals = [rng.uniform(0.0, 100.0) for _ in range(self.n_cells)]
        for _ in range(self.steps):
            prev = list(vals)
            for i in range(self.n_cells):
                total, count = prev[i], 1
                if i > 0:
                    total += prev[i - 1]
                    count += 1
                if i < self.n_cells - 1:
                    total += prev[i + 1]
                    count += 1
                vals[i] = total / count
        return vals

    def verify(self) -> bool:
        return all(
            abs(a - b) < 1e-9 for a, b in zip(self.values, self.reference())
        )


def main() -> None:
    app = StencilApp(n_cells=4096, steps=4, seed=5)
    config = small_config(Design.O)
    print(f"Running a custom {app.steps}-step stencil over "
          f"{app.n_cells} cells on design {config.design.value}...")
    result = run_app(app, config)
    m = result.metrics
    print(f"  verified            : {app.verify()}")
    print(f"  makespan            : {m.makespan:,} cycles")
    print(f"  tasks executed      : {m.tasks_executed:,}")
    print(f"  epochs (timestamps) : {result.system.tracker.epoch + 1}")
    print(f"  cross-bank messages : {m.task_messages:,} "
          f"(cells at partition boundaries)")


if __name__ == "__main__":
    main()
