"""Skewed index lookups and dynamic load balancing.

The pure load-imbalance scenario: linked lists and hash-table buckets are
each fully resident in one bank, so lookups need no communication at all
-- but Zipf-skewed queries hammer a few hot structures, and under static
assignment the hot banks dominate the runtime while the rest idle.  This
example shows how NDPBridge's data-first scheduling migrates the hot
blocks (with their queued tasks) to idle units, and how the hot-data
sketch picks what to move.

Run:  python examples/skewed_index_balancing.py
"""

from repro import Design, make_app, run_app, small_config
from repro.apps import LinkedListApp


def run_with_skew(skew: float) -> None:
    print(f"\n--- linked-list traversal, Zipf skew s = {skew} ---")
    print(f"{'design':>8} {'makespan':>10} {'speedup':>8} {'avg/max':>8} "
          f"{'blocks lent':>12}")
    baseline = None
    for design in (Design.B, Design.W, Design.O):
        app = LinkedListApp(
            n_lists=1024, n_queries=2048, skew=skew, seed=21
        )
        result = run_app(app, small_config(design))
        m = result.metrics
        lent = result.system.stats.sum_counters(".blocks_lent")
        if baseline is None:
            baseline = m.makespan
        print(f"{design.value:>8} {m.makespan:>10,} "
              f"{baseline / m.makespan:>7.2f}x {m.avg_over_max:>8.2f} "
              f"{lent:>12,}")


def main() -> None:
    # Uniform queries: the static partition is already balanced, and the
    # balancer correctly stays (mostly) out of the way.
    run_with_skew(0.0)
    # Mild and heavy skew: the hotter the queries, the more blocks the
    # balancer migrates and the bigger its win over bridges alone (B).
    run_with_skew(0.8)
    run_with_skew(1.2)

    print(
        "\nUnder skew, design B's avg/max collapses (a few banks do all"
        "\nthe work) while W and O migrate hot lists; O uses the sketch +"
        "\nreserved queue to move the *hottest* blocks first, paying less"
        "\ntraffic per unit of migrated work."
    )


if __name__ == "__main__":
    main()
