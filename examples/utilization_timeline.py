"""Visualizing load imbalance with ASCII utilization timelines.

Runs the same skewed workload on designs B and O and renders per-unit
busy timelines: under B a few banks glow while the rest idle; under O the
balancer migrates hot blocks and the raster evens out.  Also prints the
mean/median/peak utilization summary.

Run:  python examples/utilization_timeline.py
"""

from repro import Design, run_app, small_config
from repro.analysis.timeline import system_timeline, utilization_summary
from repro.apps import HashTableApp


def show(design: Design) -> None:
    app = HashTableApp(
        n_buckets=1024, n_keys=4096, n_queries=4096, skew=1.1, seed=31
    )
    result = run_app(app, small_config(design))
    print()
    print(system_timeline(result.system, columns=48, max_rows=16))
    mean, median, peak = utilization_summary(result.system)
    print(f"utilization mean={mean:.1%} median={median:.1%} "
          f"peak={peak:.1%}  makespan={result.metrics.makespan:,}")


def main() -> None:
    print("Hash-table probing under Zipf-skewed keys (s = 1.1).")
    print("Rows are NDP units sorted hottest-first; density = busy share.")
    show(Design.B)
    show(Design.O)
    print(
        "\nDesign B leaves the hot banks saturated while the rest idle;"
        "\ndesign O lends hot buckets outward, raising mean utilization"
        "\nand cutting the makespan."
    )


if __name__ == "__main__":
    main()
