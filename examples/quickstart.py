"""Quickstart: run one application on NDPBridge and print the results.

This is the smallest end-to-end use of the library:

1. pick a system design (Table II: C / B / W / O, plus H and R),
2. build an application (the paper's eight, via ``make_app``),
3. ``run_app`` simulates the machine cycle-by-cycle and verifies the
   distributed result against a reference implementation,
4. inspect the metrics the paper reports (makespan, wait time, balance).

Run:  python examples/quickstart.py
"""

from repro import Design, default_config, make_app, run_app, small_config


def main() -> None:
    # A 64-unit single-rank system keeps this example snappy; swap in
    # default_config(...) for the paper's 512-unit Table-I machine.
    config = small_config(Design.O)

    # Tree traversal: the paper's running example (Algorithm 1).  Each
    # query walks the BST, spawning a child task wherever the next node
    # lives -- upper tree levels constantly cross banks.
    app = make_app("tree", scale=0.25, seed=7)

    print(f"Running {app.name!r} on design {config.design.value} "
          f"({config.topology.total_units} NDP units)...")
    result = run_app(app, config)
    m = result.metrics

    print(f"  makespan            : {m.makespan:,} cycles "
          f"({m.makespan * config.cycle_ns / 1e6:.2f} ms at 400 MHz)")
    print(f"  tasks executed      : {m.tasks_executed:,}")
    print(f"  avg/max unit time   : {m.avg_over_max:.2f} "
          f"(1.0 = perfectly balanced)")
    print(f"  wait fraction       : {m.wait_fraction:.1%} "
          f"of the critical unit's time")
    print(f"  task messages       : {m.task_messages:,}")
    print(f"  blocks migrated     : {m.data_messages:,}")
    if m.energy:
        print(f"  energy              : {m.energy.total_uj:.1f} uJ "
              f"({m.energy.comm_dram_pj / m.energy.total_pj:.1%} "
              f"communication)")

    # Compare against the host-forwarding baseline (design C).
    baseline = run_app(make_app("tree", scale=0.25, seed=7),
                       small_config(Design.C))
    speedup = baseline.metrics.makespan / m.makespan
    print(f"\nNDPBridge (O) is {speedup:.2f}x faster than host forwarding "
          f"(C) on this workload.")


if __name__ == "__main__":
    main()
