"""Open-loop tail-latency benchmark: the index apps driven as services.

The paper evaluates closed-loop makespan; this bench drives ``tree``
open-loop (Section VII's hottest-root workload) with two tenants --
a Poisson tenant whose Zipf skew *shifts* mid-run and a bursty MMPP
tenant -- and reports, per design C/B/W/O:

* exact p50/p99/p999 birth->completion latency per tenant at a
  reference arrival rate, and
* the maximum sustainable throughput: the highest offered rate in a
  sweep whose p99 latency still meets the SLO (a multiple of the
  design's own unloaded median -- queues stay bounded).

Every query enters at the root bank, so under load the root unit is the
capacity bottleneck for C/B; hot-block balancing (W/O) lends the upper
tree levels out and sustains higher rates with flatter tails -- the
open-loop face of Fig. 10.  The bench asserts only the qualitative
shape: all designs complete the stream, and B/W/O tail latency is
distinguishable from C.  Numbers land in ``BENCH_openloop.json``.

``NDPBRIDGE_BENCH_SMOKE=1`` shrinks the stream and records under
``*_smoke`` keys.  Cells run through the exec layer, so they cache and
fan out like every other figure's cells.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List

from repro.config import Design
from repro.exec.runner import CellRequest, execute_cells
from repro.workloads.openloop import OpenLoopSpec, TenantSpec

from .common import BENCH_SEED, bench_config, format_table

SMOKE = os.environ.get("NDPBRIDGE_BENCH_SMOKE", "0") not in ("0", "")

BENCH_OPENLOOP_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_openloop.json"
)

APP = "tree"
SCALE = 0.1 if SMOKE else 0.35
UNITS = 64 if SMOKE else None  # None -> BENCH_UNITS (default 128)
DESIGNS = [Design.C, Design.B, Design.W, Design.O]

#: Reference stream: tenant "hot" shifts skew 0.6 -> 1.2 mid-run (the
#: hot set moves); tenant "burst" is MMPP-2 with 5x burst intensity.
#: A tree hop costs ~1k cycles of DRAM latency, so the root bank serves
#: roughly one query per ~100 cycles: the reference gaps sit just past
#: C's knee while the balanced designs still have headroom.
N_HOT = 150 if SMOKE else 400
N_BURST = 80 if SMOKE else 200
GAP_HOT = 200.0
GAP_BURST = 400.0
WARMUP = 1000
SKEW_SHIFT_AT = 10000 if SMOKE else 30000

#: Offered-rate sweep: arrival gaps scaled by these factors (1.0 is the
#: reference rate; smaller = faster arrivals).  The slowest point is the
#: unloaded baseline that anchors each design's SLO.
GAP_FACTORS = [8.0, 4.0, 2.0, 1.0, 0.5]

#: A rate is sustainable when hot-tenant p99 latency stays within
#: SLO_MULT x the design's own unloaded median (its p50 at the slowest
#: swept rate).  Queue growth past the knee blows through this within
#: one factor-of-two rate step.
SLO_MULT = 3.0


def openloop_spec(gap_factor: float = 1.0) -> OpenLoopSpec:
    return OpenLoopSpec(
        tenants=(
            TenantSpec(
                name="hot",
                n_requests=N_HOT,
                mean_gap=GAP_HOT * gap_factor,
                skew=((0, 0.6), (SKEW_SHIFT_AT, 1.2)),
            ),
            TenantSpec(
                name="burst",
                n_requests=N_BURST,
                mean_gap=GAP_BURST * gap_factor,
                arrival="bursty",
                burst_gap=GAP_BURST * gap_factor / 5.0,
                skew=((0, 1.0),),
            ),
        ),
        warmup=WARMUP,
    )


def _suffix(key: str) -> str:
    return f"{key}_smoke" if SMOKE else key


def record_openloop(key: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_openloop.json`` under ``key``."""
    data: Dict[str, object] = {}
    if BENCH_OPENLOOP_JSON.exists():
        try:
            data = json.loads(BENCH_OPENLOOP_JSON.read_text())
        except ValueError:
            data = {}
    data[key] = payload
    BENCH_OPENLOOP_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


def _cell(design: Design, gap_factor: float) -> CellRequest:
    return CellRequest(
        app=APP,
        config=bench_config(design, units=UNITS),
        scale=SCALE,
        seed=BENCH_SEED,
        openloop=openloop_spec(gap_factor),
    )


def test_openloop_tail_latency_and_throughput():
    """p50/p99/p999 per tenant + max sustainable rate, per design."""
    # One flat cell list: every design at every swept rate (the sweep
    # contains the reference rate and the unloaded SLO anchor).
    cells = [_cell(d, f) for d in DESIGNS for f in GAP_FACTORS]
    all_metrics = execute_cells(cells)

    sweep: Dict[Design, List] = {d: [] for d in DESIGNS}
    it = iter(all_metrics)
    for design in DESIGNS:
        for _factor in GAP_FACTORS:
            sweep[design].append(next(it))
    reference = {
        d: sweep[d][GAP_FACTORS.index(1.0)] for d in DESIGNS
    }

    # -- latency table at the reference rate ---------------------------
    rows = []
    payload: Dict[str, object] = {
        "app": APP, "scale": SCALE, "seed": BENCH_SEED,
        "units": UNITS or int(os.environ.get("NDPBRIDGE_BENCH_UNITS",
                                             "128")),
        "warmup": WARMUP,
        "designs": {},
    }
    for design in DESIGNS:
        m = reference[design]
        extra = m.extra
        assert extra["ol/completed"] == extra["ol/requests"], (
            f"{design.value}: open-loop stream did not drain"
        )
        per_design: Dict[str, object] = {"makespan": m.makespan}
        for tenant in ("hot", "burst"):
            stats = {
                "count": int(extra[f"lat/{tenant}/count"]),
                "p50": int(extra[f"lat/{tenant}/p500"]),
                "p99": int(extra[f"lat/{tenant}/p990"]),
                "p999": int(extra[f"lat/{tenant}/p999"]),
                "max": int(extra[f"lat/{tenant}/max"]),
            }
            per_design[tenant] = stats
            rows.append([
                design.value, tenant, stats["count"], stats["p50"],
                stats["p99"], stats["p999"], stats["max"],
            ])
        payload["designs"][design.value] = per_design  # type: ignore[index]

    print(format_table(
        f"Open-loop {APP}: per-tenant latency (cycles) at reference rate",
        ["design", "tenant", "n", "p50", "p99", "p999", "max"],
        rows,
    ))

    # -- max sustainable throughput ------------------------------------
    # Unloaded anchor: the design's hot-tenant median at the slowest
    # swept rate.  A rate is sustainable while hot-tenant p99 holds the
    # SLO (SLO_MULT x that anchor); report the fastest such rate.
    tp_rows = []
    slowest = max(GAP_FACTORS)
    for design in DESIGNS:
        unloaded = sweep[design][GAP_FACTORS.index(slowest)]
        slo = SLO_MULT * unloaded.extra["lat/hot/p500"]
        best = 0.0
        best_factor = None
        for factor, m in zip(GAP_FACTORS, sweep[design]):
            extra = m.extra
            offered = (
                1000.0 * extra["ol/requests"] / extra["ol/last_arrival"]
            )
            sustainable = extra["lat/hot/p990"] <= slo
            if sustainable and offered > best:
                best = offered
                best_factor = factor
        payload["designs"][design.value]["max_sustainable_per_kcycle"] = (  # type: ignore[index]
            round(best, 3)
        )
        payload["designs"][design.value]["slo_p99_cycles"] = int(slo)  # type: ignore[index]
        tp_rows.append([
            design.value, round(best, 2), int(slo),
            best_factor if best_factor is not None else "-",
        ])
    print(format_table(
        "Max sustainable throughput (requests / 1000 cycles)",
        ["design", "max rate", "SLO p99<=", "gap factor"],
        tp_rows,
    ))

    record_openloop(_suffix(f"openloop_{APP}"), payload)

    # -- shape assertions ----------------------------------------------
    # The bridge designs time every message through real fabric models,
    # so their tails cannot coincide with C's; balancing (W/O) moves hot
    # blocks and visibly reshapes the tail.  Exact values are pinned by
    # the golden tests, not here.
    c_tail = (
        payload["designs"]["C"]["hot"]["p99"],  # type: ignore[index]
        payload["designs"]["C"]["burst"]["p99"],  # type: ignore[index]
    )
    for design in ("B", "W", "O"):
        tail = (
            payload["designs"][design]["hot"]["p99"],  # type: ignore[index]
            payload["designs"][design]["burst"]["p99"],  # type: ignore[index]
        )
        assert tail != c_tail, (
            f"design {design} tail latency indistinguishable from C: {tail}"
        )
