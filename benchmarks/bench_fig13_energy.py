"""Fig. 13: energy comparison of C / B / W / O.

The paper breaks energy into core+SRAM, local DRAM accesses, DRAM accesses
for cross-unit communication, and static; NDPBridge consumes the least
overall (56.4% reduction vs C on average), mostly because balanced load
finishes faster (less static + core energy) even though balancing itself
moves more data.  ll/ht/spmv show no communication energy savings for B
(they do not communicate without balancing).
"""

import pytest

from repro.config import Design

from .common import ALL_APPS, format_table, geomean, run_matrix

DESIGNS = [Design.C, Design.B, Design.W, Design.O]


def _run_fig13():
    return run_matrix(ALL_APPS, DESIGNS)


def test_fig13_energy_comparison(benchmark):
    results = benchmark.pedantic(
        _run_fig13, rounds=1, iterations=1, warmup_rounds=0
    )

    rows = []
    for app in ALL_APPS:
        o_total = results[app]["O"].energy.total_pj
        rows.append([app] + [
            results[app][d.value].energy.total_pj / o_total for d in DESIGNS
        ])
    gm = {
        d.value: geomean(
            results[a][d.value].energy.total_pj
            / results[a]["O"].energy.total_pj
            for a in ALL_APPS
        )
        for d in DESIGNS
    }
    rows.append(["geomean"] + [gm[d.value] for d in DESIGNS])
    print(format_table(
        "Fig. 13 - total energy normalized to O",
        ["app", "C", "B", "W", "O"], rows,
    ))

    # Component breakdown for one communication-heavy app.
    breakdown_rows = []
    for d in DESIGNS:
        e = results["bfs"][d.value].energy
        breakdown_rows.append([
            d.value,
            e.core_sram_pj / 1e6,
            e.local_dram_pj / 1e6,
            e.comm_dram_pj / 1e6,
            e.static_pj / 1e6,
            e.total_pj / 1e6,
        ])
    print(format_table(
        "Fig. 13 - bfs energy breakdown (uJ)",
        ["design", "core+SRAM", "local DRAM", "comm DRAM", "static",
         "total"],
        breakdown_rows,
    ))

    # Shape: O consumes less than C on average (paper: -56.4%).
    assert gm["C"] > 1.0, "NDPBridge must save energy vs host forwarding"
    # Communication-free apps: B saves no energy over C (no messages to
    # accelerate) and actually consumes more due to the added structures
    # and state gathering -- exactly the paper's observation.
    for app in ("ll", "ht", "spmv"):
        c_total = results[app]["C"].energy.total_pj
        b_total = results[app]["B"].energy.total_pj
        assert b_total >= 0.95 * c_total
