"""Extension experiment: load-balancing benefit vs workload skew.

Sweeps the Zipf exponent of the hash-table workload from uniform to
heavily skewed and measures O's speedup over B.  The paper's thesis in
one curve: with no skew the balancer should stay out of the way (~1x),
and its win must grow monotonically-ish with skew.
"""

import pytest

from repro.apps.hash_table import HashTableApp
from repro.config import Design
from repro.runtime.runner import run_app

from .common import BENCH_SEED, bench_config, format_table

SKEWS = [0.0, 0.6, 1.0, 1.3]


def _run():
    results = {}
    for skew in SKEWS:
        for design in (Design.B, Design.O):
            app = HashTableApp(
                n_buckets=2048, n_keys=8192, n_queries=8192,
                skew=skew, seed=BENCH_SEED,
            )
            cfg = bench_config(design)
            results[(skew, design.value)] = run_app(app, cfg).metrics
    return results


def test_skew_sensitivity(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = []
    gains = {}
    for skew in SKEWS:
        gain = (
            results[(skew, "B")].makespan / results[(skew, "O")].makespan
        )
        gains[skew] = gain
        rows.append([
            skew,
            results[(skew, "B")].makespan,
            results[(skew, "O")].makespan,
            gain,
            results[(skew, "B")].avg_over_max,
            results[(skew, "O")].avg_over_max,
        ])
    print(format_table(
        "Balancing benefit vs Zipf skew (ht, O over B)",
        ["skew", "B cycles", "O cycles", "O/B speedup",
         "B avg/max", "O avg/max"], rows,
    ))

    # Shape: balancing must not hurt the uniform case much, and must help
    # the heavily skewed case clearly more than the uniform one.
    assert gains[0.0] > 0.7, "balancer should stay out of balanced runs"
    assert gains[1.3] > gains[0.0], "skew must increase the LB win"
    assert gains[1.3] > 1.1, "heavy skew must show a real win"
