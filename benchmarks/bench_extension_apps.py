"""Extension applications under the design matrix.

Four workloads beyond the paper's evaluated eight, built on the same
public API: the paper's own Section-IV stencil illustration, a
Zipf-skewed histogram (the minimal hub-contention pattern), a two-phase
hash join (the databases the intro motivates), and triangle counting
(graph mining with fat adjacency payloads).  Together they bracket the
design space: communication-regular (stencil), serial-hot-element
(histogram), bulk-synchronous two-phase (join), and payload-heavy (tc).
"""

import pytest

from repro.config import Design

from .common import format_table, geomean, run_matrix, speedups_vs

DESIGNS = [Design.C, Design.B, Design.W, Design.O]
APPS = ["stencil", "hist", "join", "tc"]


def _run():
    return run_matrix(APPS, DESIGNS)


def test_extension_apps(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    speedups = speedups_vs(results, "C")
    rows = [
        [app] + [speedups[app][d.value] for d in DESIGNS] for app in APPS
    ]
    print(format_table(
        "Extension apps - speedup over design C",
        ["app", "C", "B", "W", "O"], rows,
    ))

    # Stencil communicates across every partition boundary each step, and
    # triangle counting ships adjacency payloads everywhere: the bridges
    # must beat host forwarding on both.
    assert speedups["stencil"]["B"] > 1.0
    assert speedups["tc"]["B"] > 1.0
    # The two-phase join is communication-free under static assignment
    # (tuples are seeded at their bucket's home): B == C.
    assert abs(speedups["join"]["B"] - 1.0) < 0.05
    # Histogram's hub bins serialize wherever they live: balancing cannot
    # win big, but the data-transfer-aware policy must not melt down.
    assert speedups["hist"]["O"] >= 0.5 * speedups["hist"]["B"]
