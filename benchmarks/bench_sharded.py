"""Sharded-engine scaling benchmark: wall-clock vs shard count.

Tracks the repository's own parallel-engine performance (like
``bench_engine.py`` tracks the serial hot path): the fixed tree-on-O
workload runs under :func:`repro.runtime.shards.run_app_sharded` at
several machine sizes and shard counts, inline and with one forked
worker per shard, and the wall-clocks land in ``BENCH_sharded.json`` at
the repo root.

Speedups are *recorded, never asserted*: CI runners are frequently
core-limited (a single-core box pays the fork/barrier overhead with no
concurrency to show for it), so the JSON notes ``cpu_count`` next to
every measurement, and rows measured with fewer cores than shards carry
``"meaningful": false`` -- the wall-clock is real, but the speedup
ratio says nothing about the engine and downstream plots should skip it.

``NDPBRIDGE_BENCH_SMOKE=1`` shrinks the matrix for CI (128 units,
shards 1/2); smoke results are recorded under separate keys.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.config import ConfigError, Design, scaled_config, validate_shardable
from repro.runtime.shards import run_app_sharded

SMOKE = os.environ.get("NDPBRIDGE_BENCH_SMOKE", "0") not in ("0", "")

BENCH_SHARDED_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_sharded.json"
)

APP = "tree"
DESIGN = Design.O
SEED = 17
SCALE = 0.2 if SMOKE else 1.0
#: (units, shard counts swept).  1024 carries the full curve; 512 is the
#: paper-default machine the acceptance speedup is recorded on.
MATRIX = (
    [(128, [1, 2])]
    if SMOKE
    else [(128, [1, 2]), (512, [1, 4]), (1024, [1, 2, 4, 8])]
)


def _suffix(key: str) -> str:
    return f"{key}_smoke" if SMOKE else key


def record_sharded(key: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_sharded.json`` under ``key``."""
    data: Dict[str, object] = {}
    if BENCH_SHARDED_JSON.exists():
        try:
            data = json.loads(BENCH_SHARDED_JSON.read_text())
        except ValueError:
            data = {}
    data[key] = payload
    BENCH_SHARDED_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


def _time_run(units: int, shards: int, parallel: Optional[bool]) -> dict:
    cfg = scaled_config(units, DESIGN, seed=42)
    t0 = time.perf_counter()
    result = run_app_sharded(
        APP, cfg, scale=SCALE, seed=SEED, shards=shards,
        verify=False, parallel=parallel,
    )
    wall_s = time.perf_counter() - t0
    info = result.system
    return {
        "wall_s": round(wall_s, 4),
        "makespan": result.metrics.makespan,
        "events": info.events_processed,
        "windows": info.windows,
        "boundary_tasks": info.boundary_messages,
    }


def test_sharded_scaling_curve():
    """Wall-clock curve over shard counts; serial shards=1 is the base."""
    cpu_count = os.cpu_count() or 1
    curve: List[dict] = []
    for units, shard_counts in MATRIX:
        cfg = scaled_config(units, DESIGN, seed=42)
        base_wall = None
        for shards in shard_counts:
            try:
                validate_shardable(cfg, shards)
            except ConfigError:
                continue
            row = {"units": units, "shards": shards}
            row.update(_time_run(units, shards, parallel=shards > 1))
            if shards == 1:
                base_wall = row["wall_s"]
            row["speedup"] = (
                round(base_wall / row["wall_s"], 3)
                if base_wall and row["wall_s"] > 0
                else None
            )
            # A speedup measured with fewer cores than shards is noise:
            # the workers time-slice one core and the row reads as a
            # slowdown of the engine rather than of the machine.  Keep
            # the wall-clock (it is still a real measurement) but mark
            # the ratio as not meaningful so downstream plots skip it.
            row["meaningful"] = shards <= cpu_count
            curve.append(row)
            note = "" if row["meaningful"] else " [not meaningful:" \
                f" {cpu_count} cpu(s) < {shards} shards]"
            print(
                f"\nsharded: {units:5d} units x {shards} shards -> "
                f"{row['wall_s']:.3f}s"
                + (
                    f" (speedup {row['speedup']}x)"
                    if row["speedup"] is not None
                    else ""
                )
                + note
            )
    record_sharded(_suffix("sharded_scaling"), {
        "app": APP,
        "design": DESIGN.value,
        "scale": SCALE,
        "seed": SEED,
        "cpu_count": cpu_count,
        "curve": curve,
    })
    assert curve, "no shardable configuration in the matrix"


def test_sharded_inline_overhead():
    """Window/barrier machinery cost with parallelism taken out.

    Inline N-shard vs serial isolates the protocol overhead (windows,
    barrier bookkeeping, boundary serialization) from fork/IPC costs --
    the number that should stay close to 1.0 regardless of core count.
    """
    units = 128
    serial = _time_run(units, 1, parallel=None)
    inline = _time_run(units, 2, parallel=False)
    overhead = (
        inline["wall_s"] / serial["wall_s"] if serial["wall_s"] > 0 else None
    )
    record_sharded(_suffix("sharded_inline_overhead"), {
        "units": units,
        "serial_wall_s": serial["wall_s"],
        "inline2_wall_s": inline["wall_s"],
        "overhead_ratio": round(overhead, 3) if overhead else None,
        "windows": inline["windows"],
        "boundary_tasks": inline["boundary_tasks"],
    })
    print(
        f"\nsharded inline overhead: serial {serial['wall_s']:.3f}s, "
        f"inline-2 {inline['wall_s']:.3f}s "
        f"({overhead:.2f}x, {inline['windows']} windows)"
    )
