"""Fig. 15: impact of the DRAM chip DQ pin width (x4 / x8 / x16).

The channel stays 64 bits, so x4 parts mean 16 chips (1024 banks) with
narrow 1.2 GB/s per-chip links, and x16 parts mean 4 chips (256 banks)
with fat links.  Paper shape: with x4 chips communication dominates, so
the bridges alone (B) give the largest gain (2.33x over C); with x16
chips bandwidth is plentiful and the *load balancing* (W, O over B)
contributes most.
"""

from dataclasses import replace

import pytest

from repro.config import Design, SystemConfig, TopologyConfig

from .common import BENCH_SEED, SWEEP_APPS, format_table, geomean, run_one

DESIGNS = [Design.C, Design.B, Design.W, Design.O]
WIDTHS = [4, 8, 16]


def _width_config(dq_bits, design):
    # One channel at bench scale; chips * dq = 64 bits, 8 banks per chip.
    topo = TopologyConfig(
        channels=1, ranks_per_channel=1, chips_per_rank=64 // dq_bits,
        dq_bits_per_chip=dq_bits,
    )
    return SystemConfig(topology=topo, seed=BENCH_SEED).with_design(design)


def _run_fig15():
    from .common import BENCH_SCALE

    results = {}
    for width in WIDTHS:
        for design in DESIGNS:
            cfg = _width_config(width, design)
            # The bank count varies with chip width (128/64/32 here); keep
            # per-unit work constant so the sweep isolates link bandwidth,
            # as the paper's fixed large inputs do.
            scale = BENCH_SCALE * cfg.topology.total_units / 64
            for app in SWEEP_APPS:
                results[(width, design.value, app)] = run_one(
                    app, design, config=cfg, scale=scale
                )
    return results


def test_fig15_dq_pin_width(benchmark):
    results = benchmark.pedantic(
        _run_fig15, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = []
    gain = {}
    for width in WIDTHS:
        speedups = {
            d.value: geomean(
                results[(width, "C", app)].makespan
                / results[(width, d.value, app)].makespan
                for app in SWEEP_APPS
            )
            for d in DESIGNS
        }
        gain[width] = speedups
        rows.append([f"x{width}"] + [speedups[d.value] for d in DESIGNS])
    print(format_table(
        "Fig. 15 - geomean speedup over C per chip width",
        ["width", "C", "B", "W", "O"], rows,
    ))

    # Shape: B's (communication) gain is largest with narrow x4 links and
    # smallest with fat x16 links; O works at every width.
    assert gain[4]["B"] >= gain[16]["B"], (
        "bridge communication should matter most with narrow chips"
    )
    for width in WIDTHS:
        assert gain[width]["O"] > 1.0
