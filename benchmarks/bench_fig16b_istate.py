"""Fig. 16(b): state-gathering interval I_state.

STATE-GATHER runs every I_state cycles and feeds both the communication
triggering and the load balancer.  Too coarse reacts slowly; too fine
wastes link time.  The paper finds 2000 cycles retains full performance.
"""

from dataclasses import replace

import pytest

from repro.config import Design

from .common import SWEEP_APPS, bench_config, format_table, geomean, run_one

I_STATES = [500, 1000, 2000, 4000, 8000]


def _config(i_state):
    cfg = bench_config(Design.O)
    return cfg.replace(comm=replace(cfg.comm, i_state_cycles=i_state))


def _run_fig16b():
    results = {}
    for i_state in I_STATES:
        cfg = _config(i_state)
        for app in SWEEP_APPS:
            results[(i_state, app)] = run_one(app, Design.O, config=cfg)
    return results


def test_fig16b_istate_sweep(benchmark):
    results = benchmark.pedantic(
        _run_fig16b, rounds=1, iterations=1, warmup_rounds=0
    )
    base = geomean(results[(2000, app)].makespan for app in SWEEP_APPS)
    rows = []
    perf = {}
    for i_state in I_STATES:
        gm = geomean(results[(i_state, app)].makespan for app in SWEEP_APPS)
        perf[i_state] = base / gm
        rows.append([i_state, base / gm])
    print(format_table(
        "Fig. 16(b) - performance vs default I_state = 2000 cycles",
        ["I_state", "rel. performance"], rows,
    ))

    # Shape: the default retains close-to-best performance.
    assert perf[2000] >= 0.8 * max(perf.values())
