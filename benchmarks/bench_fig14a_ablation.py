"""Fig. 14(a): ablation of the data-transfer-aware techniques.

Starting from W (traditional work stealing with workload correction), the
paper applies each optimization alone -- +Adv (in-advance scheduling to
hide latency, +4.6%), +Fine (fine-grained stealing to avoid congestion,
1.19x), +Hot (hot data/task selection to reduce traffic, 1.29x) -- and all
together as O (1.35x over W).
"""

import pytest

from repro.config import Design, ablation_config

from .common import (
    ALL_APPS,
    BENCH_UNITS,
    bench_config,
    format_table,
    geomean,
    run_one,
)

VARIANTS = [
    ("W", dict(advance_trigger=False, fine_grained=False, hot_selection=False)),
    ("+Adv", dict(advance_trigger=True, fine_grained=False, hot_selection=False)),
    ("+Fine", dict(advance_trigger=False, fine_grained=True, hot_selection=False)),
    ("+Hot", dict(advance_trigger=False, fine_grained=False, hot_selection=True)),
    ("O", dict(advance_trigger=True, fine_grained=True, hot_selection=True)),
]


def _variant_config(flags):
    base = bench_config(Design.W, units=BENCH_UNITS)
    return ablation_config(base=base, seed=base.seed, **flags)


def _run_fig14a():
    results = {}
    for name, flags in VARIANTS:
        cfg = _variant_config(flags)
        for app in ALL_APPS:
            results[(name, app)] = run_one(app, cfg.design, config=cfg)
    return results


def test_fig14a_ablation(benchmark):
    results = benchmark.pedantic(
        _run_fig14a, rounds=1, iterations=1, warmup_rounds=0
    )
    gms = {}
    for name, _ in VARIANTS:
        gms[name] = geomean(
            results[("W", app)].makespan / results[(name, app)].makespan
            for app in ALL_APPS
        )
    rows = [[name, gms[name]] for name, _ in VARIANTS]
    print(format_table(
        "Fig. 14(a) - geomean speedup over W",
        ["variant", "speedup"], rows,
    ))

    # Shape: every single optimization helps on average, and the full
    # combination is the best variant.
    assert gms["O"] > 1.0, "combined optimizations must beat W"
    assert gms["O"] >= max(gms["+Adv"], gms["+Fine"], gms["+Hot"]) * 0.9, (
        "the combination should be at least on par with each alone"
    )
