"""Fig. 2: inefficiencies of the baseline DRAM-bank NDP architecture.

The paper's motivating experiment: tree traversal on design C (host-CPU
message forwarding, no load balancing).  The figure reports (a) the wait
time -- total execution time minus the critical unit's actual task
execution time, 32.9% in the paper -- and (b) the large gap between the
maximum and average per-unit time (load imbalance).
"""

import pytest

from repro.config import Design

from .common import bench_config, format_table, run_one


def _run_motivation():
    return run_one("tree", Design.C)


def test_fig02_tree_on_baseline(benchmark):
    metrics = benchmark.pedantic(
        _run_motivation, rounds=1, iterations=1, warmup_rounds=0
    )
    rows = [
        ["total (max unit) cycles", metrics.makespan],
        ["average unit time", int(metrics.avg_unit_time)],
        ["avg / max", metrics.avg_over_max],
        ["wait fraction of total", metrics.wait_fraction],
    ]
    print(format_table(
        "Fig. 2 - tree traversal on baseline design C",
        ["quantity", "value"], rows,
    ))
    # Paper: 32.9% wait and a large max/avg gap.  Shape assertions:
    assert metrics.wait_fraction > 0.10, "baseline should wait on the host"
    assert metrics.avg_over_max < 0.5, "baseline should be imbalanced"
