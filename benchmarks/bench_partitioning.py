"""Extension experiment: data partitioning schemes (the paper's future
work -- "better data partitioning schemes" across ranks).

Compares the default blocked layout (contiguous vertex ranges per bank)
against a striped layout (round-robin vertices) on the graph workloads.
Striping scatters the power-law hubs across banks -- better *static*
balance -- at the cost of destroying neighborhood locality (every edge
crosses banks).  The interesting question is how much dynamic balancing
(O) narrows the gap from the layout choice.
"""

import pytest

from repro.apps import BfsApp, PageRankApp
from repro.config import Design
from repro.runtime.runner import run_app

from .common import BENCH_SCALE, BENCH_SEED, bench_config, format_table

LAYOUTS = ["blocked", "striped"]
DESIGNS = [Design.B, Design.O]


def _apps(layout):
    n = max(256, int(4096 * BENCH_SCALE))
    n = 1 << (n - 1).bit_length()
    return {
        "bfs": BfsApp(n_vertices=n, seed=BENCH_SEED, layout=layout),
        "pr": PageRankApp(n_vertices=n // 4, iterations=3,
                          seed=BENCH_SEED, layout=layout),
    }


def _run():
    results = {}
    for layout in LAYOUTS:
        for design in DESIGNS:
            for name, app in _apps(layout).items():
                cfg = bench_config(design)
                results[(layout, design.value, name)] = run_app(
                    app, cfg
                ).metrics
    return results


def test_partitioning_schemes(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = []
    for name in ("bfs", "pr"):
        for layout in LAYOUTS:
            rows.append([
                name, layout,
                results[(layout, "B", name)].makespan,
                results[(layout, "O", name)].makespan,
                results[(layout, "B", name)].makespan
                / results[(layout, "O", name)].makespan,
            ])
    print(format_table(
        "Partitioning schemes (future-work extension)",
        ["app", "layout", "B cycles", "O cycles", "O gain"], rows,
    ))

    # Both layouts must produce correct results (run_app verifies) and
    # the balancer must never catastrophically regress either layout.
    for name in ("bfs", "pr"):
        for layout in LAYOUTS:
            b = results[(layout, "B", name)].makespan
            o = results[(layout, "O", name)].makespan
            assert o <= 1.5 * b
