"""Model-level ablations of design choices DESIGN.md calls out.

Not a paper figure: these benches quantify simulator design decisions so
their effect on reported numbers is on the record.

* **L1 cache** -- Table I gives every unit a 64 kB L1-D; without it a hot
  element pays a DRAM access per task and serial hot chains dominate.
* **Multi-chunk rounds** -- G_xfer as granularity (several chunks per
  round) vs as a hard per-round rate cap.
* **Host poll interval** -- design C's sensitivity to how often the host
  forwards mailboxes.
"""

from dataclasses import replace

import pytest

from repro.config import Design

from .common import bench_config, format_table, geomean, run_one

APPS = ["tree", "pr"]


def test_l1_cache_ablation(benchmark):
    def _run():
        results = {}
        cfg = bench_config(Design.B)
        from repro.config import SRAMConfig

        tiny_cache = cfg.replace(
            sram=replace(cfg.sram, l1d_kb=1)  # effectively no reuse
        )
        for app in APPS:
            results[("64kB", app)] = run_one(app, Design.B, config=cfg)
            results[("1kB", app)] = run_one(app, Design.B, config=tiny_cache)
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    gain = geomean(
        results[("1kB", app)].makespan / results[("64kB", app)].makespan
        for app in APPS
    )
    rows = [[app,
             results[("1kB", app)].makespan,
             results[("64kB", app)].makespan] for app in APPS]
    print(format_table(
        "Model ablation - per-unit L1 cache (design B)",
        ["app", "1kB L1", "64kB L1"], rows,
    ))
    print(f"geomean speedup from the Table-I L1: {gain:.2f}x")
    assert gain >= 1.0


def test_multichunk_round_ablation(benchmark):
    def _run():
        results = {}
        multi = bench_config(Design.B)
        single = multi.replace(
            comm=replace(multi.comm, max_chunks_per_round=1)
        )
        for app in APPS:
            results[("multi", app)] = run_one(app, Design.B, config=multi)
            results[("single", app)] = run_one(app, Design.B, config=single)
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    gain = geomean(
        results[("single", app)].makespan / results[("multi", app)].makespan
        for app in APPS
    )
    print(f"\nmulti-chunk rounds vs 1-chunk rate cap: {gain:.2f}x")
    assert gain >= 0.95


def test_host_poll_interval_sensitivity(benchmark):
    def _run():
        results = {}
        for interval in (500, 2000, 8000):
            cfg = bench_config(Design.C)
            cfg = cfg.replace(comm=replace(
                cfg.comm, host_poll_interval_cycles=interval
            ))
            for app in APPS:
                results[(interval, app)] = run_one(
                    app, Design.C, config=cfg
                )
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = []
    for interval in (500, 2000, 8000):
        gm = geomean(results[(interval, app)].makespan for app in APPS)
        rows.append([interval, int(gm)])
    print(format_table(
        "Design C sensitivity - host poll interval",
        ["interval (cycles)", "geomean makespan"], rows,
    ))
    # Slower polling cannot make the host path faster.
    assert rows[-1][1] >= rows[0][1] * 0.9
