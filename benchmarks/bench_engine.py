"""Engine microbenchmark: the perf trajectory of the simulation kernel.

Unlike the figure benches (which assert the *paper's* shapes), this file
tracks the *repository's own* performance: raw event throughput of
:class:`repro.sim.engine.Simulator`, the wall-clock of a fixed tree-on-O
run, and the cold-vs-warm wall-clock of the Fig.-10 matrix through the
``repro.exec`` cache.  Results append into ``BENCH_engine.json`` at the
repo root so successive PRs can see whether the hot path got faster.

``NDPBRIDGE_BENCH_SMOKE=1`` shrinks everything for CI (seconds, not
minutes); smoke results are recorded under separate keys so they never
overwrite full-scale numbers.
"""

from __future__ import annotations

import os
import time

from repro.config import Design, scaled_config
from repro.exec import ResultCache, run_matrix as exec_run_matrix
from repro.sim import Simulator

from .common import ALL_APPS, record_bench

SMOKE = os.environ.get("NDPBRIDGE_BENCH_SMOKE", "0") not in ("0", "")

#: Fixed engine-bench workload: deterministic, allocation-heavy enough to
#: exercise scheduling, light enough that the callbacks don't dominate.
ENGINE_EVENTS = 30_000 if SMOKE else 300_000
ENGINE_FANOUT = 4

#: The fixed model run tracked across PRs (matches Fig. 10 defaults).
TREE_UNITS = 128
TREE_SCALE = 0.1 if SMOKE else 0.35
TREE_SEED = 17


def _suffix(key: str) -> str:
    return f"{key}_smoke" if SMOKE else key


def _drive_engine(n_events: int) -> Simulator:
    """A self-sustaining event storm of exactly ``n_events`` callbacks."""
    sim = Simulator(max_cycles=10 ** 12)
    budget = [n_events]

    def tick(period: int) -> None:
        if budget[0] <= 0:
            return
        budget[0] -= 1
        sim.schedule(period, lambda: tick(period))

    for i in range(ENGINE_FANOUT):
        sim.schedule(i + 1, lambda p=i + 1: tick(p))
    sim.run()
    return sim


def test_engine_event_throughput(benchmark):
    t0 = time.perf_counter()
    sim = benchmark.pedantic(
        lambda: _drive_engine(ENGINE_EVENTS),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    wall_s = time.perf_counter() - t0
    events_per_s = sim.events_processed / wall_s
    record_bench(_suffix("engine_microbench"), {
        "events": sim.events_processed,
        "wall_s": round(wall_s, 4),
        "events_per_s": round(events_per_s),
    })
    print(f"\nengine: {sim.events_processed} events in {wall_s:.3f}s "
          f"= {events_per_s:,.0f} events/s")
    assert sim.events_processed >= ENGINE_EVENTS


def test_tree_on_o_wallclock(benchmark):
    """The fixed tree-on-O run: full-model events/sec, cache bypassed."""
    from repro import make_app, run_app

    cfg = scaled_config(TREE_UNITS, Design.O, seed=TREE_SEED)

    def _run():
        app = make_app("tree", scale=TREE_SCALE, seed=TREE_SEED)
        return run_app(app, cfg)

    t0 = time.perf_counter()
    result = benchmark.pedantic(_run, rounds=1, iterations=1,
                                warmup_rounds=0)
    wall_s = time.perf_counter() - t0
    events = result.system.sim.events_processed
    record_bench(_suffix("tree_on_O"), {
        "units": TREE_UNITS,
        "scale": TREE_SCALE,
        "seed": TREE_SEED,
        "makespan": result.metrics.makespan,
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_s": round(events / wall_s),
    })
    print(f"\ntree-on-O: makespan={result.metrics.makespan} "
          f"events={events} wall={wall_s:.3f}s")
    assert result.metrics.makespan > 0


def test_fig10_matrix_cold_vs_warm(benchmark, tmp_path):
    """Cold (simulate everything) vs warm (pure cache hits) wall-clock of
    the Fig.-10 matrix through ``repro.exec`` -- the headline number for
    the parallel + cached harness."""
    apps = ["ll", "tree"] if SMOKE else ALL_APPS
    designs = [Design.C, Design.B, Design.W, Design.O]
    cache = ResultCache(tmp_path / "fig10")

    def _matrix():
        return exec_run_matrix(
            apps, designs,
            config_of=lambda d: scaled_config(TREE_UNITS, d, seed=TREE_SEED),
            scale=TREE_SCALE, seed=TREE_SEED, cache=cache,
        )

    t0 = time.perf_counter()
    cold = benchmark.pedantic(_matrix, rounds=1, iterations=1,
                              warmup_rounds=0)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = _matrix()
    warm_s = time.perf_counter() - t0

    jobs = int(os.environ.get("NDPBRIDGE_JOBS", "0")) or os.cpu_count()
    record_bench(_suffix("fig10_matrix"), {
        "apps": len(apps),
        "designs": len(designs),
        "jobs": jobs,
        "cold_wall_s": round(cold_s, 3),
        "warm_wall_s": round(warm_s, 3),
        "warm_speedup": round(cold_s / max(warm_s, 1e-9), 1),
    })
    print(f"\nfig10 matrix: cold={cold_s:.2f}s warm={warm_s:.2f}s "
          f"({cold_s / max(warm_s, 1e-9):.0f}x) with jobs={jobs}")

    # Warm runs must be pure cache hits with identical results.
    for app in apps:
        for d in designs:
            assert cold[app][d.value] == warm[app][d.value]
    assert warm_s < cold_s
