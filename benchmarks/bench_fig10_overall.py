"""Fig. 10: overall performance of C / B / W / O on all eight apps.

Paper results at 512 units: B = 1.51x over C (bridge communication),
W = 2.23x, O = 2.98x; W sometimes loses to B (tree); ll/ht/spmv show no
communication wait without load balancing.  The bench reproduces the
speedup table, the avg/max load-balance ratios and the wait fractions.
"""

import pytest

from repro.config import Design

from .common import (
    ALL_APPS,
    format_table,
    geomean,
    run_matrix,
    speedups_vs,
)

DESIGNS = [Design.C, Design.B, Design.W, Design.O]


def _run_fig10():
    return run_matrix(ALL_APPS, DESIGNS)


def test_fig10_overall_comparison(benchmark):
    results = benchmark.pedantic(
        _run_fig10, rounds=1, iterations=1, warmup_rounds=0
    )
    speedups = speedups_vs(results, "C")

    rows = []
    for app in ALL_APPS:
        rows.append([app] + [speedups[app][d.value] for d in DESIGNS])
    gm = {
        d.value: geomean(speedups[a][d.value] for a in ALL_APPS)
        for d in DESIGNS
    }
    rows.append(["geomean"] + [gm[d.value] for d in DESIGNS])
    print(format_table(
        "Fig. 10 - speedup over design C",
        ["app", "C", "B", "W", "O"], rows,
    ))

    balance_rows = [
        [app] + [results[app][d.value].avg_over_max for d in DESIGNS]
        for app in ALL_APPS
    ]
    print(format_table(
        "Fig. 10 - avg/max unit time (load balance, higher is better)",
        ["app", "C", "B", "W", "O"], balance_rows,
    ))

    wait_rows = [
        [app] + [results[app][d.value].wait_fraction for d in DESIGNS]
        for app in ALL_APPS
    ]
    print(format_table(
        "Fig. 10 - wait fraction of total time",
        ["app", "C", "B", "W", "O"], wait_rows,
    ))

    # Shape assertions (paper: O > W > B > C on geomean).
    assert gm["B"] > 1.0, "bridges must beat host forwarding"
    assert gm["W"] > gm["B"], "work stealing must add over bridges"
    assert gm["O"] > gm["W"], "data-transfer-aware LB must beat stealing"
    # ll/ht/spmv are communication-free without balancing: B == C.
    for app in ("ll", "ht", "spmv"):
        assert abs(speedups[app]["B"] - 1.0) < 0.05


def test_fig10_balancing_improves_avg_over_max(benchmark):
    """The O design's avg/max ratio must improve on B's (Section VIII-A:
    22.4% -> 59.0% in the paper)."""
    def _run():
        return run_matrix(["ll", "ht", "bfs"], [Design.B, Design.O])

    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    b = geomean(results[a]["B"].avg_over_max for a in results)
    o = geomean(results[a]["O"].avg_over_max for a in results)
    print(f"\navg/max geomean: B={b:.3f}  O={o:.3f}")
    assert o > b
