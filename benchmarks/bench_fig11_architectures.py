"""Fig. 11: NDPBridge vs host-only execution (H) and RowClone (R).

Paper results: C is only ~1.2x over H (wimpy cores + communication +
imbalance eat the NDP advantage); O reaches 3.59x over H.  R (intra-chip
RowClone copies, host forwarding across chips) is 1.35x over C, and O is
2.23x over R.
"""

import pytest

from repro.config import Design

from .common import ALL_APPS, format_table, geomean, run_matrix, speedups_vs

DESIGNS = [Design.H, Design.C, Design.R, Design.O]


def _run_fig11():
    return run_matrix(ALL_APPS, DESIGNS)


def test_fig11_architecture_comparison(benchmark):
    results = benchmark.pedantic(
        _run_fig11, rounds=1, iterations=1, warmup_rounds=0
    )
    speedups = speedups_vs(results, "H")
    rows = [
        [app] + [speedups[app][d.value] for d in DESIGNS]
        for app in ALL_APPS
    ]
    gm = {
        d.value: geomean(speedups[a][d.value] for a in ALL_APPS)
        for d in DESIGNS
    }
    rows.append(["geomean"] + [gm[d.value] for d in DESIGNS])
    print(format_table(
        "Fig. 11 - speedup over host-only execution (H)",
        ["app", "H", "C", "R", "O"], rows,
    ))

    # Shape assertions (paper Section VIII-A).  Note on H: the paper's
    # host loses to O by 3.59x because its working sets are DRAM-resident
    # (far beyond the 20 MB LLC); at bench scale the host's shared memory
    # communicates for free while the NDP machine pays real message
    # latency, so the absolute crossover needs paper-scale inputs
    # (NDPBRIDGE_BENCH_SCALE >> 1).  The *relative* shape -- NDPBridge
    # multiplying baseline NDP's competitiveness against the host -- is
    # scale-independent and asserted here.
    assert gm["O"] > gm["C"], "NDPBridge must beat baseline NDP"
    assert gm["O"] > gm["R"], "NDPBridge must beat RowClone forwarding"
    assert gm["R"] >= gm["C"] * 0.95, "RowClone should not lose to C"
    assert gm["O"] >= 2.0 * gm["C"], (
        "NDPBridge should multiply NDP's competitiveness vs the host"
    )
