"""Snapshot/restore cost benchmark: capture, fork, resume wall-clock.

Tracks the checkpoint machinery's own performance the way
``bench_engine.py`` tracks the serial hot path: the fixed tree-on-O
workload runs once straight through and once paused at mid-run for a
:func:`repro.state.snapshot.snapshot` capture + fork + resume, and the
costs land in ``BENCH_snapshot.json`` at the repo root.

Three numbers matter and are recorded per run:

* ``capture_s`` / ``fork_s`` -- one deep clone each (the snapshot's
  freeze and its restore); both scale with live state, not history,
* ``size_bytes`` -- recursive in-memory footprint of the frozen clone,
* ``overhead_ratio`` -- (pause + capture + fork + resume) wall vs the
  uninterrupted run; the equivalence oracle asserts the metrics are
  bit-identical while the clock shows what the checkpoint cost.

Costs are *recorded, never asserted* (CI boxes vary); the equivalence
assertion is the only hard check.  ``NDPBRIDGE_BENCH_SMOKE=1`` shrinks
the workload and records under ``_smoke`` keys.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

from repro import Design, make_app, run_app
from repro.config import scaled_config
from repro.state.snapshot import restore, snapshot

SMOKE = os.environ.get("NDPBRIDGE_BENCH_SMOKE", "0") not in ("0", "")

BENCH_SNAPSHOT_JSON = (
    Path(__file__).resolve().parent.parent / "BENCH_snapshot.json"
)

APP = "tree"
DESIGN = Design.O
SEED = 17
UNITS = 128 if SMOKE else 256
SCALE = 0.1 if SMOKE else 0.35


def _suffix(key: str) -> str:
    return f"{key}_smoke" if SMOKE else key


def record_snapshot(key: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_snapshot.json`` under ``key``."""
    data: Dict[str, object] = {}
    if BENCH_SNAPSHOT_JSON.exists():
        try:
            data = json.loads(BENCH_SNAPSHOT_JSON.read_text())
        except ValueError:
            data = {}
    data[key] = payload
    BENCH_SNAPSHOT_JSON.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )


def test_snapshot_capture_resume_cost():
    """Checkpoint mid-run, resume the clone, compare against run-through."""
    cfg = scaled_config(UNITS, DESIGN, seed=42)

    t0 = time.perf_counter()
    base = run_app(make_app(APP, scale=SCALE, seed=SEED), cfg)
    base_wall = time.perf_counter() - t0
    snapshot_at = max(1, base.metrics.makespan // 2)

    from repro.analysis.metrics import collect_metrics
    from repro.runtime.runner import build_system

    app = make_app(APP, scale=SCALE, seed=SEED)
    t0 = time.perf_counter()
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    system.start().advance(until=snapshot_at)
    pause_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    snap = snapshot(system, app)
    capture_s = time.perf_counter() - t0
    size_bytes = snap.size_bytes()

    t0 = time.perf_counter()
    fork_system, fork_app = restore(snap)
    fork_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fork_system.finish()
    resume_wall = time.perf_counter() - t0
    assert fork_app.verify(), "snapshot-resume failed app verification"
    forked = collect_metrics(fork_system, APP)

    assert forked.makespan == base.metrics.makespan, (
        f"snapshot-resume diverged: {forked.makespan} "
        f"!= {base.metrics.makespan}"
    )

    checkpoint_wall = pause_wall + capture_s + fork_s + resume_wall
    overhead = checkpoint_wall / base_wall if base_wall > 0 else None
    record_snapshot(_suffix("snapshot_tree_on_O"), {
        "units": UNITS,
        "scale": SCALE,
        "seed": SEED,
        "snapshot_at": snapshot_at,
        "makespan": base.metrics.makespan,
        "events": fork_system.sim.events_processed,
        "base_wall_s": round(base_wall, 4),
        "capture_s": round(capture_s, 4),
        "fork_s": round(fork_s, 4),
        "resume_wall_s": round(resume_wall, 4),
        "size_bytes": size_bytes,
        "overhead_ratio": round(overhead, 3) if overhead else None,
    })
    print(
        f"\nsnapshot: {UNITS} units, pause@{snapshot_at} -> "
        f"capture {capture_s:.3f}s, fork {fork_s:.3f}s, "
        f"{size_bytes / 1e6:.1f} MB, "
        f"checkpointed run {overhead:.2f}x of straight-through"
    )
