"""Fig. 16(a): transfer granularity G_xfer x metadata table capacity.

G_xfer is both the gather/scatter access granularity and the load-balance
block size.  The paper sweeps 64 B / 256 B / 1024 B against 1/4x, 1x and
4x metadata storage (isLent + dataBorrowed): 256 B is the balanced
default; 64 B can edge ahead only when granted 4x metadata (more, smaller
blocks need more tracking entries).
"""

from dataclasses import replace

import pytest

from repro.config import Design

from .common import SWEEP_APPS, bench_config, format_table, geomean, run_one

G_XFERS = [64, 256, 1024]
META_SCALES = [0.25, 1.0, 4.0]


def _config(g_xfer, meta_scale):
    cfg = bench_config(Design.O)
    return cfg.replace(
        comm=replace(cfg.comm, g_xfer_bytes=g_xfer),
        balance=replace(cfg.balance, metadata_scale=meta_scale),
    )


def _run_fig16a():
    results = {}
    for g in G_XFERS:
        for scale in META_SCALES:
            cfg = _config(g, scale)
            for app in SWEEP_APPS:
                results[(g, scale, app)] = run_one(app, Design.O, config=cfg)
    return results


def test_fig16a_gxfer_and_metadata(benchmark):
    results = benchmark.pedantic(
        _run_fig16a, rounds=1, iterations=1, warmup_rounds=0
    )
    base = geomean(
        results[(256, 1.0, app)].makespan for app in SWEEP_APPS
    )
    rows = []
    perf = {}
    for g in G_XFERS:
        row = [f"{g}B"]
        for scale in META_SCALES:
            gm = geomean(results[(g, scale, app)].makespan
                         for app in SWEEP_APPS)
            perf[(g, scale)] = base / gm
            row.append(base / gm)
        rows.append(row)
    print(format_table(
        "Fig. 16(a) - performance vs default (G_xfer=256B, 1x metadata)",
        ["G_xfer", "1/4x meta", "1x meta", "4x meta"], rows,
    ))

    # Shape: the default is competitive with every alternative.
    best = max(perf.values())
    assert perf[(256, 1.0)] >= 0.75 * best, (
        "the paper's 256 B / 1x default should be a good balance"
    )
    # Metadata capacity should never *hurt* much when increased.
    for g in G_XFERS:
        assert perf[(g, 4.0)] >= perf[(g, 0.25)] * 0.8
