"""Extension experiment: NDPBridge in tandem with DIMM-Link.

Section V-A notes that the level-2 bridge can alternatively use
peer-to-peer inter-DIMM links (DIMM-Link [89]) or broadcast links
(ABC-DIMM [73]) instead of host-forwarded channel traffic -- "NDPBridge
is orthogonal to and can work in tandem with them."  This bench measures
that combination on a multi-rank system: cross-rank messages ride
dedicated 25 GB/s p2p ports instead of the shared DDR channels.
"""

from dataclasses import replace

import pytest

from repro.config import Design

from .common import bench_config, format_table, geomean, run_one

APPS = ["tree", "bfs", "pr"]
UNITS = 256  # multi-rank so cross-rank traffic exists


def _config(links: bool):
    # Design B isolates the communication path; O's balancer reacts to
    # transport speed and would confound the comparison.
    cfg = bench_config(Design.B, units=UNITS)
    return cfg.replace(comm=replace(cfg.comm, inter_rank_links=links))


def _run():
    results = {}
    for variant, links in (("channel", False), ("dimm-link", True)):
        cfg = _config(links)
        for app in APPS:
            results[(variant, app)] = run_one(app, Design.B, config=cfg)
    return results


def test_dimmlink_tandem(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1,
                                 warmup_rounds=0)
    rows = []
    for app in APPS:
        rows.append([
            app,
            results[("channel", app)].makespan,
            results[("dimm-link", app)].makespan,
            results[("channel", app)].makespan
            / results[("dimm-link", app)].makespan,
        ])
    gm = geomean(
        results[("channel", app)].makespan
        / results[("dimm-link", app)].makespan
        for app in APPS
    )
    rows.append(["geomean", "", "", gm])
    print(format_table(
        "NDPBridge + DIMM-Link p2p inter-rank links (B, 256 units)",
        ["app", "channel cycles", "p2p cycles", "speedup"], rows,
    ))
    # Shape: dedicated links never hurt cross-rank communication.
    assert gm >= 0.98
