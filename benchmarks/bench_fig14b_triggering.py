"""Fig. 14(b): dynamic communication triggering vs fixed intervals.

The paper compares NDPBridge's dynamic triggering against gathering at a
fixed ``I_min`` interval and at ``2 * I_min``: dynamic triggering cuts
communication DRAM access energy by 29.5% (no wasted gathers of empty
mailboxes) at a negligible 0.4% performance cost, while simply halving the
frequency (2 I_min) loses 31% performance.
"""

from dataclasses import replace

import pytest

from repro.config import Design, TriggerMode

from .common import ALL_APPS, bench_config, format_table, geomean, run_one

MODES = [TriggerMode.DYNAMIC, TriggerMode.FIXED, TriggerMode.FIXED_2X]


def _mode_config(mode):
    cfg = bench_config(Design.B)
    return cfg.replace(comm=replace(cfg.comm, trigger_mode=mode))


def _run_fig14b():
    results = {}
    for mode in MODES:
        cfg = _mode_config(mode)
        for app in ALL_APPS:
            results[(mode.value, app)] = run_one(app, Design.B, config=cfg)
    return results


def test_fig14b_dynamic_triggering(benchmark):
    results = benchmark.pedantic(
        _run_fig14b, rounds=1, iterations=1, warmup_rounds=0
    )
    fixed = TriggerMode.FIXED.value
    rows = []
    perf = {}
    energy = {}
    for mode in MODES:
        key = mode.value
        perf[key] = geomean(
            results[(fixed, app)].makespan / results[(key, app)].makespan
            for app in ALL_APPS
        )
        energy[key] = geomean(
            results[(key, app)].energy.comm_dram_pj
            / max(1.0, results[(fixed, app)].energy.comm_dram_pj)
            for app in ALL_APPS
        )
        rows.append([key, perf[key], energy[key]])
    print(format_table(
        "Fig. 14(b) - vs fixed I_min triggering",
        ["mode", "rel. performance", "rel. comm energy"], rows,
    ))

    dyn = TriggerMode.DYNAMIC.value
    fixed2 = TriggerMode.FIXED_2X.value
    # Shape: dynamic saves communication energy at little performance cost;
    # halving the frequency costs real performance.
    assert energy[dyn] < 1.0, "dynamic triggering must save comm energy"
    assert perf[dyn] > 0.9, "dynamic triggering must not cost much speed"
    assert perf[fixed2] <= perf[dyn], "2*I_min should be no faster"
