"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation
(Section VIII).  Default sizes are reduced-but-faithful so the whole
harness runs in minutes of pure Python; two environment knobs grow runs
toward paper scale:

* ``NDPBRIDGE_BENCH_UNITS`` -- NDP unit count (64..1024, default 128;
  512 is the paper's Table-I system),
* ``NDPBRIDGE_BENCH_SCALE`` -- workload size multiplier (default 0.35).

Results are printed as aligned text tables mirroring the paper's figure
series; assertions check the qualitative *shape* (who wins, roughly by
how much), never absolute cycle counts.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro import Design, make_app, run_app
from repro.analysis import RunMetrics
from repro.config import SystemConfig, scaled_config

BENCH_UNITS = int(os.environ.get("NDPBRIDGE_BENCH_UNITS", "128"))
BENCH_SCALE = float(os.environ.get("NDPBRIDGE_BENCH_SCALE", "1.0"))

#: The paper's application order (Section VII).
ALL_APPS = ["ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", "wcc"]

#: Fast subset used by the parameter sweeps of Fig. 16.
SWEEP_APPS = ["ll", "tree", "pr"]

#: Seed shared by all benchmark runs (results are fully deterministic).
BENCH_SEED = 17


#: Where the engine perf trajectory is recorded (repo root).
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def record_bench(key: str, payload: dict) -> None:
    """Merge one measurement into ``BENCH_engine.json`` under ``key``."""
    data: Dict[str, object] = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def bench_config(
    design: Design, units: Optional[int] = None
) -> SystemConfig:
    """The benchmark system configuration for one design point."""
    return scaled_config(units or BENCH_UNITS, design, seed=BENCH_SEED)


def run_one(
    app_name: str,
    design: Design,
    config: Optional[SystemConfig] = None,
    scale: Optional[float] = None,
) -> RunMetrics:
    """Run one (app, design) pair and return its metrics (verified)."""
    app = make_app(app_name, scale=scale or BENCH_SCALE, seed=BENCH_SEED)
    cfg = config if config is not None else bench_config(design)
    return run_app(app, cfg).metrics


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values]
    if not vals:
        # Returning 0.0 here once silently poisoned speedup aggregation
        # (an empty app list looked like an infinite slowdown).
        raise ValueError("geomean of an empty sequence is undefined")
    return math.exp(sum(math.log(max(v, 1e-12)) for v in vals) / len(vals))


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned text table (the bench harness's 'figure')."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def speedups_vs(
    results: Dict[str, Dict[str, RunMetrics]], baseline: str
) -> Dict[str, Dict[str, float]]:
    """Per-app speedup of every design over ``baseline``."""
    out: Dict[str, Dict[str, float]] = {}
    for app_name, per_design in results.items():
        base = per_design[baseline].makespan
        out[app_name] = {
            d: base / m.makespan for d, m in per_design.items()
        }
    return out


def run_matrix(
    apps: Sequence[str],
    designs: Sequence[Design],
    config_of=None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, RunMetrics]]:
    """Run the (app x design) matrix; ``config_of(design)`` overrides.

    Cells fan out over a process pool and hit the on-disk result cache
    (see :mod:`repro.exec`); ``NDPBRIDGE_JOBS`` and
    ``NDPBRIDGE_CACHE_DIR`` / ``NDPBRIDGE_CACHE=0`` control both.
    """
    from repro.exec import run_matrix as exec_run_matrix

    return exec_run_matrix(
        apps,
        designs,
        config_of=config_of if config_of is not None else bench_config,
        scale=scale if scale is not None else BENCH_SCALE,
        seed=BENCH_SEED,
    )
