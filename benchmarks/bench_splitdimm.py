"""Section V-A / VIII-A: split data-buffer DIMMs (chameleon-s).

With separate data buffers (DBs) and an RCD, the level-1 bridge lives in
the DB chips and must multiplex C/A onto the DQ pins (chameleon-s: two of
the eight pins carry commands), sacrificing data bandwidth.  The paper
measures a 9.1% performance loss and 35.3% more wait time compared to the
default unified-buffer implementation.
"""

from dataclasses import replace

import pytest

from repro.config import Design

from .common import ALL_APPS, bench_config, format_table, geomean, run_one


def _split_config(design):
    cfg = bench_config(design)
    return cfg.replace(comm=replace(cfg.comm, split_dimm=True))


def _run_splitdimm():
    results = {}
    for variant, config_of in (
        ("unified", bench_config),
        ("split", _split_config),
    ):
        for app in ALL_APPS:
            results[(variant, app)] = run_one(
                app, Design.O, config=config_of(Design.O)
            )
    return results


def test_splitdimm_chameleon(benchmark):
    results = benchmark.pedantic(
        _run_splitdimm, rounds=1, iterations=1, warmup_rounds=0
    )
    rel_perf = geomean(
        results[("unified", app)].makespan / results[("split", app)].makespan
        for app in ALL_APPS
    )
    rows = [
        ["unified buffer", 1.0],
        ["split DBs (chameleon-s)", rel_perf],
    ]
    print(format_table(
        "Split-DIMM variant - relative performance",
        ["implementation", "rel. performance"], rows,
    ))

    # Shape: the split variant is somewhat slower (paper: -9.1%), but not
    # catastrophically so.
    assert rel_perf <= 1.02, "narrower DQ cannot be faster"
    assert rel_perf >= 0.6, "the split variant should remain usable"
