"""Fig. 12: scalability from 64 to 1024 NDP units running pr.

The paper normalizes to design C at 64 units and shows NDPBridge's
advantage *growing* with system scale: more units spread the same data
thinner, making communication and imbalance more critical.  The hierarchy
confines intra-rank traffic below the level-1 bridges, which is what keeps
O scaling (1.68x going 512 -> 1024 units in the paper).
"""

import os

import pytest

from repro.config import Design

from .common import BENCH_SCALE, bench_config, format_table, run_one

UNIT_COUNTS = [64, 128, 256, 512]
if os.environ.get("NDPBRIDGE_BENCH_FULL"):
    UNIT_COUNTS.append(1024)

DESIGNS = [Design.C, Design.B, Design.W, Design.O]


#: Fig. 12 keeps the workload fixed while scaling the machine, so it must
#: be sized for the largest unit count (the paper's graphs are orders of
#: magnitude larger than any machine it runs on).
FIG12_SCALE = max(2.0, BENCH_SCALE * 4)


def _run_fig12():
    results = {}
    for units in UNIT_COUNTS:
        for design in DESIGNS:
            results[(units, design.value)] = run_one(
                "pr", design, config=bench_config(design, units=units),
                scale=FIG12_SCALE,
            )
    return results


def test_fig12_scalability(benchmark):
    results = benchmark.pedantic(
        _run_fig12, rounds=1, iterations=1, warmup_rounds=0
    )
    base = results[(64, "C")].makespan
    rows = []
    for units in UNIT_COUNTS:
        rows.append([units] + [
            base / results[(units, d.value)].makespan for d in DESIGNS
        ])
    print(format_table(
        "Fig. 12 - pr speedup normalized to C @ 64 units",
        ["units", "C", "B", "W", "O"], rows,
    ))

    # Shape: O's advantage over C grows (or at least persists) with scale.
    small_gap = (
        results[(64, "C")].makespan / results[(64, "O")].makespan
    )
    large = UNIT_COUNTS[-1]
    large_gap = (
        results[(large, "C")].makespan / results[(large, "O")].makespan
    )
    print(f"\nO over C: {small_gap:.2f}x @ 64 units, "
          f"{large_gap:.2f}x @ {large} units")
    assert large_gap > 1.0
    assert large_gap >= 0.8 * small_gap, (
        "NDPBridge's advantage should not collapse with scale"
    )


def test_fig12_hierarchy_localizes_traffic(benchmark):
    """The level-2 bridge carries less traffic than the level-1 bridges
    combined (40.4% at 512 units in the paper)."""
    from repro import make_app, run_app

    def _run():
        app = make_app("pr", scale=BENCH_SCALE, seed=17)
        return run_app(app, bench_config(Design.O, units=256)).system

    system = benchmark.pedantic(_run, rounds=1, iterations=1,
                                warmup_rounds=0)
    l1_bytes = sum(
        link.total_bytes
        for bridge in system.fabric.rank_bridges
        for link in bridge.chip_links
    )
    l2_bytes = sum(
        link.total_bytes for link in system.fabric.level2.channel_links
    )
    frac = l2_bytes / max(1, l1_bytes)
    print(f"\nlevel-2 traffic / level-1 traffic = {frac:.2%}")
    assert frac < 1.0, "cross-rank traffic must be the minority"
