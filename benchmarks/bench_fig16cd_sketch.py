"""Fig. 16(c,d): hot-data sketch geometry (buckets x entries).

The sketch identifies the hottest blocks for +Hot scheduling.  The paper
sweeps the bucket count and entries per bucket around the 16 x 16 default:
larger sketches help slightly for some applications but cost area; much
smaller ones lose track of the heavy hitters.
"""

import pytest

from repro.config import Design, SketchConfig

from .common import SWEEP_APPS, bench_config, format_table, geomean, run_one

BUCKET_SWEEP = [4, 16, 64]      # entries fixed at 16  (Fig. 16(c))
ENTRY_SWEEP = [4, 16, 64]       # buckets fixed at 16  (Fig. 16(d))


def _config(buckets, entries):
    cfg = bench_config(Design.O)
    return cfg.replace(
        sketch=SketchConfig(buckets=buckets, entries_per_bucket=entries)
    )


def _run_sweep(pairs):
    results = {}
    for buckets, entries in pairs:
        cfg = _config(buckets, entries)
        for app in SWEEP_APPS:
            results[(buckets, entries, app)] = run_one(
                app, Design.O, config=cfg
            )
    return results


def test_fig16c_bucket_sweep(benchmark):
    pairs = [(b, 16) for b in BUCKET_SWEEP]
    results = benchmark.pedantic(
        lambda: _run_sweep(pairs), rounds=1, iterations=1, warmup_rounds=0
    )
    base = geomean(results[(16, 16, app)].makespan for app in SWEEP_APPS)
    rows = []
    perf = {}
    for b in BUCKET_SWEEP:
        gm = geomean(results[(b, 16, app)].makespan for app in SWEEP_APPS)
        perf[b] = base / gm
        rows.append([b, base / gm])
    print(format_table(
        "Fig. 16(c) - sketch bucket count (16 entries each)",
        ["buckets", "rel. performance"], rows,
    ))
    assert perf[16] >= 0.8 * max(perf.values())


def test_fig16d_entry_sweep(benchmark):
    pairs = [(16, e) for e in ENTRY_SWEEP]
    results = benchmark.pedantic(
        lambda: _run_sweep(pairs), rounds=1, iterations=1, warmup_rounds=0
    )
    base = geomean(results[(16, 16, app)].makespan for app in SWEEP_APPS)
    rows = []
    perf = {}
    for e in ENTRY_SWEEP:
        gm = geomean(results[(16, e, app)].makespan for app in SWEEP_APPS)
        perf[e] = base / gm
        rows.append([e, base / gm])
    print(format_table(
        "Fig. 16(d) - sketch entries per bucket (16 buckets)",
        ["entries", "rel. performance"], rows,
    ))
    assert perf[16] >= 0.8 * max(perf.values())
