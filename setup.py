"""Setup shim for environments without the `wheel` package.

`pip install -e .` falls back to this legacy path when PEP 517 editable
builds are unavailable; all real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
