"""Smoke tests: the example scripts run end to end.

Each example is executed in a subprocess exactly as a user would run it;
only the cheapest one runs in full, the rest are import-checked so the
suite stays fast.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "makespan" in proc.stdout
    assert "faster than host forwarding" in proc.stdout


def test_custom_application_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "custom_application.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert "verified            : True" in proc.stdout


@pytest.mark.parametrize("script", [
    "graph_analytics.py",
    "skewed_index_balancing.py",
    "utilization_timeline.py",
])
def test_heavier_examples_compile(script):
    proc = subprocess.run(
        [sys.executable, "-m", "py_compile", str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 0, proc.stderr


def test_all_examples_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "graph_analytics.py",
            "skewed_index_balancing.py", "custom_application.py",
            "utilization_timeline.py"} <= names
