"""Runtime race detector + boundary ledger test suite.

Positive property: the conservative-window engine's results are
independent of every legal scheduling freedom -- per-shard execution
order within a barrier and outbox accumulation order.  The detector
fuzzes those axes with seeded interleavings and proves bit-identical
per-shard state digests (snapshot manifests for NDP runtimes) across

* shards 1/2/4, inline and forked, on ll/ht/tree (design O), and
* the full ll/ht/tree x C/B/W/O acceptance matrix at shards 2 and 4,

each under >= 5 fuzz seeds.  Negative coverage: a deliberately racy toy
(shared mutable state across shards) is *caught* by the fuzzer, and a
ForkTransport pipe carrying out-of-band traffic is caught by the
boundary hash ledger.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest

from repro.config import ConfigError, Design, scaled_config, validate_shardable
from repro.race.detector import (
    RaceError,
    assert_no_races,
    detect_races,
    run_with_digests,
)
from repro.race.ledger import BoundaryLedger, LedgerMismatch, check_ledgers
from repro.sim import Simulator
from repro.sim.sharded import (
    BoundaryMessage,
    ControlDecision,
    FixedLookaheadPlan,
    ShardReport,
    ShardRuntime,
)

APPS = ("ll", "ht", "tree")
#: shard count -> smallest machine whose topology splits that way
#: (2 ranks at 128 units; 2 channels x 2 rank groups at 256).
UNITS_FOR = {1: 128, 2: 128, 4: 256}
SEEDS = (1, 2, 3, 4, 5)
SCALE = 0.05


# ----------------------------------------------------------------------
# property: shards x {inline, forked} x apps, >= 5 fuzz seeds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", sorted(UNITS_FOR))
@pytest.mark.parametrize("app", APPS)
def test_interleavings_bit_identical_inline_and_forked(app, shards):
    cfg = scaled_config(UNITS_FOR[shards], Design.O, seed=42)
    report = assert_no_races(
        app, cfg, shards=shards, seeds=SEEDS, scale=SCALE,
        parallel_also=True,
    )
    # canonical + one per fuzz seed + one forked
    assert report.runs == len(SEEDS) + 2
    assert len(report.canonical_digests) == shards
    assert all(len(d) == 64 for d in report.canonical_digests)


def test_shards_three_has_no_valid_partition():
    # The {1,2,3,4} sweep's missing point: three shards would split a
    # rank group (128 units) or a channel pair (256 units), so the
    # config layer rejects it before the engine ever runs.
    for units in (128, 256):
        cfg = scaled_config(units, Design.O, seed=42)
        with pytest.raises(ConfigError):
            validate_shardable(cfg, 3)


# ----------------------------------------------------------------------
# acceptance matrix: apps x designs x shard counts, inline fuzzing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", (2, 4))
@pytest.mark.parametrize("design", ("C", "B", "W", "O"))
@pytest.mark.parametrize("app", APPS)
def test_acceptance_matrix_bit_identical(app, design, shards):
    cfg = scaled_config(UNITS_FOR[shards], Design(design), seed=42)
    report = detect_races(
        app, cfg, shards=shards, seeds=SEEDS, scale=SCALE
    )
    assert report.ok, "\n".join(report.mismatches)
    assert report.runs == len(SEEDS) + 1


# ----------------------------------------------------------------------
# negative: a racy shard set is caught
# ----------------------------------------------------------------------
class _Quiet(ShardRuntime):
    """Minimal well-behaved shard: one local event, no boundary traffic."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.sim = Simulator(max_cycles=10 ** 6)
        self.sim.schedule_at(5, lambda: None)

    def begin(self) -> ShardReport:
        return self._report()

    def run_window(
        self, until: int, inbox: Sequence[BoundaryMessage]
    ) -> ShardReport:
        self.sim.run(until=until)
        return self._report()

    def apply_control(self, decision: ControlDecision) -> ShardReport:
        return self._report()

    def finalize(self) -> Dict[str, object]:
        return {"shard": self.shard_id, "events": self.sim.events_processed}

    def _report(self) -> ShardReport:
        return ShardReport(
            shard_id=self.shard_id,
            now=self.sim.now,
            next_event_time=self.sim.peek_time(),
            events_processed=self.sim.events_processed,
            quiescent=self.sim.peek_time() is None,
            future_work=False,
            finished=False,
            outbox=(),
        )


class _Racy(_Quiet):
    """Leaks cross-shard state: a class-level list shared by instances.

    Each shard records its begin() turn in the shared list and bakes the
    list into its finalize payload -- so the *execution order* of the
    begin barrier becomes visible in the results, exactly the hazard the
    fuzzer exists to catch.
    """

    shared: List[int] = []

    def begin(self) -> ShardReport:
        type(self).shared.append(self.shard_id)
        return super().begin()

    def finalize(self) -> Dict[str, object]:
        payload = super().finalize()
        payload["shared_view"] = list(type(self).shared)
        return payload


def _toy_digests(runtime_cls, fuzz_seed=None):
    plan = FixedLookaheadPlan(shards=2, lookahead=10)
    builders = [lambda s=s: runtime_cls(s) for s in range(2)]
    _result, digests = run_with_digests(
        builders, plan, fuzz_seed=fuzz_seed
    )
    return digests


def test_clean_toy_is_interleaving_independent():
    canonical = _toy_digests(_Quiet)
    for fuzz_seed in SEEDS:
        assert _toy_digests(_Quiet, fuzz_seed=fuzz_seed) == canonical


def test_racy_toy_is_caught():
    _Racy.shared = []
    canonical = _toy_digests(_Racy)
    diverged = 0
    for fuzz_seed in SEEDS:
        _Racy.shared = []
        if _toy_digests(_Racy, fuzz_seed=fuzz_seed) != canonical:
            diverged += 1
    assert diverged > 0, (
        "no fuzz seed flipped the begin barrier order; widen SEEDS"
    )


def test_fuzz_and_parallel_are_mutually_exclusive():
    plan = FixedLookaheadPlan(shards=2, lookahead=10)
    builders = [lambda s=s: _Quiet(s) for s in range(2)]
    with pytest.raises(ValueError):
        run_with_digests(builders, plan, fuzz_seed=1, parallel=True)


# ----------------------------------------------------------------------
# the boundary hash ledger
# ----------------------------------------------------------------------
def test_ledger_agrees_on_identical_streams():
    a, b = BoundaryLedger(), BoundaryLedger()
    for msg in (("window", 10, []), ("ok", {"x": 1})):
        a.note_sent(msg)
        b.note_received(msg)
        b.note_sent(("ack",))
        a.note_received(("ack",))
    check_ledgers(0, a.digests(), b.digests())  # must not raise


def test_ledger_detects_diverging_streams():
    a, b = BoundaryLedger(), BoundaryLedger()
    a.note_sent(("window", 10, []))
    b.note_received(("window", 11, []))  # bit-flip in flight
    with pytest.raises(LedgerMismatch):
        check_ledgers(0, a.digests(), b.digests())


def test_ledger_detects_out_of_band_traffic():
    # A command injected past the transport's accounting: the worker
    # hashes three received messages, the parent only hashed two sent.
    from repro.exec.shardpool import ForkTransport
    from repro.runtime.shards import NDPShardBuilder, resolve_shards
    from repro.sim.partition import plan_partition

    cfg = scaled_config(128, Design.O, seed=42)
    plan = plan_partition(cfg, resolve_shards(cfg, 2))
    builders = [
        NDPShardBuilder(
            app="tree", scale=SCALE, seed=7, config=cfg, plan=plan,
            shard_id=shard_id, verify=False,
        )
        for shard_id in range(plan.shards)
    ]
    transport = ForkTransport(builders, ledger=True)
    with pytest.raises(LedgerMismatch):
        with transport:
            transport.begin_all()
            # Sneak a harmless command past the parent-side ledger.
            transport._conns[0].send(("begin",))
            transport._recv(transport._conns[0])


def test_sanitized_forked_run_passes_ledger(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    from repro.runtime.shards import run_app_sharded

    cfg = scaled_config(128, Design.O, seed=42)
    run = run_app_sharded(
        "tree", cfg, scale=SCALE, seed=7, shards=2, verify=False,
        parallel=True,
    )
    assert run.metrics.makespan > 0
