"""Tests for run metrics collection (Fig. 2 / Fig. 10 reporting)."""

import pytest

from repro.analysis import RunMetrics, collect_metrics
from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.energy import EnergyBreakdown
from repro.runtime.runner import run_app


def make_metrics(makespan=100, avg=50.0, wait=0.2):
    return RunMetrics(
        design="O", app="tree", makespan=makespan, avg_unit_time=avg,
        max_unit_time=makespan, wait_fraction=wait, total_busy_cycles=80,
        tasks_executed=10, task_messages=3, data_messages=1,
    )


def test_avg_over_max():
    m = make_metrics(makespan=100, avg=50.0)
    assert m.avg_over_max == pytest.approx(0.5)
    zero = make_metrics(makespan=0, avg=0.0)
    assert zero.avg_over_max == 1.0


def test_speedup_over():
    fast = make_metrics(makespan=100)
    slow = make_metrics(makespan=300)
    assert fast.speedup_over(slow) == pytest.approx(3.0)
    assert slow.speedup_over(fast) == pytest.approx(1 / 3)


def test_as_dict_contains_energy():
    m = make_metrics()
    m.energy = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
    d = m.as_dict()
    assert d["energy"]["total_pj"] == 10.0
    assert d["makespan"] == 100


def test_collect_metrics_end_to_end():
    result = run_app(make_app("tree", scale=0.03), tiny_config(Design.B))
    m = result.metrics
    assert m.design == "B"
    assert m.app == "tree"
    assert 0 < m.avg_unit_time <= m.makespan
    assert 0.0 <= m.wait_fraction < 1.0
    assert m.tasks_executed == result.system.total_tasks_executed
    assert m.task_messages > 0


def test_wait_fraction_reflects_communication():
    """Host-forwarded tree waits more than the bridge design at equal
    polling generosity -- wait is measured on the critical unit."""
    r = run_app(make_app("tree", scale=0.05), tiny_config(Design.C))
    assert r.metrics.wait_fraction >= 0.0
    assert r.metrics.total_busy_cycles > 0


def test_imbalanced_app_shows_low_avg_over_max():
    r = run_app(make_app("ll", scale=0.1), tiny_config(Design.B))
    assert r.metrics.avg_over_max < 0.9
