"""Tests for the metadata consistency audit."""

import pytest

from repro.analysis.audit import audit_system
from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app


@pytest.mark.parametrize("app_name", ["ll", "tree", "bfs", "pr"])
def test_balanced_runs_pass_audit(app_name):
    result = run_app(make_app(app_name, scale=0.05, seed=13),
                     tiny_config(Design.O))
    report = audit_system(result.system)
    assert report.ok, str(report)


def test_work_stealing_runs_pass_audit():
    result = run_app(make_app("wcc", scale=0.05, seed=13),
                     tiny_config(Design.W))
    report = audit_system(result.system)
    assert report.ok, str(report)


def test_unbalanced_designs_trivially_pass():
    result = run_app(make_app("tree", scale=0.05, seed=13),
                     tiny_config(Design.B))
    assert audit_system(result.system).ok


def test_audit_detects_double_borrow():
    result = run_app(make_app("ll", scale=0.05, seed=13),
                     tiny_config(Design.O))
    system = result.system
    # Corrupt the metadata on purpose: two units claim the same block.
    block = system.units[3]._base_block
    system.units[3].islent.set_lent(block)
    system.units[0].borrowed.insert(block, 0, 3)
    system.units[1].borrowed.insert(block, 0, 3)
    report = audit_system(system)
    assert not report.ok
    assert any("I1" in v for v in report.violations)


def test_audit_detects_unmarked_borrow():
    result = run_app(make_app("ll", scale=0.05, seed=13),
                     tiny_config(Design.O))
    system = result.system
    block = system.units[5]._base_block
    system.units[2].borrowed.insert(block, 0, 5)  # home never marked lent
    report = audit_system(system)
    assert any("I2" in v for v in report.violations)


def test_audit_detects_stale_bridge_entry():
    result = run_app(make_app("ll", scale=0.05, seed=13),
                     tiny_config(Design.O))
    system = result.system
    bridge = system.fabric.rank_bridges[0]
    bridge.borrowed.insert(999999, 7, 1)  # nobody holds this block
    report = audit_system(system)
    assert any("I3" in v for v in report.violations)
