"""Tests for data partitioning across banks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import tiny_config
from repro.dram import AddressMap
from repro.runtime.partition import AllocationError, PartitionMap


def make_pmap():
    return PartitionMap(AddressMap(tiny_config()))


def test_blocked_layout_contiguous_per_unit():
    pm = make_pmap()
    arr = pm.allocate("a", 160, 64)  # 16 units -> 10 elements per unit
    assert arr.per_unit == 10
    assert pm.home_unit(arr, 0) == 0
    assert pm.home_unit(arr, 9) == 0
    assert pm.home_unit(arr, 10) == 1
    assert pm.elements_of_unit(arr, 1) == list(range(10, 20))


def test_striped_layout_round_robin():
    pm = make_pmap()
    arr = pm.allocate("a", 160, 64, layout="striped")
    assert pm.home_unit(arr, 0) == 0
    assert pm.home_unit(arr, 1) == 1
    assert pm.home_unit(arr, 16) == 0
    assert pm.elements_of_unit(arr, 2) == list(range(2, 160, 16))


def test_addr_round_trip_blocked():
    pm = make_pmap()
    arr = pm.allocate("a", 333, 32)
    for i in range(0, 333, 7):
        assert pm.index_of(arr, pm.addr_of(arr, i)) == i


def test_addr_round_trip_striped():
    pm = make_pmap()
    arr = pm.allocate("a", 333, 32, layout="striped")
    for i in range(0, 333, 7):
        assert pm.index_of(arr, pm.addr_of(arr, i)) == i


def test_addresses_fall_in_home_bank():
    pm = make_pmap()
    arr = pm.allocate("a", 160, 64)
    amap = pm.addr_map
    for i in range(160):
        assert amap.unit_of_addr(pm.addr_of(arr, i)) == pm.home_unit(arr, i)


def test_two_arrays_do_not_overlap():
    pm = make_pmap()
    a = pm.allocate("a", 160, 64)
    b = pm.allocate("b", 160, 64)
    addrs_a = {pm.addr_of(a, i) for i in range(160)}
    addrs_b = {pm.addr_of(b, i) for i in range(160)}
    assert not addrs_a & addrs_b


def test_duplicate_name_rejected():
    pm = make_pmap()
    pm.allocate("a", 10, 8)
    with pytest.raises(AllocationError):
        pm.allocate("a", 10, 8)


def test_bank_overflow_rejected():
    pm = make_pmap()
    with pytest.raises(AllocationError):
        # 16 units x 64 MB banks; per-unit share would be 128 MB.
        pm.allocate("huge", 16 * 2 * 1024 * 1024, 1024)


def test_bad_args_rejected():
    pm = make_pmap()
    with pytest.raises(AllocationError):
        pm.allocate("a", 0, 8)
    with pytest.raises(AllocationError):
        pm.allocate("b", 10, 8, layout="diagonal")


def test_index_out_of_range():
    pm = make_pmap()
    arr = pm.allocate("a", 10, 8)
    with pytest.raises(IndexError):
        pm.addr_of(arr, 10)


def test_foreign_address_rejected():
    pm = make_pmap()
    a = pm.allocate("a", 16, 64)
    b = pm.allocate("b", 16, 64)
    with pytest.raises(ValueError):
        pm.index_of(a, pm.addr_of(b, 0))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=1000),
       st.sampled_from([8, 32, 64, 256]),
       st.sampled_from(["blocked", "striped"]))
def test_round_trip_property(n, el, layout):
    pm = make_pmap()
    arr = pm.allocate("x", n, el, layout=layout)
    for i in range(0, n, max(1, n // 17)):
        addr = pm.addr_of(arr, i)
        assert pm.index_of(arr, addr) == i
        assert pm.addr_map.unit_of_addr(addr) == pm.home_unit(arr, i)
