"""Tests for address mapping across the DRAM hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_config, tiny_config
from repro.dram import AddressMap


def test_unit_coord_round_trip_default():
    amap = AddressMap(default_config())
    for unit in range(0, amap.total_units, 37):
        coord = amap.coord_of_unit(unit)
        assert amap.unit_of_coord(coord) == unit


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=511))
def test_unit_coord_round_trip_property(unit):
    amap = AddressMap(default_config())
    assert amap.unit_of_coord(amap.coord_of_unit(unit)) == unit


def test_coord_ranges():
    amap = AddressMap(default_config())
    coord = amap.coord_of_unit(511)
    assert coord.channel == 1
    assert coord.rank == 3
    assert coord.chip == 7
    assert coord.bank == 7


def test_units_are_contiguous_per_rank():
    amap = AddressMap(default_config())
    units = list(amap.units_in_rank(3))
    assert units == list(range(3 * 64, 4 * 64))
    for u in units:
        assert amap.rank_of_unit(u) == 3


def test_channel_of_rank():
    amap = AddressMap(default_config())
    assert amap.channel_of_rank(0) == 0
    assert amap.channel_of_rank(3) == 0
    assert amap.channel_of_rank(4) == 1
    assert amap.channel_of_rank(7) == 1


def test_addr_to_unit():
    cfg = default_config()
    amap = AddressMap(cfg)
    bank = amap.bank_bytes
    assert amap.unit_of_addr(0) == 0
    assert amap.unit_of_addr(bank - 1) == 0
    assert amap.unit_of_addr(bank) == 1
    assert amap.bank_offset(bank + 100) == 100


def test_addr_out_of_range():
    amap = AddressMap(tiny_config())
    with pytest.raises(ValueError):
        amap.unit_of_addr(amap.total_bytes)
    with pytest.raises(ValueError):
        amap.unit_of_addr(-1)
    with pytest.raises(ValueError):
        amap.coord_of_unit(amap.total_units)


def test_blocks():
    cfg = default_config()
    amap = AddressMap(cfg)
    g = cfg.comm.g_xfer_bytes
    assert amap.block_of_addr(0) == 0
    assert amap.block_of_addr(g - 1) == 0
    assert amap.block_of_addr(g) == 1
    assert amap.block_base(5) == 5 * g
    assert amap.unit_of_block(amap.block_of_addr(amap.bank_bytes)) == 1


def test_same_chip_and_rank():
    amap = AddressMap(default_config())
    # Units 0..7 are the 8 banks of chip 0 in rank 0.
    assert amap.same_chip(0, 7)
    assert not amap.same_chip(0, 8)
    assert amap.same_rank(0, 63)
    assert not amap.same_rank(0, 64)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=2**30 - 1))
def test_block_unit_consistency(addr):
    amap = AddressMap(tiny_config())
    addr = addr % amap.total_bytes
    block = amap.block_of_addr(addr)
    assert amap.unit_of_block(block) == amap.unit_of_addr(addr)
