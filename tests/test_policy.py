"""Tests for the data-transfer-aware scheduling policy (Section VI-C)."""

import pytest

from repro.balance import ChildLoad, SchedulingPolicy
from repro.config import BalanceConfig
from repro.sim import DeterministicRNG


def make_policy(**kwargs) -> SchedulingPolicy:
    cfg = BalanceConfig(enabled=True, **kwargs)
    return SchedulingPolicy(cfg, DeterministicRNG(3, "policy"))


def loads(*workloads, to_arrive=None):
    to_arrive = to_arrive or [0] * len(workloads)
    return [
        ChildLoad(child_id=i, queue_workload=w, to_arrive=t)
        for i, (w, t) in enumerate(zip(workloads, to_arrive))
    ]


class TestWTh:
    def test_formula(self):
        p = make_policy()
        # W_th = 2 * G_xfer * S_exe / S_xfer
        assert p.w_th(256, s_exe=0.5, s_xfer=6.0) == int(2 * 256 * 0.5 / 6.0)

    def test_minimum_one(self):
        p = make_policy()
        assert p.w_th(64, s_exe=1e-9, s_xfer=6.0) == 1

    def test_rejects_bad_speed(self):
        p = make_policy()
        with pytest.raises(ValueError):
            p.w_th(256, 1.0, 0.0)


class TestClassicStealing:
    """All optimizations off: the W baseline."""

    def test_steals_only_when_empty(self):
        p = make_policy(advance_trigger=False, fine_grained=False)
        # Nobody is empty -> no plans.
        assert p.plan(loads(100, 50, 30), w_th=40) == []

    def test_steals_half_the_victim(self):
        p = make_policy(advance_trigger=False, fine_grained=False)
        plans = p.plan(loads(0, 100), w_th=40)
        assert len(plans) == 1
        plan = plans[0]
        assert plan.giver == 1
        assert plan.budget == 50
        assert plan.receivers == [(0, 50)]

    def test_workload_correction_suppresses_double_steal(self):
        p = make_policy(advance_trigger=False, fine_grained=False,
                        workload_correction=True)
        # Receiver already has 60 workload in flight -> not idle.
        plans = p.plan(loads(0, 100, to_arrive=[60, 0]), w_th=40)
        assert plans == []

    def test_no_correction_ignores_in_flight(self):
        p = make_policy(advance_trigger=False, fine_grained=False,
                        workload_correction=False)
        plans = p.plan(loads(0, 100, to_arrive=[60, 0]), w_th=40)
        assert len(plans) == 1


class TestAdvanceTrigger:
    def test_schedules_before_empty(self):
        p = make_policy(advance_trigger=True, fine_grained=True)
        # Queue 10 < W_th 40: receiver even though not empty.
        plans = p.plan(loads(10, 500), w_th=40)
        assert len(plans) == 1
        assert plans[0].giver == 1

    def test_above_threshold_not_receiver(self):
        p = make_policy(advance_trigger=True, fine_grained=True)
        assert p.plan(loads(45, 500), w_th=40) == []


class TestFineGrained:
    def test_budget_is_target_minus_current(self):
        p = make_policy(advance_trigger=True, fine_grained=True,
                        budget_w_th_multiple=2.0, max_givers_per_receiver=1)
        plans = p.plan(loads(10, 1000), w_th=40)
        # Target 2*40 = 80, has 10 -> asks for 70.
        assert plans[0].budget == 70

    def test_budget_capped_by_giver_capacity(self):
        p = make_policy(advance_trigger=True, fine_grained=True,
                        max_givers_per_receiver=1)
        plans = p.plan(loads(0, 85), w_th=40)
        assert plans and plans[0].budget <= 85

    def test_small_givers_not_victimized(self):
        p = make_policy(advance_trigger=True, fine_grained=True)
        # Giver must hold at least GIVER_MARGIN * w_th.
        assert p.plan(loads(0, 50), w_th=40) == []


def test_no_givers_no_plans():
    p = make_policy(advance_trigger=False, fine_grained=False)
    assert p.plan(loads(0, 0, 0), w_th=40) == []


def test_multiple_receivers_share_givers():
    p = make_policy(advance_trigger=True, fine_grained=True,
                    max_givers_per_receiver=2)
    plans = p.plan(loads(0, 0, 10_000, 10_000), w_th=40)
    total_budget = sum(pl.budget for pl in plans)
    receivers = {r for pl in plans for r, _ in pl.receivers}
    assert receivers == {0, 1}
    assert total_budget >= 2 * (2 * 40 - 0) // 2  # both receivers served


def test_plan_is_deterministic_per_seed():
    a = make_policy(advance_trigger=True, fine_grained=True)
    b = make_policy(advance_trigger=True, fine_grained=True)
    la = loads(0, 10, 500, 800, 900)
    pa = a.plan(la, w_th=40)
    pb = b.plan(la, w_th=40)
    assert [(p.giver, p.budget, p.receivers) for p in pa] == \
        [(p.giver, p.budget, p.receivers) for p in pb]
