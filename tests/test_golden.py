"""Golden regression tests: exact pinned results for a small matrix.

The simulator is deterministic by contract, so these are equality tests,
not tolerances: any diff in makespan, task count, or a latency tail on
the (app x design) matrix below means the *model changed*.  If the
change is intentional, regenerate the tables and review the diff like
any other golden update:

    PYTHONPATH=src python tests/test_golden.py

prints freshly computed ``CLOSED``/``OPENLOOP`` dicts to paste over the
ones in this file.
"""

import pytest

from repro import make_app, run_app
from repro.config import Design, tiny_config
from repro.runtime.requests import run_openloop
from repro.workloads.openloop import OpenLoopSpec, TenantSpec

APPS = ("ll", "ht", "tree")
DESIGNS = (Design.C, Design.B, Design.W, Design.O)
SCALE = 0.05
SEED = 7

REGEN = ("run `PYTHONPATH=src python tests/test_golden.py` and paste "
         "the printed tables over the goldens if the change is intended")

#: Closed-loop goldens: (makespan, tasks_executed, task_messages).
CLOSED = {
    ("ll", "C"): (80342, 8766, 0),
    ("ll", "B"): (80342, 8766, 0),
    ("ll", "W"): (52945, 8766, 1167),
    ("ll", "O"): (71944, 8766, 90),
    ("ht", "C"): (7324, 499, 0),
    ("ht", "B"): (7324, 499, 0),
    ("ht", "W"): (7769, 499, 14),
    ("ht", "O"): (6542, 499, 10),
    ("tree", "C"): (28281, 671, 369),
    ("tree", "B"): (8865, 671, 369),
    ("tree", "W"): (11577, 671, 384),
    ("tree", "O"): (8866, 671, 369),
}

#: Open-loop goldens: (makespan, tenant-a p99, tenant-b p99).
OPENLOOP = {
    ("ll", "C"): (44777, 42075, 42099),
    ("ll", "B"): (44777, 42075, 42099),
    ("ll", "W"): (37354, 34560, 34500),
    ("ll", "O"): (44777, 42075, 42099),
    ("ht", "C"): (4473, 2024, 1821),
    ("ht", "B"): (4473, 2024, 1821),
    ("ht", "W"): (6175, 3053, 3233),
    ("ht", "O"): (4473, 2024, 1733),
    ("tree", "C"): (26312, 23667, 23369),
    ("tree", "B"): (9485, 6044, 6462),
    ("tree", "W"): (10949, 7668, 7134),
    ("tree", "O"): (8984, 5884, 6516),
}


def golden_spec() -> OpenLoopSpec:
    return OpenLoopSpec(
        tenants=(
            TenantSpec(name="a", n_requests=60, mean_gap=60.0,
                       skew=((0, 0.6), (1500, 1.2))),
            TenantSpec(name="b", n_requests=40, mean_gap=90.0,
                       arrival="bursty", burst_gap=15.0,
                       skew=((0, 1.0),)),
        ),
        warmup=400,
    )


def closed_result(app: str, design: Design):
    m = run_app(make_app(app, scale=SCALE, seed=SEED),
                tiny_config(design)).metrics
    return (m.makespan, m.tasks_executed, m.task_messages)


def openloop_result(app: str, design: Design):
    r = run_openloop(app, tiny_config(design), golden_spec(),
                     scale=SCALE, seed=SEED)
    e = r.metrics.extra
    return (r.metrics.makespan, int(e["lat/a/p990"]),
            int(e["lat/b/p990"]))


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("design", DESIGNS)
def test_closed_loop_golden(app, design):
    got = closed_result(app, design)
    want = CLOSED[(app, design.value)]
    assert got == want, (
        f"{app}/{design.value}: (makespan, tasks, task_msgs) {got} != "
        f"golden {want} -- the model changed; {REGEN}"
    )


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("design", DESIGNS)
def test_openloop_golden(app, design):
    got = openloop_result(app, design)
    want = OPENLOOP[(app, design.value)]
    assert got == want, (
        f"{app}/{design.value}: (makespan, p99_a, p99_b) {got} != "
        f"golden {want} -- the model changed; {REGEN}"
    )


def test_golden_matrix_is_complete():
    keys = {(a, d.value) for a in APPS for d in DESIGNS}
    assert set(CLOSED) == keys
    assert set(OPENLOOP) == keys


def _regenerate() -> None:  # pragma: no cover - manual tool
    print("CLOSED = {")
    for app in APPS:
        for design in DESIGNS:
            print(f'    ("{app}", "{design.value}"): '
                  f'{closed_result(app, design)},')
    print("}")
    print("OPENLOOP = {")
    for app in APPS:
        for design in DESIGNS:
            print(f'    ("{app}", "{design.value}"): '
                  f'{openloop_result(app, design)},')
    print("}")


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
