"""Tests for the alternative communication fabrics (designs C and R)."""

import pytest

from repro.bridge.fabric import BridgeFabric, build_fabric
from repro.bridge.host_path import HostForwardingFabric
from repro.bridge.rowclone import RowCloneFabric
from repro.config import Design, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


def make_system(design):
    system = NDPSystem(tiny_config(design))
    system.registry.register("noop", lambda ctx, task: None)
    return system


class TestFabricSelection:
    def test_bridge_designs_get_bridge_fabric(self):
        for design in (Design.B, Design.W, Design.O):
            assert isinstance(make_system(design).fabric, BridgeFabric)

    def test_c_gets_host_fabric(self):
        fabric = make_system(Design.C).fabric
        assert isinstance(fabric, HostForwardingFabric)
        assert not isinstance(fabric, RowCloneFabric)

    def test_r_gets_rowclone_fabric(self):
        assert isinstance(make_system(Design.R).fabric, RowCloneFabric)

    def test_h_has_no_ndp_fabric(self):
        with pytest.raises(ValueError):
            NDPSystem(tiny_config(Design.H))


class TestHostForwarding:
    def test_remote_message_crosses_channel(self):
        sys_ = make_system(Design.C)

        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 9))

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.units[9].tasks_executed == 1
        assert sys_.fabric.channel_links[0].total_bytes > 0
        assert sys_.stats.counter("host", "messages_forwarded").value >= 1

    def test_poll_interval_bounds_latency(self):
        sys_ = make_system(Design.C)

        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 9))

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(sys_, 0),
                            workload=5))
        sys_.run()
        # Delivery needs at least one poll after the message is mailed.
        interval = sys_.config.comm.host_poll_interval_cycles
        assert sys_.makespan >= interval

    def test_host_overhead_serializes_many_messages(self):
        def run(n_children):
            sys_ = make_system(Design.C)

            def spray(ctx, task):
                for i in range(n_children):
                    ctx.enqueue_task(
                        "noop", task.ts, bank_addr(sys_, 1 + (i % 15)),
                        workload=1,
                    )

            sys_.registry.register("spray", spray)
            sys_.seed_task(Task(func="spray", ts=0,
                                data_addr=bank_addr(sys_, 0)))
            sys_.run()
            return sys_.makespan

        assert run(120) > run(4)


class TestRowClone:
    def test_same_chip_message_bypasses_host(self):
        sys_ = make_system(Design.R)

        def spawn(ctx, task):
            # Unit 1 is in the same chip as unit 0 (4 banks per chip).
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 1))

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.stats.counter("rowclone", "intra_chip_copies").value == 1
        assert sys_.stats.counter("host", "messages_forwarded").value == 0

    def test_cross_chip_message_uses_host(self):
        sys_ = make_system(Design.R)

        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 5))  # chip 1

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.stats.counter("rowclone", "intra_chip_copies").value == 0
        assert sys_.stats.counter("host", "messages_forwarded").value >= 1

    def test_intra_chip_is_faster_than_host_forwarding(self):
        def run(design):
            sys_ = make_system(design)

            def spawn(ctx, task):
                ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 1))

            sys_.registry.register("spawn", spawn)
            sys_.seed_task(Task(func="spawn", ts=0,
                                data_addr=bank_addr(sys_, 0)))
            sys_.run()
            return sys_.makespan

        assert run(Design.R) < run(Design.C)


class TestHostAccessInefficiency:
    def test_host_transfers_charge_transposition_overhead(self):
        from repro.bridge.host_path import HOST_ACCESS_INEFFICIENCY

        sys_ = make_system(Design.C)

        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 9))

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0,
                            data_addr=bank_addr(sys_, 0)))
        sys_.run()
        # One 64 B message crosses the channel twice, each inflated by
        # the transposition factor.
        chan = sys_.fabric.channel_links[0].total_bytes
        assert chan >= 2 * 64 * HOST_ACCESS_INEFFICIENCY

    def test_forwarding_threads_parallelize_batches(self):
        fabric = make_system(Design.C).fabric
        assert len(fabric._thread_busy) >= 2
