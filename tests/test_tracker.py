"""Tests for epoch tracking and termination detection."""

import pytest

from repro.runtime.tracker import RunTracker


def test_simple_lifecycle():
    tr = RunTracker()
    tr.task_created(0)
    assert not tr.finished
    tr.task_completed(0)
    assert tr.finished


def test_epoch_advances_through_future_work():
    tr = RunTracker()
    epochs = []
    tr.on_epoch_advance(epochs.append)
    tr.task_created(0)
    tr.task_created(1)
    tr.task_created(1)
    tr.task_completed(0)
    assert tr.epoch == 1
    assert epochs == [1]
    assert not tr.finished
    tr.task_completed(1)
    tr.task_completed(1)
    assert tr.finished


def test_in_flight_messages_hold_epoch():
    tr = RunTracker()
    tr.task_created(0)
    tr.message_departed(is_data=False)
    tr.task_completed(0)
    assert not tr.finished       # a task message is still flying
    tr.message_delivered(is_data=False)
    assert tr.finished


def test_data_messages_do_not_hold_epoch():
    tr = RunTracker()
    tr.task_created(0)
    tr.message_departed(is_data=True)
    tr.task_completed(0)
    assert tr.finished           # data-only transfers don't block


def test_sparse_epochs_skip_forward():
    tr = RunTracker()
    tr.task_created(0)
    tr.task_created(5)
    tr.task_completed(0)
    # Epochs advance one at a time but drain instantly when empty.
    assert tr.epoch == 5
    tr.task_completed(5)
    assert tr.finished


def test_listener_creating_work_keeps_run_alive():
    tr = RunTracker()

    def seeder(epoch):
        if epoch == 1:
            tr.task_created(1)

    tr.on_epoch_advance(seeder)
    tr.task_created(0)
    tr.task_created(1)
    tr.task_completed(0)
    assert tr.epoch == 1
    tr.task_completed(1)
    tr.task_completed(1)
    assert tr.finished


def test_finish_listener_runs_once():
    tr = RunTracker()
    fired = []
    tr.on_finish(lambda: fired.append(1))
    tr.task_created(0)
    tr.task_completed(0)
    tr.check_progress()
    assert fired == [1]


def test_invalid_transitions_raise():
    tr = RunTracker()
    tr.task_created(0)
    tr.task_completed(0)
    with pytest.raises(RuntimeError):
        tr.task_completed(0)
    with pytest.raises(RuntimeError):
        tr.message_delivered(is_data=False)


def test_creating_for_past_epoch_raises():
    tr = RunTracker()
    tr.task_created(0)
    tr.task_created(2)
    tr.task_completed(0)
    assert tr.epoch == 2
    with pytest.raises(ValueError):
        tr.task_created(1)


def test_outstanding_counts():
    tr = RunTracker()
    tr.task_created(0)
    tr.task_created(0)
    tr.task_completed(0)
    assert tr.outstanding(0) == 1
    assert tr.total_created == 2
    assert tr.total_completed == 1
