"""collect_metrics coverage for the host-system branch."""

from repro.analysis import collect_metrics
from repro.apps import make_app
from repro.baselines.host_system import HostSystem
from repro.config import Design, tiny_config
from repro.runtime.task import Task


def test_host_metrics_fields():
    host = HostSystem(tiny_config(Design.H))
    host.registry.register("t", lambda ctx, task: None)
    for i in range(8):
        host.seed_task(Task(func="t", ts=0, data_addr=i * 4096,
                            workload=130, actual_cycles=130,
                            read_only=True))
    host.run()
    m = collect_metrics(host, "custom")
    assert m.design == "H"
    assert m.app == "custom"
    assert m.makespan == host.makespan
    assert m.tasks_executed == 8
    # The host model has no NDP message fabric or energy accounting.
    assert m.task_messages == 0
    assert m.data_messages == 0
    assert m.energy is None


def test_host_avg_uses_busy_cycles():
    host = HostSystem(tiny_config(Design.H))
    host.registry.register("t", lambda ctx, task: None)
    host.seed_task(Task(func="t", ts=0, data_addr=0,
                        workload=1300, actual_cycles=1300))
    host.run()
    m = collect_metrics(host, "x")
    # One of 16 cores did all the work.
    assert m.avg_unit_time * 16 == sum(c.busy_cycles for c in host.cores)
    assert 0 < m.avg_over_max <= 1.0


def test_host_runs_full_app_through_collect():
    from repro.runtime.runner import run_app

    result = run_app(make_app("spmv", scale=0.03, seed=5),
                     tiny_config(Design.H))
    assert result.metrics.design == "H"
    assert result.metrics.wait_fraction >= 0.0
