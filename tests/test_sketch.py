"""Tests for the HeavyGuardian-style hot-data sketch (Section VI-C)."""

from hypothesis import given, settings, strategies as st

from repro.balance import HotDataSketch
from repro.config import SketchConfig
from repro.sim import DeterministicRNG


def make_sketch(buckets=16, entries=16):
    cfg = SketchConfig(buckets=buckets, entries_per_bucket=entries)
    return HotDataSketch(cfg, DeterministicRNG(1, "sketch"))


def test_insert_and_hit():
    sk = make_sketch()
    r = sk.observe(10, 5)
    assert r.resident and r.evicted_block is None
    r = sk.observe(10, 3)
    assert r.resident
    assert sk.workload_of(10) == 8
    assert sk.contains(10)


def test_counter_saturates_at_byte_width():
    sk = make_sketch()
    sk.observe(10, 200)
    sk.observe(10, 200)
    assert sk.workload_of(10) == 255


def test_hottest_finds_max():
    sk = make_sketch()
    sk.observe(1, 5)
    sk.observe(2, 50)
    sk.observe(3, 20)
    assert sk.hottest().block_id == 2
    sk.remove(2)
    assert sk.hottest().block_id == 3


def test_empty_sketch_has_no_hottest():
    sk = make_sketch()
    assert sk.hottest() is None
    assert len(sk) == 0


def test_full_bucket_decays_probabilistically():
    # One bucket with 2 entries: all even blocks collide into bucket 0.
    sk = make_sketch(buckets=1, entries=2)
    sk.observe(0, 1)
    sk.observe(1, 1)
    # Hammer a new block; the weak existing entries must eventually be
    # replaced (decay probability b^-1 is ~0.93).
    replaced = False
    for _ in range(50):
        r = sk.observe(2, 1)
        if r.resident:
            replaced = True
            break
    assert replaced
    assert sk.replacements >= 1


def test_eviction_reports_victim():
    sk = make_sketch(buckets=1, entries=1)
    sk.observe(7, 1)
    evicted = None
    for _ in range(100):
        r = sk.observe(8, 5)
        if r.evicted_block is not None:
            evicted = r.evicted_block
            break
    assert evicted == 7


def test_hot_items_survive_cold_churn():
    """The HeavyGuardian property: a heavy hitter is retained under churn."""
    sk = make_sketch(buckets=4, entries=4)
    rng = DeterministicRNG(9, "traffic")
    for i in range(2000):
        sk.observe(999, 10)           # the elephant
        sk.observe(rng.randint(0, 200), 1)  # mice
    assert sk.contains(999)
    assert sk.workload_of(999) >= 100


def test_sram_footprint_matches_config():
    sk = make_sketch(buckets=16, entries=16)
    # 16 x 16 entries x (8 B address + 1 B counter) ~ 2.25 kB (paper: ~2 kB).
    assert sk.sram_bytes == 16 * 16 * 9


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=100),
              st.integers(min_value=1, max_value=50)),
    max_size=300,
))
def test_size_never_exceeds_capacity(observations):
    sk = make_sketch(buckets=2, entries=3)
    for block, w in observations:
        sk.observe(block, w)
        assert len(sk) <= 6
        for entry in sk.entries():
            assert 0 <= entry.workload <= 255
