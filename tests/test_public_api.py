"""The public API surface: everything __all__ promises must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.config",
    "repro.dram",
    "repro.links",
    "repro.messages",
    "repro.ndp",
    "repro.bridge",
    "repro.balance",
    "repro.runtime",
    "repro.apps",
    "repro.workloads",
    "repro.baselines",
    "repro.energy",
    "repro.analysis",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_all_resolves(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_quickstart_symbols():
    import repro

    for symbol in ("Design", "SystemConfig", "default_config", "make_app",
                   "run_app", "NDPSystem", "RunMetrics", "Task"):
        assert hasattr(repro, symbol)


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_docstrings_on_public_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"


def test_main_module_compiles():
    import pathlib
    import py_compile

    import repro

    path = pathlib.Path(repro.__file__).parent / "__main__.py"
    py_compile.compile(str(path), doraise=True)


def test_extension_app_registry_complete():
    from repro.apps import EXTENSION_APPS, make_app

    assert set(EXTENSION_APPS) == {"stencil", "hist", "join", "tc"}
    for name in EXTENSION_APPS:
        assert make_app(name, scale=0.05).name == name
