"""Tests for the split-DIMM (chameleon-s) variant (Section V-A)."""

from dataclasses import replace

import pytest

from repro.config import Design, split_dimm_config, tiny_config, validate_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


def tiny_split(design=Design.B):
    cfg = tiny_config(design)
    return cfg.replace(comm=replace(cfg.comm, split_dimm=True))


def test_preset_builds_and_validates():
    cfg = split_dimm_config()
    validate_config(cfg)
    assert cfg.comm.split_dimm


def test_link_bandwidth_reduced():
    normal = tiny_config(Design.B)
    split = tiny_split()
    assert split.chip_link_bytes_per_cycle == pytest.approx(
        0.75 * normal.chip_link_bytes_per_cycle
    )
    # The channel toward the host is unaffected.
    assert split.channel_bytes_per_cycle == normal.channel_bytes_per_cycle


def test_communication_is_slower_end_to_end():
    def run(cfg):
        system = NDPSystem(cfg)
        system.registry.register("noop", lambda ctx, task: None)
        bank = system.addr_map.bank_bytes

        def spray(ctx, task):
            for i in range(200):
                ctx.enqueue_task("noop", task.ts,
                                 (1 + i % 15) * bank + i * 256, workload=2)

        system.registry.register("spray", spray)
        system.seed_task(Task(func="spray", ts=0, data_addr=0))
        system.run()
        return system.makespan

    assert run(tiny_split()) > run(tiny_config(Design.B))


def test_compute_only_work_unaffected():
    def run(cfg):
        system = NDPSystem(cfg)
        system.registry.register("t", lambda ctx, task: None)
        system.seed_task(Task(func="t", ts=0, data_addr=0,
                              workload=5000, actual_cycles=5000))
        system.run()
        return system.makespan

    assert run(tiny_split()) == run(tiny_config(Design.B))


def test_invalid_pin_fraction_rejected():
    from repro.config import ConfigError

    cfg = tiny_config(Design.B)
    bad = cfg.replace(
        comm=replace(cfg.comm, split_dimm_data_pin_fraction=0.0)
    )
    with pytest.raises(ConfigError):
        validate_config(bad)
