"""Tests for dynamic communication triggering (Section V-C)."""

from repro.config import CommConfig, TriggerMode
from repro.bridge.triggering import CommTrigger


def make_trigger(mode=TriggerMode.DYNAMIC, g_xfer=256):
    return CommTrigger(CommConfig(g_xfer_bytes=g_xfer, trigger_mode=mode))


def should(trigger, now=1000, last=0, i_min=100, lens=(), idle=False,
           internal=False):
    return trigger.should_start_round(now, last, i_min, lens, idle, internal)


class TestDynamic:
    def test_no_traffic_no_round(self):
        t = make_trigger()
        assert not should(t, lens=[0, 0, 0])

    def test_full_mailbox_triggers_immediately(self):
        t = make_trigger()
        assert should(t, now=1, last=0, lens=[0, 256, 0])

    def test_partial_mailbox_waits_for_idle_child(self):
        t = make_trigger()
        # Some traffic but nobody idle and below G_xfer: wait.
        assert not should(t, lens=[100], idle=False)
        # An idle child exists and I_min has elapsed: go.
        assert should(t, now=200, last=0, i_min=100, lens=[100], idle=True)

    def test_idle_child_respects_i_min(self):
        t = make_trigger()
        assert not should(t, now=50, last=0, i_min=100, lens=[100], idle=True)

    def test_internal_pending_drains(self):
        t = make_trigger()
        assert should(t, now=200, last=0, i_min=100, lens=[0],
                      internal=True)
        assert not should(t, now=50, last=0, i_min=100, lens=[0],
                          internal=True)

    def test_does_not_gather_empty_children(self):
        t = make_trigger()
        assert not t.gathers_empty_children()


class TestFixed:
    def test_fixed_interval(self):
        t = make_trigger(TriggerMode.FIXED)
        assert should(t, now=100, last=0, i_min=100, lens=[0])
        assert not should(t, now=99, last=0, i_min=100, lens=[0])
        assert t.gathers_empty_children()

    def test_fixed_2x_interval(self):
        t = make_trigger(TriggerMode.FIXED_2X)
        assert not should(t, now=150, last=0, i_min=100, lens=[256])
        assert should(t, now=200, last=0, i_min=100, lens=[0])
