"""Tests for the level-1 (rank) bridge: rounds, routing, backpressure."""

import pytest

from repro.config import Design, TriggerMode, tiny_config, trigger_mode_config
from repro.messages import DataMessage, TaskMessage
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

from .conftest import noop_task


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


def make_system(design=Design.B):
    system = NDPSystem(tiny_config(design))
    system.registry.register("noop", lambda ctx, task: None)
    return system


class TestRounds:
    def test_message_round_moves_mail(self):
        sys_ = make_system()
        sys_.seed_task(Task(func="spawn", ts=0,
                            data_addr=bank_addr(sys_, 0)))

        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 9))

        sys_.registry.register("spawn", spawn)
        sys_.run()
        bridge = sys_.fabric.rank_bridges[0]
        assert bridge._stat_rounds.value >= 1
        assert sys_.units[9].tasks_executed == 1

    def test_state_rounds_happen_periodically(self):
        sys_ = make_system()
        sys_.seed_task(noop_task(bank_addr(sys_, 0), workload=10_000))
        sys_.run()
        bridge = sys_.fabric.rank_bridges[0]
        expected = sys_.makespan // sys_.config.comm.i_state_cycles
        assert bridge._stat_state_rounds.value >= expected - 1

    def test_dynamic_skips_empty_mailboxes(self):
        sys_ = make_system()
        sys_.seed_task(noop_task(bank_addr(sys_, 0), workload=5000))
        sys_.run()
        bridge = sys_.fabric.rank_bridges[0]
        assert bridge._stat_wasted_gathers.value == 0

    def test_fixed_mode_wastes_gathers(self):
        cfg = trigger_mode_config(TriggerMode.FIXED, Design.B)
        from dataclasses import replace

        cfg = cfg.replace(
            topology=tiny_config(Design.B).topology,
            balance=replace(cfg.balance, enabled=False),
        )
        sys_ = NDPSystem(cfg)
        sys_.registry.register("noop", lambda ctx, task: None)

        def chat(ctx, task):
            if task.args[0] > 0:
                ctx.enqueue_task("chat", task.ts,
                                 bank_addr(sys_, task.args[0] % 16),
                                 workload=200, args=(task.args[0] - 1,))

        sys_.registry.register("chat", chat)
        sys_.seed_task(Task(func="chat", ts=0, data_addr=bank_addr(sys_, 0),
                            workload=200, args=(30,)))
        sys_.run()
        bridge = sys_.fabric.rank_bridges[0]
        assert bridge._stat_wasted_gathers.value > 0


class TestRouting:
    def test_chip_links_carry_traffic(self):
        sys_ = make_system()

        def spray(ctx, task):
            for u in range(1, 16):
                ctx.enqueue_task("noop", task.ts, bank_addr(sys_, u))

        sys_.registry.register("spray", spray)
        sys_.seed_task(Task(func="spray", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        bridge = sys_.fabric.rank_bridges[0]
        assert all(link.total_bytes > 0 for link in bridge.chip_links)
        assert bridge._stat_routed_local.value >= 15

    def test_single_rank_has_no_up_traffic(self):
        sys_ = make_system()

        def spray(ctx, task):
            for u in range(16):
                ctx.enqueue_task("noop", task.ts, bank_addr(sys_, u))

        sys_.registry.register("spray", spray)
        sys_.seed_task(Task(func="spray", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        bridge = sys_.fabric.rank_bridges[0]
        assert bridge._stat_routed_up.value == 0
        assert len(bridge.up_mailbox) == 0


class TestBackpressure:
    def test_scatter_overflow_goes_to_backup_and_recovers(self):
        from dataclasses import replace

        cfg = tiny_config(Design.B)
        # A 64 B scatter buffer forces overflow into the backup buffer.
        cfg = cfg.replace(
            bridge=replace(cfg.bridge, scatter_buffer_bytes_per_bank=64)
        )
        sys_ = NDPSystem(cfg)
        sys_.registry.register("noop", lambda ctx, task: None)

        def flood(ctx, task):
            for _ in range(20):
                ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 9),
                                 workload=5)

        sys_.registry.register("flood", flood)
        sys_.seed_task(Task(func="flood", ts=0,
                            data_addr=bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.units[9].tasks_executed == 20
        assert sys_.tracker.finished

    def test_i_min_reflects_round_duration(self):
        sys_ = make_system()
        bridge = sys_.fabric.rank_bridges[0]
        analytic = bridge._analytic_i_min()
        assert analytic > 0
        # One G_xfer transfer per bank per chip, gather + scatter.
        cfg = sys_.config
        per = cfg.t_rcd_cycles + cfg.t_cas_cycles + 43  # ceil(256/6)
        assert analytic == 2 * cfg.topology.banks_per_chip * per
