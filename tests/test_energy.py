"""Tests for the energy accounting model (Fig. 13 infrastructure)."""

import pytest

from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.energy import EnergyBreakdown, account_energy
from repro.runtime.runner import run_app
from repro.sim import StatsRegistry


def test_breakdown_totals():
    b = EnergyBreakdown(core_sram_pj=10.0, local_dram_pj=20.0,
                        comm_dram_pj=30.0, static_pj=40.0)
    assert b.total_pj == 100.0
    assert b.total_uj == pytest.approx(1e-4)
    assert b.as_dict()["total_pj"] == 100.0


def test_empty_run_has_only_static():
    cfg = tiny_config(Design.B)
    stats = StatsRegistry()
    e = account_energy(cfg, stats, makespan_cycles=1000, total_busy_cycles=0)
    assert e.core_sram_pj == 0
    assert e.local_dram_pj == 0
    assert e.comm_dram_pj == 0
    assert e.static_pj > 0


def test_core_energy_scales_with_busy_cycles():
    cfg = tiny_config(Design.B)
    stats = StatsRegistry()
    e1 = account_energy(cfg, stats, 1000, total_busy_cycles=100)
    e2 = account_energy(cfg, stats, 1000, total_busy_cycles=200)
    assert e2.core_sram_pj == pytest.approx(2 * e1.core_sram_pj)
    # 10 mW at 2.5 ns/cycle = 25 pJ per busy cycle.
    assert e1.core_sram_pj == pytest.approx(100 * 25.0)


def test_bank_words_split_local_vs_comm():
    cfg = tiny_config(Design.B)
    stats = StatsRegistry()
    stats.counter("bank0", "local_words_64bit").add(10)
    stats.counter("bank0", "comm_words_64bit").add(4)
    e = account_energy(cfg, stats, 1000, 0)
    assert e.local_dram_pj == pytest.approx(10 * 150.0)
    assert e.comm_dram_pj == pytest.approx(4 * 150.0)


def test_link_bytes_charged_to_comm():
    cfg = tiny_config(Design.B)
    stats = StatsRegistry()
    stats.counter("bridge0.chip0", "bytes").add(100)
    e = account_energy(cfg, stats, 1000, 0)
    assert e.comm_dram_pj == pytest.approx(100 * 10.0)


def test_bridge_designs_pay_bridge_static_power():
    cfg_b = tiny_config(Design.B)
    cfg_c = tiny_config(Design.C)
    stats = StatsRegistry()
    eb = account_energy(cfg_b, stats, 1000, 0)
    ec = account_energy(cfg_c, stats, 1000, 0)
    assert eb.static_pj > ec.static_pj


def test_end_to_end_energy_populated():
    result = run_app(make_app("tree", scale=0.03), tiny_config(Design.B))
    energy = result.metrics.energy
    assert energy is not None
    assert energy.total_pj > 0
    assert energy.local_dram_pj > 0
    assert energy.comm_dram_pj > 0  # tree communicates


def test_communication_free_app_has_less_comm_energy():
    r_ll = run_app(make_app("ll", scale=0.03), tiny_config(Design.B))
    r_tree = run_app(make_app("tree", scale=0.03), tiny_config(Design.B))
    ll_frac = r_ll.metrics.energy.comm_dram_pj / r_ll.metrics.energy.total_pj
    tree_frac = (
        r_tree.metrics.energy.comm_dram_pj / r_tree.metrics.energy.total_pj
    )
    assert ll_frac < tree_frac
