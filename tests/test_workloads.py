"""Tests for workload/data generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import DeterministicRNG
from repro.workloads import (
    BinaryTree,
    ZipfGenerator,
    balanced_bst,
    banded_matrix,
    chain_graph,
    powerlaw_matrix,
    random_bst,
    rmat_graph,
    shuffled_identity,
    uniform_graph,
)


class TestZipf:
    def test_samples_in_range(self):
        z = ZipfGenerator(100, 1.0, DeterministicRNG(1, "z"))
        for s in z.sample_many(500):
            assert 0 <= s < 100

    def test_skew_concentrates_mass(self):
        rng = DeterministicRNG(1, "z")
        z = ZipfGenerator(1000, 1.2, rng)
        samples = z.sample_many(5000)
        top10 = sum(1 for s in samples if s < 10)
        assert top10 > 0.25 * len(samples)

    def test_zero_skew_is_uniform(self):
        z = ZipfGenerator(10, 0.0, DeterministicRNG(2, "z"))
        counts = [0] * 10
        for s in z.sample_many(10000):
            counts[s] += 1
        assert min(counts) > 700  # each ~1000

    def test_probabilities_sum_to_one(self):
        z = ZipfGenerator(50, 0.9, DeterministicRNG(1, "z"))
        assert sum(z.probability(k) for k in range(50)) == pytest.approx(1.0)

    def test_rank_zero_is_hottest(self):
        z = ZipfGenerator(50, 1.0, DeterministicRNG(1, "z"))
        assert z.probability(0) > z.probability(1) > z.probability(49)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0, 1.0, DeterministicRNG(1, "z"))
        with pytest.raises(ValueError):
            ZipfGenerator(10, -1.0, DeterministicRNG(1, "z"))

    def test_shuffled_identity_is_permutation(self):
        perm = shuffled_identity(100, DeterministicRNG(3, "p"))
        assert sorted(perm) == list(range(100))


class TestGraphs:
    def test_uniform_graph_shape(self):
        g = uniform_graph(100, 5, DeterministicRNG(1, "g"))
        assert g.n == 100
        assert 0 < g.m <= 500
        for v in range(g.n):
            assert all(0 <= u < g.n and u != v for u in g.neighbors(v))

    def test_rmat_power_law_skew(self):
        g = rmat_graph(1024, 8, DeterministicRNG(1, "g"))
        degrees = sorted((g.out_degree(v) for v in range(g.n)), reverse=True)
        # Heavy head: the top vertex has far more than the average degree.
        assert degrees[0] > 4 * (g.m / g.n)

    def test_rmat_requires_power_of_two(self):
        with pytest.raises(ValueError):
            rmat_graph(1000, 4, DeterministicRNG(1, "g"))

    def test_undirected_is_symmetric(self):
        g = rmat_graph(256, 4, DeterministicRNG(2, "g")).undirected()
        for v in range(g.n):
            for u in g.neighbors(v):
                assert v in g.neighbors(u)

    def test_weighted_graph(self):
        g = uniform_graph(50, 4, DeterministicRNG(1, "g"), weighted=True)
        for v in range(g.n):
            for i in range(g.out_degree(v)):
                assert 1 <= g.weight(v, i) <= 16

    def test_unweighted_weight_is_one(self):
        g = chain_graph(5)
        assert g.weight(0, 0) == 1

    def test_chain_graph(self):
        g = chain_graph(4)
        assert g.adj == [[1], [2], [3], []]

    def test_determinism(self):
        g1 = rmat_graph(256, 4, DeterministicRNG(7, "g"))
        g2 = rmat_graph(256, 4, DeterministicRNG(7, "g"))
        assert g1.adj == g2.adj


class TestMatrices:
    def test_powerlaw_shape(self):
        m = powerlaw_matrix(100, 100, 8, 1.0, DeterministicRNG(1, "m"))
        assert m.n_rows == 100
        assert m.nnz >= 100
        for r in range(m.n_rows):
            assert all(0 <= c < 100 for c in m.cols[r])
            assert len(m.cols[r]) == len(m.vals[r])

    def test_powerlaw_skew(self):
        m = powerlaw_matrix(500, 500, 8, 1.5, DeterministicRNG(1, "m"))
        row_sizes = sorted((m.row_nnz(r) for r in range(500)), reverse=True)
        assert row_sizes[0] > 3 * (m.nnz / 500)

    def test_banded_matrix(self):
        m = banded_matrix(10, 2)
        assert m.row_nnz(5) == 5
        assert m.row_nnz(0) == 3

    def test_multiply_reference(self):
        m = banded_matrix(4, 0)  # identity-diagonal weights 1.0
        y = m.multiply([1.0, 2.0, 3.0, 4.0])
        assert y == [1.0, 2.0, 3.0, 4.0]

    def test_multiply_dim_check(self):
        m = banded_matrix(4, 1)
        with pytest.raises(ValueError):
            m.multiply([1.0] * 3)


class TestTrees:
    def test_balanced_bst_is_search_tree(self):
        t = balanced_bst(63)
        self._check_bst(t)
        assert t.depth() == 6

    def test_random_bst_is_search_tree(self):
        t = random_bst(200, DeterministicRNG(4, "t"))
        self._check_bst(t)

    def test_search_path_finds_every_key(self):
        t = balanced_bst(31)
        for q in range(31):
            path = t.search_path(q)
            assert path[0] == t.root
            assert t.keys[path[-1]] == q

    def test_search_path_lengths_bounded_by_depth(self):
        t = balanced_bst(127)
        depth = t.depth()
        assert all(len(t.search_path(q)) <= depth for q in range(127))

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            balanced_bst(0)

    @staticmethod
    def _check_bst(t: BinaryTree):
        def walk(node, lo, hi):
            if node == -1:
                return []
            key = t.keys[node]
            assert lo <= key < hi
            return walk(t.left[node], lo, key) + [key] + \
                walk(t.right[node], key, hi)

        inorder = walk(t.root, -1, 1 << 60)
        assert inorder == sorted(range(t.n))
