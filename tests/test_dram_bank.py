"""Tests for the DRAM bank timing model and access arbitration."""

import pytest

from repro.config import default_config
from repro.dram import DRAMBank
from repro.sim import Simulator, StatsRegistry


def make_bank():
    cfg = default_config()
    return DRAMBank(Simulator(), cfg, StatsRegistry(), unit_id=0), cfg


def test_first_access_pays_activation():
    bank, cfg = make_bank()
    acc = bank.access(0, addr=0, nbytes=64, is_write=False, bytes_per_cycle=8.0)
    # tRCD + tCAS + 64/8 transfer cycles.
    assert acc.latency == cfg.t_rcd_cycles + cfg.t_cas_cycles + 8
    assert acc.start == 0


def test_row_hit_is_cheaper():
    bank, cfg = make_bank()
    a1 = bank.access(0, 0, 64, False, 8.0)
    a2 = bank.access(a1.finish, 64, 64, False, 8.0)  # same 1 kB row
    assert a2.latency == cfg.t_cas_cycles + 8
    assert a2.latency < a1.latency


def test_row_conflict_pays_precharge():
    bank, cfg = make_bank()
    a1 = bank.access(0, 0, 64, False, 8.0)
    a2 = bank.access(a1.finish, 4096, 64, False, 8.0)  # different row
    assert a2.latency == cfg.t_rp_cycles + cfg.t_rcd_cycles + cfg.t_cas_cycles + 8


def test_accesses_serialize():
    bank, _ = make_bank()
    a1 = bank.access(0, 0, 64, False, 8.0)
    a2 = bank.access(0, 64, 64, False, 8.0)  # issued at the same time
    assert a2.start == a1.finish
    assert a2.finish > a1.finish


def test_word_counters_split_by_master():
    bank, _ = make_bank()
    bank.access(0, 0, 64, False, 8.0, from_bridge=False)
    bank.access(0, 64, 128, True, 8.0, from_bridge=True)
    assert bank.total_reads_64bit == 8
    assert bank.total_writes_64bit == 16
    assert bank._local_words.value == 8
    assert bank._comm_words.value == 16


def test_zero_byte_access_rejected():
    bank, _ = make_bank()
    with pytest.raises(ValueError):
        bank.access(0, 0, 0, False, 8.0)


def test_row_hit_miss_counters():
    bank, _ = make_bank()
    bank.access(0, 0, 64, False, 8.0)
    bank.access(0, 64, 64, False, 8.0)
    bank.access(0, 4096, 64, False, 8.0)
    assert bank._row_hits.value == 1
    assert bank._row_misses.value == 2


def test_write_to_read_turnaround():
    bank, cfg = make_bank()
    w = bank.access(0, 0, 64, True, 8.0)
    r_after_w = bank.access(w.finish, 64, 64, False, 8.0)
    # Same row, but the read pays the tWTR bubble after a write.
    assert r_after_w.latency == cfg.t_cas_cycles + 8 + bank._t_wtr
    r_after_r = bank.access(r_after_w.finish, 128, 64, False, 8.0)
    assert r_after_r.latency == cfg.t_cas_cycles + 8


def test_refresh_stalls_accesses():
    from dataclasses import replace

    from repro.config import default_config
    from repro.dram import DRAMBank
    from repro.sim import Simulator, StatsRegistry

    cfg = default_config()
    cfg = cfg.replace(dram=replace(cfg.dram, refresh_enabled=True))
    bank = DRAMBank(Simulator(), cfg, StatsRegistry(), unit_id=0)
    # Before the first tREFI nothing changes.
    early = bank.access(0, 0, 64, False, 8.0)
    assert early.start == 0
    # An access issued past the refresh deadline waits out tRFC and
    # reopens the row.
    t = bank._next_refresh + 10
    late = bank.access(t, 0, 64, False, 8.0)
    assert late.start >= t + bank._t_rfc
    assert late.latency >= cfg.t_rcd_cycles  # row was closed by refresh


def test_refresh_disabled_by_default():
    bank, cfg = make_bank()
    assert not bank._refresh
