"""Tests for message formats and 64 B framing (paper Fig. 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.messages import (
    DataMessage,
    MESSAGE_BYTES,
    MessageType,
    StateMessage,
    TaskMessage,
    frame_bytes,
    sub_message_count,
)
from repro.runtime.task import Task


def make_task(n_args=1):
    return Task(func="f", ts=0, data_addr=4096, workload=10,
                args=tuple(range(n_args)))


def test_task_message_fits_one_frame():
    msg = TaskMessage(src_unit=0, dst_unit=1, task=make_task(1))
    assert msg.mtype is MessageType.TASK
    assert msg.payload_bytes <= MESSAGE_BYTES
    assert msg.wire_bytes == MESSAGE_BYTES
    assert msg.sub_messages == 1


def test_large_task_spans_sub_messages():
    msg = TaskMessage(src_unit=0, dst_unit=1, task=make_task(12))
    assert msg.payload_bytes > MESSAGE_BYTES
    assert msg.sub_messages == 2
    assert msg.wire_bytes == 128


def test_data_message_block_framing():
    msg = DataMessage(src_unit=0, dst_unit=1, block_id=3, block_bytes=256)
    assert msg.mtype is MessageType.DATA
    # 16 B header + 256 B block -> 5 sub-messages.
    assert msg.sub_messages == 5
    assert msg.wire_bytes == 320


def test_state_message_grows_with_sched_out():
    empty = StateMessage(src_unit=0, dst_unit=None)
    loaded = StateMessage(
        src_unit=0, dst_unit=None,
        sched_out=tuple((i, 10) for i in range(8)),
    )
    assert loaded.payload_bytes > empty.payload_bytes
    assert empty.wire_bytes == MESSAGE_BYTES


def test_frame_bytes_rejects_non_positive():
    with pytest.raises(ValueError):
        frame_bytes(0)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=4096))
def test_framing_invariants(n):
    framed = frame_bytes(n)
    assert framed >= n
    assert framed % MESSAGE_BYTES == 0
    assert framed - n < MESSAGE_BYTES
    assert sub_message_count(n) == framed // MESSAGE_BYTES


def test_message_ids_unique():
    a = TaskMessage(src_unit=0, dst_unit=1, task=make_task())
    b = TaskMessage(src_unit=0, dst_unit=1, task=make_task())
    assert a.msg_id != b.msg_id
