"""Tests for the per-unit L1 cache model."""

import pytest

from repro.config import Design, tiny_config
from repro.ndp.cache import HIT_LATENCY, L1Cache


def test_first_access_misses_then_hits():
    c = L1Cache(1024, ways=4)
    assert not c.access(0)
    assert c.access(0)
    assert c.access(63)      # same 64 B line
    assert not c.access(64)  # next line
    assert c.hits == 2
    assert c.misses == 2


def test_lru_eviction_within_set():
    # 4 lines, 2 ways -> 2 sets; lines 0 and 2 collide in set 0.
    c = L1Cache(4 * 64, ways=2)
    assert c.num_sets == 2
    c.access(0 * 64)
    c.access(2 * 64)
    c.access(0 * 64)          # touch line 0 -> line 2 becomes LRU
    c.access(4 * 64)          # set 0 again: evicts line 2
    assert c.access(0 * 64)   # still cached
    assert not c.access(2 * 64)


def test_invalidate_range():
    c = L1Cache(4096, ways=4)
    for off in range(0, 256, 64):
        c.access(1024 + off)
    c.invalidate_range(1024, 256)
    assert not c.access(1024)
    assert not c.access(1024 + 192)


def test_hit_rate():
    c = L1Cache(1024, ways=4)
    c.access(0)
    c.access(0)
    c.access(0)
    assert c.hit_rate == pytest.approx(2 / 3)
    assert L1Cache(1024, 4).hit_rate == 0.0


def test_from_config():
    c = L1Cache.from_config(tiny_config(Design.B))
    # 64 kB / 64 B lines = 1024 lines.
    assert c.num_sets * c.ways == 1024


def test_invalid_geometry():
    with pytest.raises(ValueError):
        L1Cache(0, 4)


def test_repeated_tasks_on_hot_element_run_faster():
    """End to end: the second task on the same element skips DRAM."""
    from repro.runtime.system import NDPSystem
    from repro.runtime.task import Task

    def run(addrs):
        system = NDPSystem(tiny_config(Design.B))
        system.registry.register("t", lambda ctx, task: None)
        for a in addrs:
            system.seed_task(Task(func="t", ts=0, data_addr=a, workload=5))
        system.run()
        return system.units[0].busy_cycles

    hot = run([128] * 10)            # same element ten times
    cold = run([i * 4096 for i in range(10)])  # ten distinct rows
    assert hot < cold
