"""Tests for the Section V-A area model."""

import pytest

from repro.config import Design, default_config, gxfer_config, split_dimm_config
from repro.energy.area import (
    AreaBreakdown,
    BUFFER_CHIP_MM2,
    bridge_sram_bytes,
    estimate_area,
    unit_sram_bytes,
)


def test_default_bridge_sram_matches_table_i():
    cfg = default_config()
    # 64 kB scatter + 64 kB backup + 128 kB mailbox + 1 MB dataBorrowed.
    expected = (64 + 64 + 128 + 1024) * 1024
    assert bridge_sram_bytes(cfg) == expected


def test_default_unit_sram_close_to_paper():
    cfg = default_config()
    # Paper: ~20.2 kB per unit (2 kB isLent + 16 kB dataBorrowed + sketch
    # + small counters/bitmaps).
    kb = unit_sram_bytes(cfg) / 1024
    assert 18 <= kb <= 23


def test_bridge_area_fraction_near_paper():
    area = estimate_area(default_config())
    # Paper: 1.46% of the rank buffer chip for logic + SRAM.
    assert area.bridge_buffer_chip_fraction == pytest.approx(0.015, abs=0.005)
    assert area.bridge_total_mm2 < BUFFER_CHIP_MM2


def test_unit_area_is_small():
    area = estimate_area(default_config())
    assert area.unit_total_mm2 < 0.05
    assert area.unit_logic_mm2 < area.unit_sram_mm2


def test_metadata_scale_scales_area():
    small = estimate_area(gxfer_config(256, metadata_scale=0.25))
    big = estimate_area(gxfer_config(256, metadata_scale=4.0))
    assert big.unit_sram_mm2 > small.unit_sram_mm2
    assert big.bridge_sram_mm2 > small.bridge_sram_mm2


def test_split_dimm_adds_logic():
    unified = estimate_area(default_config())
    split = estimate_area(split_dimm_config())
    assert split.bridge_logic_mm2 > unified.bridge_logic_mm2
    assert split.bridge_sram_mm2 == unified.bridge_sram_mm2
