"""Failure-injection tests: the harness must *detect* protocol faults.

A simulator that silently absorbs lost messages or corrupted metadata
produces plausible wrong numbers.  These tests inject faults and assert
the detection machinery (tracker accounting, run-stall detection, audit)
catches each one loudly.
"""

import pytest

from repro.config import Design, tiny_config
from repro.messages import Mailbox, TaskMessage
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task
from repro.sim import SimulationError

from .conftest import noop_task


def test_dropped_message_stalls_run_detectably():
    """If a fabric drops a message, the run must end in SimulationError,
    not silently complete with missing work."""
    system = NDPSystem(tiny_config(Design.B))
    system.registry.register("noop", lambda ctx, task: None)
    bank = system.addr_map.bank_bytes

    bridge = system.fabric.rank_bridges[0]
    original = bridge._route_messages
    dropped = []

    def lossy(msgs):
        if not dropped and msgs:
            dropped.append(msgs[0])   # swallow exactly one message
            msgs = msgs[1:]
        original(msgs)

    bridge._route_messages = lossy

    def spawn(ctx, task):
        for u in range(1, 6):
            ctx.enqueue_task("noop", task.ts, u * bank, workload=5)

    system.registry.register("spawn", spawn)
    system.seed_task(Task(func="spawn", ts=0, data_addr=0))
    with pytest.raises(SimulationError):
        system.run()
    assert dropped, "the fault was never injected"


def test_double_completion_detected():
    from repro.runtime.tracker import RunTracker

    tracker = RunTracker()
    tracker.task_created(0)
    tracker.task_completed(0)
    with pytest.raises(RuntimeError):
        tracker.task_completed(0)


def test_phantom_delivery_detected():
    from repro.runtime.tracker import RunTracker

    tracker = RunTracker()
    with pytest.raises(RuntimeError):
        tracker.message_delivered(is_data=False)


def test_mailbox_overfill_raises_on_strict_path():
    from repro.messages import MailboxFullError

    mb = Mailbox(64)
    mb.enqueue_or_raise(TaskMessage(
        src_unit=0, dst_unit=1, task=Task(func="f", ts=0, data_addr=0),
    ))
    with pytest.raises(MailboxFullError):
        mb.enqueue_or_raise(TaskMessage(
            src_unit=0, dst_unit=1, task=Task(func="f", ts=0, data_addr=64),
        ))


def test_audit_catches_injected_orphan_borrow():
    from repro.analysis.audit import audit_system
    from repro.apps import make_app
    from repro.runtime.runner import run_app

    result = run_app(make_app("ll", scale=0.05, seed=2),
                     tiny_config(Design.O))
    system = result.system
    # Orphan: a unit claims to hold a block nobody lent.
    system.units[6].borrowed.insert(12345, 0, 1)
    report = audit_system(system)
    assert not report.ok
    assert any("I2" in v for v in report.violations)


def test_task_function_exception_propagates():
    """Application bugs must surface, not vanish into the event loop."""
    system = NDPSystem(tiny_config(Design.B))

    def broken(ctx, task):
        raise ZeroDivisionError("application bug")

    system.registry.register("broken", broken)
    system.seed_task(Task(func="broken", ts=0, data_addr=0))
    with pytest.raises(ZeroDivisionError):
        system.run()
