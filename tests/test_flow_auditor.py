"""Message-lifecycle auditor tests (the runtime half of simflow).

Three groups, mirroring tests/test_sanitizer.py's contract:

1. negative tests -- every conservation check must fire on the
   corruption it guards against (leak, double delivery, phantom
   delivery, duplicate send, unrecorded drop);
2. positive tests -- real runs across fabric designs finish with a
   clean conservation report;
3. equivalence -- the auditor observes, it must never perturb: runs
   with auditing on are bit-identical to plain runs, and plain runs
   carry zero instance-level hooks (no fast-path overhead).
"""

import pytest

from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.config.presets import split_dimm_config
from repro.flow.auditor import FlowAuditError, MessageAuditor
from repro.messages.mailbox import Mailbox
from repro.messages.types import DataMessage, TaskMessage
from repro.runtime.runner import run_app
from repro.runtime.task import Task


def _task_msg(workload=4):
    task = Task(func="fixture", ts=0, data_addr=0, workload=workload)
    return TaskMessage(src_unit=0, dst_unit=1, task=task)


def _data_msg():
    return DataMessage(src_unit=0, dst_unit=1, block_id=3, home_unit=0)


# ----------------------------------------------------------------------
# negative tests: every check must fire
# ----------------------------------------------------------------------
def test_leak_detected_when_queue_drained():
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    with pytest.raises(FlowAuditError, match="leak"):
        auditor.verify(resident=[], pending_events=0)


def test_in_transit_message_tolerated_while_events_pending():
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    # Still riding in a scheduled delivery callback: not a leak yet.
    report = auditor.verify(resident=[], pending_events=1)
    assert report["in_flight_by_type"] == {"task": 1}


def test_resident_message_is_not_a_leak():
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    report = auditor.verify(
        resident=[("unit0.mailbox", (msg,))], pending_events=0
    )
    assert report["resident_by_container"] == {"unit0.mailbox": 1}
    assert report["in_flight_by_type"] == {"task": 1}


def test_double_delivery_detected():
    auditor = MessageAuditor()
    msg = _data_msg()
    auditor.on_created(msg)
    auditor.on_delivered(msg, 1)
    with pytest.raises(FlowAuditError, match="double delivery"):
        auditor.on_delivered(msg, 2)


def test_phantom_delivery_detected():
    auditor = MessageAuditor()
    with pytest.raises(FlowAuditError, match="never sent"):
        auditor.on_delivered(_task_msg(), 1)


def test_duplicate_send_detected():
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    with pytest.raises(FlowAuditError, match="duplicate send"):
        auditor.on_created(msg)


def test_resident_but_never_sent_detected():
    auditor = MessageAuditor()
    with pytest.raises(FlowAuditError, match="never sent"):
        auditor.verify(
            resident=[("unit0.mailbox", (_task_msg(),))],
            pending_events=0,
        )


def test_resident_after_delivery_detected():
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    auditor.on_delivered(msg, 1)
    with pytest.raises(FlowAuditError, match="already delivered"):
        auditor.verify(
            resident=[("unit0.mailbox", (msg,))], pending_events=0
        )


def test_unrecorded_drop_detected():
    # A container rejected a message, but the auditor's wrappers never
    # saw it: the drop bypassed stats.
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    auditor.on_delivered(msg, 1)
    with pytest.raises(FlowAuditError, match="drops not recorded"):
        auditor.verify(resident=[], pending_events=0, container_dropped=1)


def test_creation_bookkeeping_corruption_detected():
    auditor = MessageAuditor()
    msg = _task_msg()
    auditor.on_created(msg)
    auditor.created_by_type["task"] = 2  # tamper with the counter
    with pytest.raises(FlowAuditError, match="bookkeeping corrupt"):
        auditor.verify(resident=[], pending_events=1)


def test_intentional_leak_caught_through_real_containers():
    """End-to-end negative: a message stolen out of a wrapped mailbox
    (enqueued, then drained without delivery) is reported as a leak."""
    auditor = MessageAuditor()
    mailbox = Mailbox(capacity_bytes=1024)
    auditor._wrap_container(mailbox, "unit0.mailbox", 0, "enqueue")
    msg = _task_msg()
    auditor.on_created(msg)
    assert mailbox.enqueue(msg)
    mailbox.drain_all()  # messages vanish without a delivery
    with pytest.raises(FlowAuditError, match="leak"):
        auditor.verify(
            resident=[("unit0.mailbox", mailbox.pending_messages())],
            pending_events=0,
            container_dropped=mailbox.dropped_messages,
        )


def test_rejections_observed_through_wrapped_container():
    auditor = MessageAuditor()
    mailbox = Mailbox(capacity_bytes=64)  # fits exactly one task message
    auditor._wrap_container(mailbox, "unit0.mailbox", 0, "enqueue")
    first, second = _task_msg(), _task_msg()
    for m in (first, second):
        auditor.on_created(m)
    assert mailbox.enqueue(first)
    assert not mailbox.enqueue(second)  # rejected: observed both sides
    assert auditor.rejected_by_container == {"unit0.mailbox": 1}
    assert mailbox.dropped_messages == 1
    report = auditor.verify(
        resident=[("unit0.mailbox", mailbox.pending_messages()),
                  ("unit0.backlog", (second,))],
        pending_events=0,
        container_dropped=mailbox.dropped_messages,
    )
    assert report["rejected_by_container"] == {"unit0.mailbox": 1}
    assert report["enqueued_by_level"] == {0: 1}


# ----------------------------------------------------------------------
# positive tests: real runs across designs audit clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "design", [Design.O, Design.B, Design.C, Design.R]
)
def test_clean_report_after_real_run(design, monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    app = make_app("bfs", scale=0.1, seed=7)
    result = run_app(app, tiny_config(design))
    system = result.system
    assert system.auditor is not None
    report = system.auditor.last_report
    assert report is not None
    assert report["created_by_type"], "run produced no messages"
    # Conservation: everything created was delivered or is accounted
    # in-flight (finish() would have raised otherwise).
    for mtype, created in report["created_by_type"].items():
        assert created == (
            report["delivered_by_type"].get(mtype, 0)
            + report["dropped_by_type"].get(mtype, 0)
            + report["in_flight_by_type"].get(mtype, 0)
        )


def test_clean_report_on_level2_hierarchy(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    app = make_app("bfs", scale=0.05, seed=7)
    result = run_app(app, split_dimm_config(Design.O))
    system = result.system
    assert system.has_level2
    report = system.auditor.last_report
    # Traffic crossed every level of the hierarchy.
    assert report["enqueued_by_level"].get(2, 0) > 0


# ----------------------------------------------------------------------
# equivalence: auditing must never perturb the simulation
# ----------------------------------------------------------------------
def _run_metrics() -> tuple:
    app = make_app("bfs", scale=0.1, seed=7)
    result = run_app(app, tiny_config(Design.O))
    sim = result.system.sim
    return (result.metrics.makespan, result.metrics.tasks_executed,
            sim.events_processed)


def test_audited_run_bit_identical(monkeypatch):
    monkeypatch.delenv("NDPBRIDGE_SANITIZE", raising=False)
    plain = _run_metrics()
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    audited = _run_metrics()
    assert plain == audited


def test_plain_run_has_no_hooks(monkeypatch):
    """Zero fast-path overhead when disabled: no instance-level
    shadowing of the hot-path methods."""
    monkeypatch.delenv("NDPBRIDGE_SANITIZE", raising=False)
    app = make_app("ht", scale=0.03, seed=7)
    result = run_app(app, tiny_config(Design.O))
    system = result.system
    assert system.auditor is None
    for unit in system.units:
        assert "_send" not in vars(unit)
        assert "deliver_task_message" not in vars(unit)
        assert "deliver_data_message" not in vars(unit)
        assert "enqueue" not in vars(unit.mailbox)


def test_sanitize_implies_auditor(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    app = make_app("ht", scale=0.03, seed=7)
    result = run_app(app, tiny_config(Design.O))
    system = result.system
    assert system.sim.sanitize
    assert system.auditor is not None
    for unit in system.units:
        assert "_send" in vars(unit)
        assert "enqueue" in vars(unit.mailbox)
