"""Cross-design energy consistency checks."""

import pytest

from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app


def run(app_name, design, scale=0.05, seed=6):
    return run_app(make_app(app_name, scale=scale, seed=seed),
                   tiny_config(design, seed=seed))


def test_comm_energy_follows_traffic():
    """tree on C moves every message through the host twice (with the
    transposition penalty); its communication energy must exceed B's."""
    c = run("tree", Design.C).metrics.energy
    b = run("tree", Design.B).metrics.energy
    assert c.comm_dram_pj > b.comm_dram_pj


def test_static_energy_follows_makespan():
    c = run("tree", Design.C)
    b = run("tree", Design.B)
    ratio_time = c.metrics.makespan / b.metrics.makespan
    # B additionally pays bridge static power, so compare per-cycle.
    c_static_rate = c.metrics.energy.static_pj / c.metrics.makespan
    b_static_rate = b.metrics.energy.static_pj / b.metrics.makespan
    assert b_static_rate > c_static_rate  # bridges leak
    if ratio_time > 1.2:
        assert c.metrics.energy.static_pj > b.metrics.energy.static_pj


def test_core_energy_identical_for_identical_work():
    """ll does identical local work under C and B (no messages at all),
    so core+SRAM energy must match closely."""
    c = run("ll", Design.C).metrics.energy
    b = run("ll", Design.B).metrics.energy
    assert c.core_sram_pj == pytest.approx(b.core_sram_pj, rel=0.15)


def test_local_dram_energy_design_invariant():
    """Local data accesses depend on the app, not the fabric."""
    c = run("spmv", Design.C).metrics.energy
    o = run("spmv", Design.O).metrics.energy
    assert c.local_dram_pj == pytest.approx(o.local_dram_pj, rel=0.2)


def test_energy_components_all_nonnegative():
    for design in (Design.C, Design.B, Design.W, Design.O):
        e = run("bfs", design).metrics.energy
        assert e.core_sram_pj >= 0
        assert e.local_dram_pj >= 0
        assert e.comm_dram_pj >= 0
        assert e.static_pj > 0


def test_balancing_trades_comm_energy_for_runtime():
    """O moves more bytes than B on a skewed workload but finishes no
    later; the energy accounting must reflect both sides."""
    b = run("ll", Design.O, scale=0.1)
    base = run("ll", Design.B, scale=0.1)
    if b.system.stats.sum_counters(".blocks_lent"):
        assert b.metrics.energy.comm_dram_pj >= base.metrics.energy.comm_dram_pj
        assert b.metrics.makespan <= base.metrics.makespan * 1.05
