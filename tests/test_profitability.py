"""Tests for the bundle-profitability guard (transfer-aware selection)."""

import pytest

from repro.config import Design, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

from .conftest import noop_task


def make_unit():
    system = NDPSystem(tiny_config(Design.O))
    system.registry.register("noop", lambda ctx, task: None)
    return system, system.units[0]


class TestBundleProfitable:
    def test_fat_work_is_profitable(self):
        _, unit = make_unit()
        unit._queue_workload = 100_000
        # 10 tasks of 500 workload each vs ~2x(256+640)/6 = 300 cycles.
        assert unit._bundle_profitable(5000, 10)

    def test_thin_tasks_are_not(self):
        _, unit = make_unit()
        unit._queue_workload = 100_000
        # 100 increments of 5 workload: 1500 work vs ~2250 transfer.
        assert not unit._bundle_profitable(500, 100)

    def test_giver_must_keep_overlap_work(self):
        _, unit = make_unit()
        # Same fat bundle, but the giver has nothing else to do.
        unit._queue_workload = 5000
        assert not unit._bundle_profitable(5000, 10)

    def test_followup_chain_credit(self):
        _, unit = make_unit()
        unit._queue_workload = 100_000
        # Marginal bundle: unprofitable without chain credit...
        unit._exec_count = 0
        assert not unit._bundle_profitable(500, 100)
        # ...but profitable when tasks spawn same-block successors.
        unit._exec_count = 100
        unit._same_block_spawns = 80
        assert unit._bundle_profitable(500, 100)

    def test_chain_ratio_capped(self):
        _, unit = make_unit()
        unit._queue_workload = 100_000
        unit._exec_count = 10
        unit._same_block_spawns = 10  # ratio would be 1.0 -> capped at 0.9
        assert unit._bundle_profitable(300, 50)


class TestSameBlockSpawnTracking:
    def test_same_block_children_counted(self):
        system = NDPSystem(tiny_config(Design.O))

        def chain(ctx, task):
            if task.args[0] > 0:
                # Child on the same 256 B block.
                ctx.enqueue_task("chain", task.ts, task.data_addr,
                                 workload=4, args=(task.args[0] - 1,))

        system.registry.register("chain", chain)
        system.seed_task(Task(func="chain", ts=0, data_addr=64,
                              workload=4, args=(5,)))
        system.run()
        unit = system.units[0]
        assert unit._exec_count == 6
        assert unit._same_block_spawns == 5

    def test_cross_block_children_not_counted(self):
        system = NDPSystem(tiny_config(Design.O))

        def spray(ctx, task):
            ctx.enqueue_task("leaf", task.ts, task.data_addr + 4096,
                             workload=4)

        system.registry.register("spray", spray)
        system.registry.register("leaf", lambda c, t: None)
        system.seed_task(Task(func="spray", ts=0, data_addr=0, workload=4))
        system.run()
        assert system.units[0]._same_block_spawns == 0


def test_unprofitable_schedule_keeps_tasks_home():
    """A giver full of tiny, spawn-free tasks declines to lend."""
    system, unit = make_unit()
    for i in range(200):
        t = noop_task(i * 8, workload=2)  # many tasks per block, tiny work
        system.tracker.task_created(0)
        unit.accept_task(t)
    unit.handle_schedule(budget=500)
    assert not unit._lend_pending
    assert system.tracker.data_messages_in_flight == 0
