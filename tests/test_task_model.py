"""Tests for the Task abstraction and TaskContext API (Section IV)."""

import pytest

from repro.runtime.program import TaskContext, TaskRegistry
from repro.runtime.task import Task


class TestTask:
    def test_workload_estimate_default(self):
        t = Task(func="f", ts=0, data_addr=0)
        assert t.workload_estimate == Task.DEFAULT_WORKLOAD
        assert t.execution_cycles == Task.DEFAULT_WORKLOAD

    def test_inaccurate_estimate_allowed(self):
        t = Task(func="f", ts=0, data_addr=0, workload=10, actual_cycles=99)
        assert t.workload_estimate == 10
        assert t.execution_cycles == 99

    def test_minimums_clamped(self):
        t = Task(func="f", ts=0, data_addr=0, workload=0, actual_cycles=0)
        assert t.workload_estimate == 1
        assert t.execution_cycles == 1

    def test_size_grows_with_args(self):
        small = Task(func="f", ts=0, data_addr=0)
        big = Task(func="f", ts=0, data_addr=0, args=(1, 2, 3))
        assert big.size_bytes == small.size_bytes + 3 * 8

    def test_ids_unique(self):
        a = Task(func="f", ts=0, data_addr=0)
        b = Task(func="f", ts=0, data_addr=0)
        assert a.task_id != b.task_id


class TestTaskRegistry:
    def test_register_and_lookup(self):
        reg = TaskRegistry()
        fn = lambda ctx, task: None  # noqa: E731
        reg.register("visit", fn)
        assert reg.lookup("visit") is fn
        assert "visit" in reg
        assert reg.names() == ["visit"]

    def test_duplicate_rejected(self):
        reg = TaskRegistry()
        reg.register("visit", lambda c, t: None)
        with pytest.raises(ValueError):
            reg.register("visit", lambda c, t: None)

    def test_unknown_lookup_raises(self):
        reg = TaskRegistry()
        with pytest.raises(KeyError):
            reg.lookup("nope")


class TestTaskContext:
    def test_enqueue_collects_children(self):
        ctx = TaskContext(unit_id=3, now=100, epoch=2)
        child = ctx.enqueue_task("f", 2, data_addr=64, workload=5, args=(1,))
        assert ctx.spawned() == [child]
        assert child.ts == 2
        assert child.args == (1,)

    def test_future_timestamps_allowed(self):
        ctx = TaskContext(unit_id=0, now=0, epoch=2)
        child = ctx.enqueue_task("f", 5, data_addr=0)
        assert child.ts == 5

    def test_past_timestamp_rejected(self):
        ctx = TaskContext(unit_id=0, now=0, epoch=2)
        with pytest.raises(ValueError):
            ctx.enqueue_task("f", 1, data_addr=0)

    def test_context_exposes_unit_and_time(self):
        ctx = TaskContext(unit_id=7, now=42, epoch=0)
        assert ctx.unit_id == 7
        assert ctx.now == 42


class TestDispatchCost:
    def test_default_cost_is_execution_cycles(self):
        reg = TaskRegistry()
        reg.register("f", lambda c, t: None)
        t = Task(func="f", ts=0, data_addr=0, workload=5, actual_cycles=30)
        assert reg.dispatch_cost(t) == 30

    def test_cost_hook_overrides(self):
        reg = TaskRegistry()
        reg.register("f", lambda c, t: None, cost=lambda t: 3)
        t = Task(func="f", ts=0, data_addr=0, workload=500)
        assert reg.dispatch_cost(t) == 3

    def test_cost_hook_clamped_to_one(self):
        reg = TaskRegistry()
        reg.register("f", lambda c, t: None, cost=lambda t: 0)
        t = Task(func="f", ts=0, data_addr=0)
        assert reg.dispatch_cost(t) == 1

    def test_cost_hook_sees_task(self):
        reg = TaskRegistry()
        reg.register("f", lambda c, t: None,
                     cost=lambda t: 10 if t.args and t.args[0] else 99)
        hot = Task(func="f", ts=0, data_addr=0, args=(True,))
        cold = Task(func="f", ts=0, data_addr=0, args=(False,))
        assert reg.dispatch_cost(hot) == 10
        assert reg.dispatch_cost(cold) == 99


class TestReadOnlyFlag:
    def test_default_is_writer(self):
        assert not Task(func="f", ts=0, data_addr=0).read_only

    def test_context_passes_flag(self):
        ctx = TaskContext(unit_id=0, now=0, epoch=0)
        child = ctx.enqueue_task("f", 0, 0, read_only=True)
        assert child.read_only
