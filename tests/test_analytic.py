"""The simulator must never beat the analytic physics bounds."""

import pytest

from repro.analysis.analytic import (
    WorkloadSummary,
    communication_bound_cycles,
    compute_bound_cycles,
    makespan_lower_bound,
    message_throughput_bytes_per_cycle,
    summarize_run,
)
from repro.apps import make_app
from repro.config import Design, default_config, tiny_config
from repro.runtime.runner import run_app


def test_bridge_fabric_throughput():
    cfg = default_config(Design.B)
    # 8 ranks x 8 chips x 6 B/c, halved for in+out = 192 B/c.
    assert message_throughput_bytes_per_cycle(cfg) == pytest.approx(192.0)


def test_host_fabric_throughput_pays_inefficiency():
    b = message_throughput_bytes_per_cycle(default_config(Design.B))
    c = message_throughput_bytes_per_cycle(default_config(Design.C))
    assert c < b


def test_compute_bound_scales_with_units():
    w = WorkloadSummary(1000, 100_000, 0, 0, 500)
    big = compute_bound_cycles(default_config(Design.B), w)
    small = compute_bound_cycles(tiny_config(Design.B), w)
    assert small > big


def test_zero_messages_zero_comm_bound():
    w = WorkloadSummary(10, 100, 0, 0, 50)
    assert communication_bound_cycles(tiny_config(Design.B), w) == 0.0


def test_lower_bound_includes_critical_path():
    w = WorkloadSummary(10, 100, 0, 0, critical_unit_cycles=99_999)
    assert makespan_lower_bound(tiny_config(Design.B), w) >= 99_999


@pytest.mark.parametrize("design", [Design.C, Design.B, Design.W, Design.O])
@pytest.mark.parametrize("app_name", ["ll", "tree", "pr"])
def test_simulator_never_beats_physics(design, app_name):
    result = run_app(make_app(app_name, scale=0.05, seed=11),
                     tiny_config(design))
    summary = summarize_run(result.system)
    bound = makespan_lower_bound(result.system.config, summary)
    assert result.metrics.makespan >= bound * 0.99, (
        f"{design.value}/{app_name}: makespan {result.metrics.makespan} "
        f"beats the physical bound {bound:.0f}"
    )


def test_saturating_workload_lands_near_compute_bound():
    """An embarrassingly parallel, communication-free workload should
    approach (within a small factor of) the compute roofline."""
    result = run_app(make_app("spmv", scale=0.1, seed=11),
                     tiny_config(Design.B))
    summary = summarize_run(result.system)
    bound = makespan_lower_bound(result.system.config, summary)
    assert result.metrics.makespan <= 10 * bound
