"""Open-loop workload + driver tests.

Four layers:

* statistical goodness-of-fit for the generators (chi-square against the
  exact Zipf / exponential models -- deterministic seeds, so the
  statistics are reproducible numbers, not flaky draws),
* determinism and stream-independence of request generation,
* exact nearest-rank percentile semantics (edge cases pinned bit-for-bit),
* the request driver end-to-end, including the composition oracles:
  plain vs sanitized, serial vs sharded, snapshot-fork vs run-through.
"""

import dataclasses
import math

import pytest

from repro.analysis.latency import (
    REPORT_PERMILLES,
    LatencyRecorder,
    exact_percentile,
)
from repro.apps import make_app
from repro.config import ConfigError, Design, scaled_config, tiny_config
from repro.runtime.requests import OpenLoopApp, RequestDriver, run_openloop
from repro.sim import DeterministicRNG
from repro.workloads import (
    BurstyArrivals,
    OpenLoopSpec,
    PoissonArrivals,
    SkewSchedule,
    TenantSpec,
    ZipfSampler,
    generate_requests,
)
from repro.workloads.zipf import ZipfGenerator, zipf_cdf


def chi_square(observed, expected):
    """Pearson's chi-square statistic over matched count lists."""
    assert len(observed) == len(expected)
    return sum((o - e) ** 2 / e for o, e in zip(observed, expected))


# ----------------------------------------------------------------------
# goodness of fit: ZipfSampler
# ----------------------------------------------------------------------
class TestZipfSamplerFit:
    def test_chi_square_matches_zipf_pmf(self):
        # 30 ranks x 6000 draws: every expected bin count is >= ~40, the
        # classic chi-square validity regime.  df = 29; the 0.1% critical
        # value is 58.3 -- a deterministic seed makes this a regression
        # number, the statistical margin just keeps it meaningful.
        n, draws, skew = 30, 6000, 0.8
        sampler = ZipfSampler(n, DeterministicRNG(11, "gof"))
        counts = [0] * n
        for _ in range(draws):
            counts[sampler.sample(skew)] += 1
        expected = [draws * sampler.probability(k, skew) for k in range(n)]
        assert chi_square(counts, expected) < 58.3

    def test_matches_fixed_skew_generator_exactly(self):
        # At a constant skew the switchable sampler must draw the exact
        # sequence ZipfGenerator draws from the same stream (shared CDF).
        a = ZipfSampler(64, DeterministicRNG(3, "z"))
        b = ZipfGenerator(64, 1.1, DeterministicRNG(3, "z"))
        assert [a.sample(1.1) for _ in range(200)] == b.sample_many(200)

    def test_skew_switch_moves_mass(self):
        sampler = ZipfSampler(100, DeterministicRNG(5, "z"))
        flat = sum(1 for _ in range(2000) if sampler.sample(0.0) < 10)
        hot = sum(1 for _ in range(2000) if sampler.sample(1.2) < 10)
        assert flat < 300  # ~10% uniform
        assert hot > 900  # heavy head

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(40, DeterministicRNG(1, "z"))
        for skew in (0.0, 0.9, 1.3):
            total = sum(sampler.probability(k, skew) for k in range(40))
            assert total == pytest.approx(1.0)

    def test_cdf_validation(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_cdf(10, -0.1)


# ----------------------------------------------------------------------
# goodness of fit: arrival processes
# ----------------------------------------------------------------------
class TestArrivalFit:
    def test_poisson_mean_gap(self):
        arr = PoissonArrivals(80.0, DeterministicRNG(7, "arr"))
        gaps = [arr.next_gap() for _ in range(4000)]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(80.0, rel=0.05)

    def test_poisson_chi_square_exponential_quartiles(self):
        # Bin the gaps at the exact exponential quartiles.  df = 3; the
        # 0.1% critical value is 16.3.  Integer rounding of the gaps
        # shifts a handful of edge samples -- far inside the margin.
        mean_gap, draws = 80.0, 4000
        arr = PoissonArrivals(mean_gap, DeterministicRNG(7, "gof"))
        edges = [-mean_gap * math.log(1 - q) for q in (0.25, 0.5, 0.75)]
        counts = [0] * 4
        for _ in range(draws):
            gap = arr.next_gap()
            bin_ = sum(1 for e in edges if gap > e)
            counts[bin_] += 1
        assert chi_square(counts, [draws / 4] * 4) < 16.3

    def test_gap_floor_is_one_cycle(self):
        arr = PoissonArrivals(0.01, DeterministicRNG(1, "arr"))
        assert all(arr.next_gap() == 1 for _ in range(100))

    def test_bursty_is_overdispersed(self):
        # MMPP-2 visits both states and its gap variance exceeds the
        # exponential's (squared CV > 1): that *is* burstiness.
        arr = BurstyArrivals(
            100.0, 10.0, DeterministicRNG(9, "arr"),
            calm_switch=0.1, burst_switch=0.3,
        )
        gaps, states = [], set()
        for _ in range(4000):
            gaps.append(arr.next_gap())
            states.add(arr.bursting)
        assert states == {True, False}
        mean = sum(gaps) / len(gaps)
        # Stationary mix: 25% bursting -> E[gap] ~ 0.75*100 + 0.25*10.
        assert mean == pytest.approx(77.5, rel=0.1)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        assert var / mean**2 > 1.2

    def test_validation(self):
        rng = DeterministicRNG(1, "a")
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, rng)
        with pytest.raises(ValueError):
            BurstyArrivals(10.0, 0.0, rng)
        with pytest.raises(ValueError):
            BurstyArrivals(10.0, 5.0, rng, calm_switch=1.5)


# ----------------------------------------------------------------------
# skew schedules
# ----------------------------------------------------------------------
class TestSkewSchedule:
    def test_piecewise_lookup(self):
        s = SkewSchedule([(0, 0.5), (100, 1.0), (200, 0.2)])
        assert s.skew_at(0) == 0.5
        assert s.skew_at(99) == 0.5
        assert s.skew_at(100) == 1.0
        assert s.skew_at(10_000) == 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            SkewSchedule([])
        with pytest.raises(ValueError):
            SkewSchedule([(10, 0.5)])  # must start at 0
        with pytest.raises(ValueError):
            SkewSchedule([(0, 0.5), (0, 1.0)])  # strictly increasing

    def test_tenant_spec_validates_eagerly(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", n_requests=10, mean_gap=5.0,
                       skew=((5, 1.0),))
        with pytest.raises(ValueError):
            TenantSpec(name="t", n_requests=0, mean_gap=5.0)
        with pytest.raises(ValueError):
            TenantSpec(name="t", n_requests=10, mean_gap=5.0,
                       arrival="weird")
        with pytest.raises(ValueError):
            TenantSpec(name="t", n_requests=10, mean_gap=5.0,
                       arrival="bursty")  # burst_gap missing
        with pytest.raises(ValueError):
            OpenLoopSpec(tenants=())
        with pytest.raises(ValueError):
            OpenLoopSpec(
                tenants=(TenantSpec(name="t", n_requests=1, mean_gap=1.0),),
                warmup=-1,
            )


# ----------------------------------------------------------------------
# request generation: determinism and stream independence
# ----------------------------------------------------------------------
TENANTS = (
    TenantSpec(name="a", n_requests=200, mean_gap=30.0,
               skew=((0, 0.6), (2000, 1.2))),
    TenantSpec(name="b", n_requests=120, mean_gap=50.0, arrival="bursty",
               burst_gap=8.0, skew=((0, 1.0),)),
)


class TestGenerateRequests:
    def test_same_seed_identical_stream(self):
        assert generate_requests(TENANTS, 64, 5) == \
            generate_requests(TENANTS, 64, 5)

    def test_different_seed_different_stream(self):
        assert generate_requests(TENANTS, 64, 5) != \
            generate_requests(TENANTS, 64, 6)

    def test_req_ids_are_injection_order(self):
        reqs = generate_requests(TENANTS, 64, 5)
        assert [r.req_id for r in reqs] == list(range(len(reqs)))
        assert all(a.arrival <= b.arrival
                   for a, b in zip(reqs, reqs[1:]))

    def test_skew_schedule_never_perturbs_arrivals(self):
        # Arrival gaps and key draws use separate named substreams:
        # changing the skew schedule must leave arrival times untouched.
        shifted = generate_requests(TENANTS, 64, 5)
        flat_tenants = (
            dataclasses.replace(TENANTS[0], skew=((0, 0.0),)),
            TENANTS[1],
        )
        flat = generate_requests(flat_tenants, 64, 5)
        assert [r.arrival for r in shifted] == [r.arrival for r in flat]
        assert [r.rank for r in shifted if r.tenant == "a"] != \
            [r.rank for r in flat if r.tenant == "a"]

    def test_tenants_draw_independent_streams(self):
        # Substreams are keyed by tenant name, so dropping tenant "b"
        # must not move a single one of tenant "a"'s requests.
        both = generate_requests(TENANTS, 64, 5)
        alone = generate_requests(TENANTS[:1], 64, 5)
        a_both = [(r.arrival, r.rank) for r in both if r.tenant == "a"]
        a_alone = [(r.arrival, r.rank) for r in alone]
        assert a_both == a_alone

    def test_duplicate_tenant_names_rejected(self):
        dup = (TENANTS[0], dataclasses.replace(TENANTS[1], name="a"))
        with pytest.raises(ValueError, match="unique"):
            generate_requests(dup, 64, 5)
        with pytest.raises(ValueError):
            generate_requests((), 64, 5)

    def test_start_offset_shifts_first_arrival(self):
        spec = TenantSpec(name="t", n_requests=5, mean_gap=10.0, start=500)
        reqs = generate_requests((spec,), 16, 1)
        assert reqs[0].arrival > 500


# ----------------------------------------------------------------------
# exact percentiles: edge cases pinned bit-for-bit
# ----------------------------------------------------------------------
class TestExactPercentile:
    def test_empty_raises_like_geomean(self):
        with pytest.raises(ValueError, match="empty"):
            exact_percentile([], 500)

    def test_permille_range_checked(self):
        with pytest.raises(ValueError, match="out of range"):
            exact_percentile([1], -1)
        with pytest.raises(ValueError, match="out of range"):
            exact_percentile([1], 1001)

    def test_single_sample_every_permille(self):
        for pm in (0, 1, 500, 990, 999, 1000):
            assert exact_percentile([42], pm) == 42

    def test_nearest_rank_semantics_pinned(self):
        # ceil(permille * n / 1000) over n=4 sorted samples: the exact
        # nearest-rank table, pinned value by value.
        s = [40, 10, 30, 20]  # unsorted on purpose
        assert exact_percentile(s, 0) == 10
        assert exact_percentile(s, 125) == 10  # ceil(0.5) = 1
        assert exact_percentile(s, 250) == 10
        assert exact_percentile(s, 251) == 20  # ceil(1.004) = 2
        assert exact_percentile(s, 500) == 20
        assert exact_percentile(s, 750) == 30
        assert exact_percentile(s, 751) == 40
        assert exact_percentile(s, 990) == 40
        assert exact_percentile(s, 999) == 40
        assert exact_percentile(s, 1000) == 40

    def test_ties_are_stable(self):
        assert exact_percentile([7, 7, 7, 7, 7], 500) == 7
        assert exact_percentile([1, 7, 7, 7, 9], 500) == 7
        assert exact_percentile([1, 7, 7, 7, 9], 990) == 9

    def test_p1000_is_max_p0_is_min(self):
        s = list(range(100, 0, -1))
        assert exact_percentile(s, 1000) == 100
        assert exact_percentile(s, 0) == 1


class TestLatencyRecorder:
    def test_negative_latency_rejected(self):
        r = LatencyRecorder()
        with pytest.raises(ValueError, match="negative"):
            r.record("t", -1)

    def test_unknown_tenant_raises(self):
        r = LatencyRecorder()
        with pytest.raises(ValueError, match="no samples"):
            r.percentile("ghost", 500)
        with pytest.raises(ValueError, match="no samples"):
            r.mean_latency("ghost")

    def test_merge_is_order_insensitive(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        for i in range(10):
            (a if i % 2 else b).record("t", i)
        ab, ba = LatencyRecorder(), LatencyRecorder()
        ab.merge(a), ab.merge(b)
        ba.merge(b), ba.merge(a)
        for pm in REPORT_PERMILLES:
            assert ab.percentile("t", pm) == ba.percentile("t", pm)
        assert ab.count("t") == 10

    def test_summary_shape(self):
        r = LatencyRecorder()
        r.record("b", 5)
        r.record("a", 3)
        s = r.summary()
        assert set(s) == {
            f"lat/{t}/{k}"
            for t in ("a", "b")
            for k in ("count", "mean", "max", "p500", "p990", "p999")
        }
        assert s["lat/a/p500"] == 3.0
        assert all(isinstance(v, float) for v in s.values())


# ----------------------------------------------------------------------
# the driver end-to-end (tiny configs -- fast)
# ----------------------------------------------------------------------
def small_spec(warmup: int = 400) -> OpenLoopSpec:
    return OpenLoopSpec(
        tenants=(
            TenantSpec(name="a", n_requests=60, mean_gap=60.0,
                       skew=((0, 0.6), (1500, 1.2))),
            TenantSpec(name="b", n_requests=40, mean_gap=90.0,
                       arrival="bursty", burst_gap=15.0,
                       skew=((0, 1.0),)),
        ),
        warmup=warmup,
    )


class TestRequestDriver:
    def test_openloop_run_completes_stream(self):
        result = run_openloop(
            "ll", tiny_config(Design.O), small_spec(),
            scale=0.05, seed=7,
        )
        extra = result.metrics.extra
        assert extra["ol/completed"] == extra["ol/requests"] == 100.0
        assert result.metrics.makespan > extra["ol/last_arrival"]
        assert extra["lat/a/p500"] >= 1.0
        assert extra["lat/a/p500"] <= extra["lat/a/p990"] \
            <= extra["lat/a/p999"] <= extra["lat/a/max"]

    def test_warmup_excludes_early_arrivals(self):
        cold = run_openloop("ll", tiny_config(Design.O),
                            small_spec(warmup=0), scale=0.05, seed=7)
        warm = run_openloop("ll", tiny_config(Design.O),
                            small_spec(warmup=2000), scale=0.05, seed=7)
        n_cold = cold.metrics.extra["lat/a/count"] + \
            cold.metrics.extra["lat/b/count"]
        n_warm = warm.metrics.extra["lat/a/count"] + \
            warm.metrics.extra["lat/b/count"]
        assert n_cold == 100.0
        assert n_warm < n_cold  # early arrivals ran but went unrecorded
        assert warm.metrics.extra["ol/completed"] == 100.0

    def test_all_request_apps_drive(self):
        for name in ("ll", "ht", "tree"):
            result = run_openloop(
                name, tiny_config(Design.B), small_spec(),
                scale=0.05, seed=7,
            )
            assert result.metrics.extra["ol/completed"] == 100.0

    def test_non_request_app_rejected(self):
        with pytest.raises(ConfigError, match="request mode"):
            OpenLoopApp(make_app("spmv", scale=0.05, seed=7), small_spec())

    def test_design_h_rejected(self):
        with pytest.raises(ConfigError, match="design H"):
            run_openloop("ll", tiny_config(Design.H), small_spec(),
                         scale=0.05, seed=7)

    def test_split_advance_equals_straight_run(self):
        # Pausing mid-stream is observation only: a run advanced in two
        # halves must be bit-identical to one driven straight through.
        cfg = tiny_config(Design.O)
        straight = run_openloop("ll", cfg, small_spec(), scale=0.05,
                                seed=7)
        app = OpenLoopApp(make_app("ll", scale=0.05, seed=7), small_spec())
        split = RequestDriver(app, cfg).start().advance(until=2500) \
            .finish()
        assert dataclasses.asdict(split.metrics) == \
            dataclasses.asdict(straight.metrics)


# ----------------------------------------------------------------------
# composition oracles: sanitize / shards / snapshot
# ----------------------------------------------------------------------
class TestOpenLoopComposition:
    def test_plain_vs_sanitized_bit_identical(self, monkeypatch):
        monkeypatch.delenv("NDPBRIDGE_SANITIZE", raising=False)
        plain = run_openloop("ht", tiny_config(Design.O), small_spec(),
                             scale=0.05, seed=7)
        assert plain.system.sim.sanitize is False
        monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
        sanitized = run_openloop("ht", tiny_config(Design.O), small_spec(),
                                 scale=0.05, seed=7)
        assert sanitized.system.sim.sanitize is True
        assert dataclasses.asdict(plain.metrics) == \
            dataclasses.asdict(sanitized.metrics)

    def test_serial_vs_sharded_bit_identical(self):
        # Design C is communication-free for ll, so the sharded engine
        # simulates the *same machine* and every latency sample -- and
        # the makespan -- must match the serial run exactly.
        cfg = scaled_config(128, Design.C)
        serial = run_openloop("ll", cfg, small_spec(), scale=0.1, seed=7)
        sharded = run_openloop("ll", cfg, small_spec(), scale=0.1, seed=7,
                               shards=2)
        se, he = serial.metrics.extra, sharded.metrics.extra
        assert serial.metrics.makespan == sharded.metrics.makespan
        assert serial.metrics.tasks_executed == \
            sharded.metrics.tasks_executed
        for key in sorted(se):
            if key.startswith(("lat/", "ol/")):
                assert se[key] == he[key], key

    def test_sharded_inline_vs_forked_identical(self):
        cfg = scaled_config(128, Design.C)
        inline = run_openloop("ll", cfg, small_spec(), scale=0.1, seed=7,
                              shards=2, parallel=False)
        forked = run_openloop("ll", cfg, small_spec(), scale=0.1, seed=7,
                              shards=2, parallel=True)
        assert dataclasses.asdict(inline.metrics) == \
            dataclasses.asdict(forked.metrics)

    def test_snapshot_fork_vs_run_through_bit_identical(self):
        # Snapshot mid-stream (arrival pump event in flight), restore,
        # finish from the fork: the fork must land on the exact run.
        cfg = tiny_config(Design.O)
        through = run_openloop("tree", cfg, small_spec(), scale=0.05,
                               seed=7)
        forked = run_openloop("tree", cfg, small_spec(), scale=0.05,
                              seed=7, snapshot_at=2500)
        assert dataclasses.asdict(through.metrics) == \
            dataclasses.asdict(forked.metrics)

    def test_sharded_rejects_snapshot_at(self):
        with pytest.raises(ValueError, match="serial"):
            run_openloop("ll", scaled_config(128, Design.C), small_spec(),
                         scale=0.1, seed=7, shards=2, snapshot_at=100)
