"""Tests for the Component base class."""

from repro.sim import Component, Simulator


def test_naming_hierarchy():
    sim = Simulator()
    root = Component(sim, "system")
    child = Component(sim, "rank0", parent=root)
    leaf = Component(sim, "chip3", parent=child)
    assert root.full_name == "system"
    assert leaf.full_name == "system.rank0.chip3"


def test_now_tracks_simulator():
    sim = Simulator()
    comp = Component(sim, "c")
    assert comp.now == 0
    sim.schedule(25, lambda: None)
    sim.run()
    assert comp.now == 25


def test_schedule_delegates():
    sim = Simulator()
    comp = Component(sim, "c")
    fired = []
    comp.schedule(10, lambda: fired.append(comp.now))
    sim.run()
    assert fired == [10]
