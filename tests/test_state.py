"""simstate static-analysis test suite.

Mirrors the simlint/simflow contract: every ST rule must (a) catch its
hazard in a positive fixture, (b) stay quiet under a
``# simstate: ignore[RULE]`` comment, and (c) stay quiet on a clean
variant of the same code.  Allowlisted module paths are exercised with
a real allowlist entry.  Meta-tests assert the repository's own
simulation tree is clean through the real CLI, and that the unified
``python -m repro.analyze`` gate aggregates all four analyzers.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.state import (
    STATE_RULE_CODES,
    STATE_RULES,
    analyze_sources,
    build_tree_inventory,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source, module_path="repro/ndp/fixture.py", path="fixture.py"):
    return [
        d.rule for d in analyze_sources([(path, module_path, source)])
    ]


# ----------------------------------------------------------------------
# per-rule fixtures: (source, module_path, line_to_suppress)
# ----------------------------------------------------------------------
FIXTURES = {
    # Attribute materialized mid-run, invisible to the inventory.
    "ST001": (
        "class Unit:\n"
        "    def __init__(self):\n"
        "        self.busy = False\n"
        "    def step(self):\n"
        "        self.backlog = []\n",
        "repro/ndp/fixture.py",
        5,
    ),
    # An open file handle stored on a simulation object.
    "ST002": (
        "class Tracer:\n"
        "    def __init__(self, path):\n"
        "        self.fh = open(path)\n",
        "repro/runtime/fixture.py",
        3,
    ),
    # Module-level mutable cache: invisible to fork/restore.
    "ST003": (
        "seen = {}\n"
        "def mark(k):\n"
        "    seen[k] = True\n",
        "repro/bridge/fixture.py",
        1,
    ),
    # RNG built outside the named-stream facade.
    "ST004": (
        "import random\n"
        "def jitter():\n"
        "    return random.Random(7).random()\n",
        "repro/links/fixture.py",
        3,
    ),
    # Container handed into __init__ and stored with no declared owner.
    "ST005": (
        "from typing import List\n"
        "class View:\n"
        "    def __init__(self, items: List[int]):\n"
        "        self.items = items\n",
        "repro/runtime/fixture.py",
        4,
    ),
}

#: Clean variants of each fixture: same shape, hazard removed.
CLEAN = {
    # The attribute is declared at construction time.
    "ST001": (
        "class Unit:\n"
        "    def __init__(self):\n"
        "        self.busy = False\n"
        "        self.backlog = []\n"
        "    def step(self):\n"
        "        self.backlog = []\n",
        "repro/ndp/fixture.py",
    ),
    # Only the path (a string) is stored; no live handle.
    "ST002": (
        "class Tracer:\n"
        "    def __init__(self, path):\n"
        "        self.path = path\n",
        "repro/runtime/fixture.py",
    ),
    # ALL_CAPS literal table: a read-only constant, exempt.
    "ST003": (
        "LIMITS = {'depth': 4, 'fanout': 8}\n"
        "def limit(k):\n"
        "    return LIMITS[k]\n",
        "repro/bridge/fixture.py",
    ),
    # Substreams derived from the system root are the sanctioned path.
    "ST004": (
        "def jitter(rng):\n"
        "    return rng.substream('link').random()\n",
        "repro/links/fixture.py",
    ),
    # Ownership declared: the view is the sole owner of the list.
    "ST005": (
        "from typing import List\n"
        "class View:\n"
        "    _snapshot_owns_ = ('items',)\n"
        "    def __init__(self, items: List[int]):\n"
        "        self.items = items\n",
        "repro/runtime/fixture.py",
    ),
}


def test_every_rule_has_fixtures():
    assert set(FIXTURES) == set(STATE_RULE_CODES)
    assert set(CLEAN) == set(STATE_RULE_CODES)
    assert len(STATE_RULES) == 5


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_fires_on_hazard(code):
    source, module_path, _ = FIXTURES[code]
    assert code in codes(source, module_path), (
        f"{code} failed to detect its hazard fixture"
    )


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_suppressed_by_ignore_comment(code):
    source, module_path, line = FIXTURES[code]
    lines = source.splitlines()
    lines[line - 1] += f"  # simstate: ignore[{code}] fixture justification"
    suppressed = "\n".join(lines) + "\n"
    assert code not in codes(suppressed, module_path)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_suppressed_by_bare_ignore(code):
    source, module_path, line = FIXTURES[code]
    lines = source.splitlines()
    lines[line - 1] += "  # simstate: ignore"
    suppressed = "\n".join(lines) + "\n"
    assert code not in codes(suppressed, module_path)


@pytest.mark.parametrize("code", sorted(CLEAN))
def test_clean_variant_passes(code):
    source, module_path = CLEAN[code]
    assert code not in codes(source, module_path)


def test_simlint_ignore_does_not_silence_simstate():
    source, module_path, line = FIXTURES["ST003"]
    lines = source.splitlines()
    lines[line - 1] += "  # simlint: ignore"
    assert "ST003" in codes("\n".join(lines) + "\n", module_path)


def test_allowlisted_module_is_exempt():
    # repro/runtime/task.py carries a real ST003 allowlist entry (the
    # monotonic task-id counter); the same hazard at that path is quiet,
    # and loud one directory over.
    source = "ids = {}\n"
    assert "ST003" not in codes(source, "repro/runtime/task.py")
    assert "ST003" in codes(source, "repro/runtime/other.py")


def test_allowlist_entries_are_validated():
    from repro.state.allowlist import ALLOWLIST

    for entry in ALLOWLIST:
        assert entry.rule in STATE_RULE_CODES
        assert entry.justification.strip()


# ----------------------------------------------------------------------
# scope, inheritance, and inventory mechanics
# ----------------------------------------------------------------------
def test_out_of_scope_modules_are_ignored():
    source, _, _ = FIXTURES["ST003"]
    assert codes(source, "repro/analysis/fixture.py") == []
    assert codes(source, "repro/exec/fixture.py") == []


def test_st001_sees_cross_module_inheritance():
    base = (
        "class Base:\n"
        "    def __init__(self):\n"
        "        self.cursor = 0\n"
    )
    child = (
        "class Child(Base):\n"
        "    def step(self):\n"
        "        self.cursor += 1\n"
    )
    diags = analyze_sources([
        ("base.py", "repro/sim/base_fixture.py", base),
        ("child.py", "repro/ndp/child_fixture.py", child),
    ])
    assert [d.rule for d in diags] == []


def test_st001_flags_dynamic_setattr():
    source = (
        "class C:\n"
        "    def __init__(self):\n"
        "        pass\n"
        "    def poke(self, name):\n"
        "        setattr(self, name, 1)\n"
    )
    assert "ST001" in codes(source)


def test_st005_callable_annotation_is_not_a_container():
    # A hook parameter whose *signature* mentions List must not trip
    # the alias rule -- the parameter itself is a callable.
    source = (
        "from typing import Callable, List, Optional\n"
        "class Engine:\n"
        "    def __init__(\n"
        "        self,\n"
        "        hook: Optional[Callable[[List[int]], None]] = None,\n"
        "    ):\n"
        "        self.hook = hook\n"
    )
    assert "ST005" not in codes(source, "repro/sim/fixture.py")


def test_dunder_module_metadata_is_exempt():
    source = "__all__ = ['a', 'b']\n"
    assert "ST003" not in codes(source, "repro/sim/fixture.py")


def test_syntax_error_reported_not_crashed():
    diags = analyze_sources(
        [("broken.py", "repro/bridge/broken.py", "def f(:\n")]
    )
    assert [d.rule for d in diags] == ["ST000"]


def test_tree_inventory_covers_component_classes():
    inv = build_tree_inventory([REPO_ROOT / "src"])
    units = inv.classes_named("NDPUnit")
    assert units, "NDPUnit missing from the tree inventory"
    declared = inv.declared_attrs(units[0])
    assert "sim" in declared  # inherited from Component.__init__


# ----------------------------------------------------------------------
# meta: the repository's own simulation tree must be clean, via the CLI
# ----------------------------------------------------------------------
def _run_cli(module, *args, cwd=REPO_ROOT):
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def test_cli_clean_on_repo_src():
    proc = _run_cli("repro.state", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_exit_1_on_finding(tmp_path):
    bad = tmp_path / "repro" / "bridge" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("seen = {}\n")
    proc = _run_cli("repro.state", str(bad))
    assert proc.returncode == 1
    assert "ST003" in proc.stdout


def test_cli_list_rules():
    proc = _run_cli("repro.state", "--list-rules")
    assert proc.returncode == 0
    for code in STATE_RULE_CODES:
        assert code in proc.stdout
    assert "simstate: ignore" in proc.stdout


def test_cli_sarif_output(tmp_path):
    bad = tmp_path / "repro" / "bridge" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("seen = {}\n")
    out = tmp_path / "state.sarif"
    proc = _run_cli(
        "repro.state", "--format", "sarif", "-o", str(out), str(bad)
    )
    assert proc.returncode == 1
    report = json.loads(out.read_text())
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "simstate"
    result = run["results"][0]
    assert result["ruleId"] == "ST003"


def test_cli_inventory_dump(tmp_path):
    out = tmp_path / "inventory.json"
    proc = _run_cli(
        "repro.state", "--inventory", "-o", str(out), "src/repro/ndp"
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = json.loads(out.read_text())
    assert any("ndp" in key for key in data)


# ----------------------------------------------------------------------
# the unified gate: python -m repro.analyze
# ----------------------------------------------------------------------
def test_analyze_clean_on_repo_src():
    proc = _run_cli("repro.analyze", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    for tool in ("simlint", "simflow", "simstate", "simrace"):
        assert f"{tool}: clean" in proc.stdout
    assert "analyze: clean -- 4 tools" in proc.stdout


def test_analyze_exit_1_and_tool_prefix(tmp_path):
    bad = tmp_path / "repro" / "bridge" / "bad.py"
    bad.parent.mkdir(parents=True)
    # One file tripping two different tools at once.
    bad.write_text("seen = {}\ndef f(mb, m):\n    mb.enqueue(m)\n")
    proc = _run_cli("repro.analyze", str(bad))
    assert proc.returncode == 1
    assert "simstate: " in proc.stdout and "ST003" in proc.stdout
    assert "simflow: " in proc.stdout and "FL002" in proc.stdout


def test_analyze_merged_sarif(tmp_path):
    bad = tmp_path / "repro" / "bridge" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("seen = {}\n")
    out = tmp_path / "merged.sarif"
    proc = _run_cli(
        "repro.analyze", "--format", "sarif", "-o", str(out), str(bad)
    )
    assert proc.returncode == 1
    report = json.loads(out.read_text())
    names = [r["tool"]["driver"]["name"] for r in report["runs"]]
    assert names == ["simlint", "simflow", "simstate", "simrace"]
    state_run = report["runs"][2]
    assert [r["ruleId"] for r in state_run["results"]] == ["ST003"]
