"""simflow static-analysis test suite.

Mirrors the simlint suite's contract: every FL rule must (a) catch its
hazard in a positive fixture, (b) stay quiet under a
``# simflow: ignore[RULE]`` comment, and (c) stay quiet on a clean
variant of the same code.  A meta-test asserts the repository's own
protocol layer is clean through the real CLI, which is what makes the
CI flow gate meaningful.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.flow import FLOW_RULE_CODES, FLOW_RULES, analyze_sources
from repro.flow.graph import design_active

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source, module_path="repro/bridge/fixture.py", path="fixture.py"):
    return [
        d.rule for d in analyze_sources([(path, module_path, source)])
    ]


# ----------------------------------------------------------------------
# per-rule fixtures: (source, module_path, line_to_suppress)
# ----------------------------------------------------------------------
FIXTURES = {
    # A StateMessage produced with no handler anywhere in the tree.
    "FL001": (
        "from repro.messages.types import StateMessage\n"
        "def report(self):\n"
        "    self._send(StateMessage(src_unit=0, dst_unit=1))\n",
        "repro/ndp/fixture.py",
        3,
    ),
    # Bare-expression enqueue: the False return is discarded.
    "FL002": (
        "def f(mailbox, msg):\n"
        "    mailbox.enqueue(msg)\n",
        "repro/bridge/fixture.py",
        2,
    ),
    # Rejection branch neither raises nor spills -- a blocking wait.
    "FL003": (
        "def f(buf, msg):\n"
        "    if not buf.push(msg):\n"
        "        pass\n",
        "repro/bridge/fixture.py",
        2,
    ),
    # Private balance-metadata poke from a message handler.
    "FL004": (
        "def handle(self, msg):\n"
        "    self.islent._lent.add(msg.block_id)\n",
        "repro/ndp/fixture.py",
        2,
    ),
}

#: Clean variants of each fixture: same shape, hazard removed.
CLEAN = {
    # The message type gains a handler, so production is consumed.
    "FL001": (
        "from repro.messages.types import StateMessage\n"
        "def report(self):\n"
        "    self._send(StateMessage(src_unit=0, dst_unit=1))\n"
        "def deliver_state_message(self, msg: StateMessage):\n"
        "    pass\n",
        "repro/ndp/fixture.py",
    ),
    # The return value is checked.
    "FL002": (
        "def f(mailbox, msg):\n"
        "    if not mailbox.enqueue(msg):\n"
        "        raise RuntimeError('full')\n",
        "repro/bridge/fixture.py",
    ),
    # The rejection branch escapes by spilling to an unbounded store.
    "FL003": (
        "def f(self, buf, msg):\n"
        "    if not buf.push(msg):\n"
        "        self._backlog.append(msg)\n",
        "repro/bridge/fixture.py",
    ),
    # The public API is used instead.
    "FL004": (
        "def handle(self, msg):\n"
        "    self.islent.set_lent(msg.block_id)\n",
        "repro/ndp/fixture.py",
    ),
}


def test_every_rule_has_fixtures():
    assert set(FIXTURES) == set(FLOW_RULE_CODES)
    assert set(CLEAN) == set(FLOW_RULE_CODES)
    assert len(FLOW_RULES) == 4


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_fires_on_hazard(code):
    source, module_path, _ = FIXTURES[code]
    assert code in codes(source, module_path), (
        f"{code} failed to detect its hazard fixture"
    )


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_suppressed_by_ignore_comment(code):
    source, module_path, line = FIXTURES[code]
    lines = source.splitlines()
    lines[line - 1] += f"  # simflow: ignore[{code}] fixture justification"
    suppressed = "\n".join(lines) + "\n"
    assert code not in codes(suppressed, module_path)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_suppressed_by_bare_ignore(code):
    source, module_path, line = FIXTURES[code]
    lines = source.splitlines()
    lines[line - 1] += "  # simflow: ignore"
    suppressed = "\n".join(lines) + "\n"
    assert code not in codes(suppressed, module_path)


@pytest.mark.parametrize("code", sorted(CLEAN))
def test_clean_variant_passes(code):
    source, module_path = CLEAN[code]
    assert code not in codes(source, module_path)


def test_simlint_ignore_does_not_silence_simflow():
    source, module_path, line = FIXTURES["FL002"]
    lines = source.splitlines()
    lines[line - 1] += "  # simlint: ignore"
    assert "FL002" in codes("\n".join(lines) + "\n", module_path)


# ----------------------------------------------------------------------
# scope and graph mechanics
# ----------------------------------------------------------------------
def test_out_of_scope_modules_are_ignored():
    source, _, _ = FIXTURES["FL002"]
    assert codes(source, "repro/analysis/fixture.py") == []
    assert codes(source, "repro/sim/fixture.py") == []


def test_design_scoping():
    # host_path is design C's fabric; the bridge hierarchy is B/W/O's.
    assert design_active("C", "repro/bridge/host_path.py")
    assert not design_active("C", "repro/bridge/level1.py")
    assert design_active("O", "repro/bridge/level1.py")
    assert not design_active("O", "repro/bridge/host_path.py")
    assert design_active("R", "repro/bridge/rowclone.py")
    assert not design_active("B", "repro/bridge/rowclone.py")
    # H is host-only execution: it loads no message code at all.
    assert not design_active("H", "repro/ndp/unit.py")
    # Units and message formats are shared by every NDP design.
    for design in ("C", "B", "W", "O", "R"):
        assert design_active(design, "repro/ndp/unit.py")
        assert design_active(design, "repro/messages/types.py")


def test_fl001_reports_only_designs_missing_the_handler():
    # TaskMessage produced in shared code, handled only in the bridge
    # hierarchy: orphaned under C and R, fine under B/W/O.
    producer = (
        "from repro.messages.types import TaskMessage\n"
        "def go(self):\n"
        "    self._send(TaskMessage(src_unit=0, dst_unit=1))\n"
    )
    handler = (
        "from repro.messages.types import TaskMessage\n"
        "def deliver_task_message(self, msg: TaskMessage):\n"
        "    pass\n"
    )
    diags = analyze_sources(
        [
            ("p.py", "repro/ndp/fixture.py", producer),
            ("h.py", "repro/bridge/level1_fixture.py", handler),
        ]
    )
    fl001 = [d for d in diags if d.rule == "FL001"]
    assert len(fl001) == 1
    assert "C,R" in fl001[0].message
    assert "B" not in fl001[0].message.split("design(s) ")[1].split(" ")[0]


def test_isinstance_dispatch_counts_as_handler():
    source = (
        "from repro.messages.types import StateMessage\n"
        "def send(self):\n"
        "    self._send(StateMessage(src_unit=0, dst_unit=1))\n"
        "def handle_message(self, msg):\n"
        "    if isinstance(msg, StateMessage):\n"
        "        pass\n"
    )
    assert "FL001" not in codes(source, "repro/ndp/fixture.py")


def test_fl003_while_drain_is_sanctioned():
    source = (
        "def drain(self, queue, target):\n"
        "    while queue and target.push(queue[0]):\n"
        "        queue.popleft()\n"
    )
    assert "FL003" not in codes(source)


def test_fl003_local_sink_call_escapes():
    source = (
        "class B:\n"
        "    def _overflow(self, msg):\n"
        "        self._backup.append(msg)\n"
        "    def route(self, msg):\n"
        "        if not self.up.push(msg):\n"
        "            self._overflow(msg)\n"
    )
    assert "FL003" not in codes(source)


def test_syntax_error_reported_not_crashed():
    diags = analyze_sources(
        [("broken.py", "repro/bridge/broken.py", "def f(:\n")]
    )
    assert [d.rule for d in diags] == ["FL000"]


# ----------------------------------------------------------------------
# meta: the repository's own protocol layer must be clean, via the CLI
# ----------------------------------------------------------------------
def _run_cli(*args, cwd=REPO_ROOT):
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.flow", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def test_cli_clean_on_repo_src():
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_exit_1_on_finding(tmp_path):
    bad = tmp_path / "repro" / "bridge" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(mb, m):\n    mb.enqueue(m)\n")
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "FL002" in proc.stdout


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for code in FLOW_RULE_CODES:
        assert code in proc.stdout
    assert "simflow: ignore" in proc.stdout


def test_cli_sarif_output(tmp_path):
    bad = tmp_path / "repro" / "bridge" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def f(mb, m):\n    mb.enqueue(m)\n")
    out = tmp_path / "flow.sarif"
    proc = _run_cli("--format", "sarif", "-o", str(out), str(bad))
    assert proc.returncode == 1
    report = json.loads(out.read_text())
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "simflow"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == list(FLOW_RULE_CODES)
    result = run["results"][0]
    assert result["ruleId"] == "FL002"
    assert rule_ids[result["ruleIndex"]] == "FL002"
