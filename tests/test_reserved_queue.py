"""Tests for the chunked reserved task queue (Section VI-C, Fig. 9)."""

import pytest

from repro.balance import ReservedQueue
from repro.runtime.task import Task


def task(addr=0, w=5):
    return Task(func="f", ts=0, data_addr=addr, workload=w)


def make_queue(total=10, chunk=256, static=2):
    # 256 B chunks / 32 B tasks = 8 tasks per chunk.
    return ReservedQueue(total, chunk, static)


def test_reserve_and_extract():
    q = make_queue()
    t1, t2 = task(w=5), task(w=7)
    assert q.reserve(1, t1)
    assert q.reserve(1, t2)
    assert q.workload_of(1) == 12
    assert 1 in q
    assert q.extract(1) == [t1, t2]
    assert 1 not in q
    assert q.total_tasks == 0


def test_first_chunk_is_static():
    q = make_queue(total=10, static=2)
    free0 = q.free_dynamic_chunks
    for _ in range(8):  # fills exactly the static chunk
        q.reserve(1, task())
    assert q.free_dynamic_chunks == free0


def test_overflow_allocates_dynamic_chunks():
    q = make_queue(total=10, static=2)
    for _ in range(9):  # 8 static + 1 overflow
        assert q.reserve(1, task())
    assert q.free_dynamic_chunks == 7


def test_pool_exhaustion_rejects():
    q = ReservedQueue(total_chunks=3, chunk_bytes=256, static_chunks=2)
    # Only one dynamic chunk: 8 (static) + 8 (dynamic) fit, 17th fails.
    for i in range(16):
        assert q.reserve(1, task()), i
    assert not q.reserve(1, task())
    assert q.total_tasks == 16


def test_extract_frees_dynamic_chunks():
    q = ReservedQueue(total_chunks=3, chunk_bytes=256, static_chunks=1)
    for _ in range(16):
        q.reserve(1, task())
    assert q.free_dynamic_chunks == 1
    q.extract(1)
    assert q.free_dynamic_chunks == 2


def test_evict_equals_extract():
    q = make_queue()
    t = task()
    q.reserve(5, t)
    assert q.evict(5) == [t]
    assert q.extract(5) == []


def test_multiple_blocks_tracked_independently():
    q = make_queue()
    q.reserve(1, task(w=3))
    q.reserve(2, task(w=4))
    assert sorted(q.blocks()) == [1, 2]
    assert q.workload_of(1) == 3
    assert q.workload_of(2) == 4
    assert q.total_workload == 7


def test_invalid_geometry():
    with pytest.raises(ValueError):
        ReservedQueue(0, 256, 0)
    with pytest.raises(ValueError):
        ReservedQueue(2, 256, 3)


def test_pop_one_dequeues_fifo():
    q = make_queue()
    t1, t2 = task(w=3), task(w=4)
    q.reserve(1, t1)
    q.reserve(1, t2)
    assert q.pop_one(1) is t1
    assert q.workload_of(1) == 4
    assert q.pop_one(1) is t2
    assert 1 not in q
    assert q.pop_one(1) is None


def test_pop_one_releases_chunks():
    q = ReservedQueue(total_chunks=4, chunk_bytes=256, static_chunks=1)
    for _ in range(16):  # 2 chunks (8 tasks each)
        q.reserve(1, task())
    assert q.free_dynamic_chunks == 2
    for _ in range(8):
        q.pop_one(1)
    assert q.free_dynamic_chunks == 3
    for _ in range(8):
        q.pop_one(1)
    assert q.free_dynamic_chunks == 3  # static chunk never returns
    assert 1 not in q


def test_first_block_is_oldest():
    q = make_queue()
    q.reserve(5, task())
    q.reserve(2, task())
    assert q.first_block() == 5
    q.pop_one(5)
    assert q.first_block() == 2
    q.pop_one(2)
    assert q.first_block() is None
