"""Tests for the benchmark harness's shared helpers."""

import pytest

from benchmarks.common import (
    ALL_APPS,
    bench_config,
    format_table,
    geomean,
    speedups_vs,
)
from repro.analysis.metrics import RunMetrics
from repro.config import Design


def metrics(makespan):
    return RunMetrics(
        design="X", app="a", makespan=makespan, avg_unit_time=1.0,
        max_unit_time=makespan, wait_fraction=0.0, total_busy_cycles=1,
        tasks_executed=1, task_messages=0, data_messages=0,
    )


def test_all_apps_are_the_papers_eight():
    assert ALL_APPS == ["ll", "ht", "tree", "spmv", "bfs", "sssp", "pr",
                        "wcc"]


def test_bench_config_unit_override():
    cfg = bench_config(Design.B, units=256)
    assert cfg.topology.total_units == 256
    assert cfg.design is Design.B


def test_geomean():
    assert geomean([4.0, 1.0]) == pytest.approx(2.0)


def test_geomean_rejects_empty_sequence():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean(x for x in ())


def test_speedups_vs_baseline():
    results = {
        "tree": {"C": metrics(300), "O": metrics(100)},
    }
    s = speedups_vs(results, "C")
    assert s["tree"]["O"] == pytest.approx(3.0)
    assert s["tree"]["C"] == pytest.approx(1.0)


def test_format_table_shape():
    out = format_table("t", ["a", "b"], [[1, 2.5]])
    lines = [l for l in out.splitlines() if l]
    assert lines[0] == "=== t ==="
    assert lines[1].split() == ["a", "b"]
    assert "2.50" in lines[-1]
