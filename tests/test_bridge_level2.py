"""Tests for the level-2 bridge: cross-rank routing and load balancing."""

import pytest

from repro.config import Design, SystemConfig, TopologyConfig
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

from .conftest import noop_task


def two_rank_config(design=Design.B, seed=7):
    topo = TopologyConfig(
        channels=1, ranks_per_channel=2, chips_per_rank=4, banks_per_chip=4,
        channel_bits=32,
    )
    return SystemConfig(topology=topo, seed=seed).with_design(design)


def make_system(design=Design.B):
    system = NDPSystem(two_rank_config(design))
    system.registry.register("noop", lambda ctx, task: None)
    return system


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


class TestCrossRankRouting:
    def test_level2_exists_for_multi_rank(self):
        sys_ = make_system()
        assert sys_.has_level2
        assert len(sys_.fabric.rank_bridges) == 2

    def test_cross_rank_task_delivery(self):
        sys_ = make_system()
        # Unit 0 is in rank 0, unit 31 in rank 1.
        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 31))

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.units[31].tasks_executed == 1
        l2 = sys_.fabric.level2
        assert l2._stat_routed.value >= 1
        assert l2.channel_links[0].total_bytes > 0

    def test_intra_rank_traffic_stays_below(self):
        sys_ = make_system()

        def spawn(ctx, task):
            ctx.enqueue_task("noop", task.ts, bank_addr(sys_, 5))  # rank 0

        sys_.registry.register("spawn", spawn)
        sys_.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.fabric.level2._stat_routed.value == 0

    def test_cross_rank_is_slower_than_intra_rank(self):
        def run(dst):
            sys_ = make_system()

            def spawn(ctx, task):
                ctx.enqueue_task("noop", task.ts, bank_addr(sys_, dst))

            sys_.registry.register("spawn", spawn)
            sys_.seed_task(Task(func="spawn", ts=0,
                                data_addr=bank_addr(sys_, 0)))
            sys_.run()
            return sys_.makespan

        assert run(31) > run(15)  # other rank vs same rank


class TestCrossRankBalancing:
    def test_idle_rank_receives_work(self):
        sys_ = make_system(Design.O)
        # Load only rank 0 heavily: many independent tasks on unit 3.
        for i in range(400):
            sys_.seed_task(noop_task(
                bank_addr(sys_, 3, offset=i * 64), workload=400,
            ))
        sys_.run()
        rank1_units = sys_.units[16:]
        executed_rank1 = sum(u.tasks_executed for u in rank1_units)
        assert executed_rank1 > 0, "cross-rank balancing never triggered"
        l2 = sys_.fabric.level2
        assert l2._stat_schedules.value >= 1

    def test_balancing_beats_no_balancing_on_skew(self):
        def run(design):
            sys_ = make_system(design)
            for i in range(400):
                sys_.seed_task(noop_task(
                    bank_addr(sys_, 3, offset=i * 64), workload=400,
                ))
            sys_.run()
            return sys_.makespan

        assert run(Design.O) < run(Design.B)
