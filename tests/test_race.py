"""simrace static-analysis test suite (rules RC001-RC005).

Mirrors the simlint/simflow/simstate contract: every RC rule must
(a) catch its hazard in a positive fixture, (b) stay quiet under a
``# simrace: ignore[RULE]`` comment, and (c) stay quiet on a clean
variant of the same code.  The fingerprint registry and its cache-key
cross-check are exercised directly, and meta-tests assert the
repository's own tree is clean through the real CLI -- plus the
``--baseline`` / ``--jobs`` modes of the unified analyze gate.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exec import cache as exec_cache
from repro.race import (
    ENV_REGISTRY,
    RACE_RULE_CODES,
    RACE_RULES,
    race_source,
)
from repro.race.fingerprints import (
    fingerprint_field_of,
    fingerprinted_knobs,
    is_registered,
    registered_names,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(source, module_path="repro/ndp/fixture.py", path="fixture.py"):
    return [
        d.rule
        for d in race_source(source, path=path, module_path=module_path)
    ]


# ----------------------------------------------------------------------
# RC001 -- shard isolation
# ----------------------------------------------------------------------
RC001_ABS = "from repro.exec.shardpool import ForkTransport\n"
RC001_REL = "from ..exec.shardpool import ForkTransport\n"
RC001_PLAIN = "import repro.exec.shardpool\n"
RC001_PRIVATE = "from ..sim.sharded import _InlineTransport\n"


def test_rc001_absolute_import_of_shardpool():
    assert codes(RC001_ABS) == ["RC001"]


def test_rc001_relative_import_of_shardpool():
    assert codes(RC001_REL, module_path="repro/bridge/host.py") == ["RC001"]


def test_rc001_plain_import_of_shardpool():
    assert codes(RC001_PLAIN, module_path="repro/balance/x.py") == ["RC001"]


def test_rc001_private_sharded_internals():
    assert codes(RC001_PRIVATE, module_path="repro/ndp/unit.py") == ["RC001"]


def test_rc001_public_shard_protocol_is_clean():
    clean = "from ..sim.sharded import ShardRuntime, BoundaryMessage\n"
    assert codes(clean, module_path="repro/ndp/unit.py") == []


def test_rc001_out_of_scope_module_is_clean():
    # exec/ and runtime/ are coordinator-side: they may import the
    # transport.
    assert codes(RC001_ABS, module_path="repro/runtime/shards.py") == []
    assert codes(RC001_ABS, module_path="repro/exec/runner.py") == []


# ----------------------------------------------------------------------
# RC002 -- process-boundary payload safety
# ----------------------------------------------------------------------
RC002_LAMBDA = """\
from concurrent.futures import ProcessPoolExecutor

def run():
    pool = ProcessPoolExecutor()
    pool.submit(lambda: 1)
"""

RC002_CLOSURE = """\
from concurrent.futures import ProcessPoolExecutor

def run(xs):
    def job():
        return sum(xs)
    with ProcessPoolExecutor() as pool:
        pool.submit(job)
"""

RC002_OPEN = """\
def run(transport_cls):
    fh = open("trace.log")
    transport = ForkTransport([fh])
    return transport
"""

RC002_GENERATOR = """\
from concurrent.futures import ProcessPoolExecutor

def run(fn, xs):
    with ProcessPoolExecutor() as pool:
        pool.map(fn, (x * 2 for x in xs))
"""

RC002_CLEAN = """\
from concurrent.futures import ProcessPoolExecutor

def job(x):
    return x + 1

def run(xs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(job, xs))
"""


def test_rc002_lambda_argument():
    assert codes(RC002_LAMBDA, module_path="repro/exec/x.py") == ["RC002"]


def test_rc002_closure_argument():
    assert codes(RC002_CLOSURE, module_path="repro/exec/x.py") == ["RC002"]


def test_rc002_open_handle_in_builders():
    assert codes(RC002_OPEN, module_path="repro/exec/x.py") == ["RC002"]


def test_rc002_generator_argument():
    assert codes(RC002_GENERATOR, module_path="repro/exec/x.py") == ["RC002"]


def test_rc002_module_level_callable_is_clean():
    assert codes(RC002_CLEAN, module_path="repro/exec/x.py") == []


# ----------------------------------------------------------------------
# RC003 -- cache-fingerprint completeness
# ----------------------------------------------------------------------
RC003_UNDECLARED = """\
import os

FAST = os.environ.get("NDPBRIDGE_TURBO", "0")
"""

RC003_NONLITERAL = """\
import os

def read(name):
    return os.getenv(name)
"""

RC003_SUBSCRIPT = 'import os\nv = os.environ["NDPBRIDGE_SECRET"]\n'

RC003_CLEAN = """\
import os

jobs = os.environ.get("NDPBRIDGE_JOBS")
shards = os.getenv("NDPBRIDGE_SHARDS", "1")
"""


def test_rc003_undeclared_knob():
    assert codes(RC003_UNDECLARED, module_path="repro/exec/x.py") == ["RC003"]


def test_rc003_non_literal_name():
    assert codes(RC003_NONLITERAL, module_path="repro/exec/x.py") == ["RC003"]


def test_rc003_environ_subscript():
    assert codes(RC003_SUBSCRIPT, module_path="repro/exec/x.py") == ["RC003"]


def test_rc003_registered_knobs_are_clean():
    assert codes(RC003_CLEAN, module_path="repro/exec/x.py") == []


def test_rc003_benchmarks_are_exempt():
    assert codes(
        RC003_UNDECLARED,
        module_path="repro/bench.py",
        path="benchmarks/bench.py",
    ) == []


# ----------------------------------------------------------------------
# RC004 -- lookahead soundness
# ----------------------------------------------------------------------
RC004_CONSTANT = """\
def plan(config):
    lookahead = 8
    return lookahead
"""

RC004_SHRINK = """\
def plan(config, comm):
    one_way = min_message_latency(config.channel_bytes_per_cycle, 64)
    lookahead = one_way - 1
    return lookahead
"""

RC004_HORIZON_SHRINK = """\
class Plan:
    def horizon(self, t):
        return t + self.lookahead - 1
"""

RC004_HORIZON_MISSING = """\
class Plan:
    def horizon(self, t):
        return t + 5
"""

RC004_CLEAN = """\
def plan(config, comm):
    one_way = min_message_latency(config.channel_bytes_per_cycle, 64)
    lookahead = one_way * 2 + comm.host_per_message_overhead_cycles
    return lookahead

class Plan:
    def horizon(self, t):
        return self.next_round(t) + self.lookahead
"""


def test_rc004_free_constant():
    assert codes(
        RC004_CONSTANT, module_path="repro/sim/partition.py"
    ) == ["RC004"]


def test_rc004_shrinking_lookahead():
    assert codes(
        RC004_SHRINK, module_path="repro/sim/partition.py"
    ) == ["RC004"]


def test_rc004_horizon_shrinks_lookahead():
    assert codes(
        RC004_HORIZON_SHRINK, module_path="repro/sim/partition.py"
    ) == ["RC004"]


def test_rc004_horizon_without_lookahead():
    assert codes(
        RC004_HORIZON_MISSING, module_path="repro/sim/partition.py"
    ) == ["RC004"]


def test_rc004_latency_derived_is_clean():
    assert codes(RC004_CLEAN, module_path="repro/sim/partition.py") == []


def test_rc004_out_of_scope_module_is_clean():
    assert codes(RC004_CONSTANT, module_path="repro/ndp/unit.py") == []


# ----------------------------------------------------------------------
# RC005 -- worker-context independence
# ----------------------------------------------------------------------
RC005_PID = "import os\n\ndef tag():\n    return os.getpid()\n"
RC005_START = (
    "import multiprocessing\n\n"
    "def mode():\n    return multiprocessing.get_start_method()\n"
)
RC005_CLEAN = "import os\n\ndef sep():\n    return os.sep\n"


def test_rc005_pid_read():
    assert codes(RC005_PID, module_path="repro/ndp/unit.py") == ["RC005"]


def test_rc005_start_method_read():
    assert codes(RC005_START, module_path="repro/sim/engine.py") == ["RC005"]


def test_rc005_context_free_os_use_is_clean():
    assert codes(RC005_CLEAN, module_path="repro/ndp/unit.py") == []


def test_rc005_out_of_scope_module_is_clean():
    # exec/ is parent-side orchestration; pid reads there are fine
    # (the cache uses one for tempfile naming).
    assert codes(RC005_PID, module_path="repro/exec/cache.py") == []


# ----------------------------------------------------------------------
# suppression & allowlist
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "source,module_path,code",
    [
        (RC001_ABS, "repro/ndp/fixture.py", "RC001"),
        (RC003_UNDECLARED, "repro/exec/x.py", "RC003"),
        (RC005_PID, "repro/ndp/unit.py", "RC005"),
    ],
)
def test_simrace_ignore_silences_rule(source, module_path, code):
    lines = source.splitlines()
    diag = race_source(source, module_path=module_path)[0]
    lines[diag.line - 1] += f"  # simrace: ignore[{code}] fixture"
    assert codes("\n".join(lines) + "\n", module_path=module_path) == []


def test_simlint_ignore_does_not_silence_simrace():
    lines = RC001_ABS.splitlines()
    lines[0] += "  # simlint: ignore[RC001]"
    assert codes("\n".join(lines) + "\n") == ["RC001"]


def test_allowlist_sanctions_coordinator_module():
    # repro/sim/sharded.py carries the one RC001 allowlist entry: the
    # coordinator may import the fork transport.
    assert codes(RC001_ABS, module_path="repro/sim/sharded.py") == []


def test_syntax_error_yields_rc000():
    assert codes("def broken(:\n") == ["RC000"]


# ----------------------------------------------------------------------
# the fingerprint registry and its cache-key cross-check
# ----------------------------------------------------------------------
def test_registry_covers_known_knobs():
    names = registered_names()
    assert "NDPBRIDGE_SHARDS" in names
    assert "NDPBRIDGE_JOBS" in names
    assert is_registered("NDPBRIDGE_SANITIZE")
    assert not is_registered("NDPBRIDGE_TURBO")


def test_registry_entries_are_justified():
    for knob in ENV_REGISTRY:
        assert knob.justification.strip(), knob.name
        assert knob.kind in ("fingerprinted", "execution_only")


def test_fingerprinted_knobs_map_to_cache_key_fields():
    assert fingerprinted_knobs(), "at least NDPBRIDGE_SHARDS must be listed"
    for knob, field in fingerprint_field_of().items():
        assert field in exec_cache.CELL_KEY_FIELDS, (knob, field)


def test_cache_import_check_rejects_unknown_field(monkeypatch):
    import repro.race.fingerprints as fp

    monkeypatch.setattr(
        fp, "fingerprint_field_of", lambda: {"NDPBRIDGE_X": "no_such_field"}
    )
    with pytest.raises(RuntimeError, match="no_such_field"):
        exec_cache._check_fingerprint_registry()


def test_cell_key_fields_match_cell_key_blob():
    from repro.config import Design, scaled_config

    cfg = scaled_config(128, Design.O, seed=42)
    # Every field name cell_key() hashes must be declared; the declared
    # tuple may be a superset (optional fields).
    import json as _json
    from unittest import mock

    captured = {}
    real_dumps = _json.dumps

    def spy(obj, **kw):
        if isinstance(obj, dict) and "code" in obj:
            captured.update(obj)
        return real_dumps(obj, **kw)

    with mock.patch.object(exec_cache.json, "dumps", side_effect=spy):
        exec_cache.cell_key(
            "tree", cfg, 0.1, 7, shards=2, partition="p",
            snapshot_at=10, openloop=None,
        )
    assert captured
    assert set(captured) <= set(exec_cache.CELL_KEY_FIELDS)


# ----------------------------------------------------------------------
# meta: the repository's own tree is clean, via the real CLI
# ----------------------------------------------------------------------
def _run_cli(module, *args, cwd=REPO_ROOT):
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", module, *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def test_cli_clean_on_repo_src():
    proc = _run_cli("repro.race", "src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "simrace: clean" in proc.stdout


def test_cli_exit_1_on_finding(tmp_path):
    bad = tmp_path / "repro" / "ndp" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(RC001_ABS)
    proc = _run_cli("repro.race", str(bad))
    assert proc.returncode == 1
    assert "RC001" in proc.stdout


def test_cli_list_rules():
    proc = _run_cli("repro.race", "--list-rules")
    assert proc.returncode == 0
    for code in RACE_RULE_CODES:
        assert code in proc.stdout
    assert "simrace: ignore" in proc.stdout


def test_cli_sarif_output(tmp_path):
    bad = tmp_path / "repro" / "ndp" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(RC001_ABS)
    out = tmp_path / "race.sarif"
    proc = _run_cli(
        "repro.race", "--format", "sarif", "-o", str(out), str(bad)
    )
    assert proc.returncode == 1
    report = json.loads(out.read_text())
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "simrace"
    assert run["results"][0]["ruleId"] == "RC001"
    assert len(run["tool"]["driver"]["rules"]) == len(RACE_RULES)


# ----------------------------------------------------------------------
# the unified gate: --jobs and --baseline
# ----------------------------------------------------------------------
def _bad_tree(tmp_path):
    bad = tmp_path / "repro" / "ndp" / "bad.py"
    bad.parent.mkdir(parents=True)
    # Trips simstate (mutable module global) and simrace (RC001) at once.
    bad.write_text("seen = {}\n" + RC001_ABS)
    return bad


def test_analyze_jobs_parallel_matches_serial(tmp_path):
    bad = _bad_tree(tmp_path)
    serial = _run_cli("repro.analyze", "-q", str(bad))
    par = _run_cli("repro.analyze", "-q", "--jobs", "4", str(bad))
    assert serial.returncode == par.returncode == 1
    assert serial.stdout == par.stdout
    assert "RC001" in par.stdout and "ST003" in par.stdout


def test_analyze_baseline_suppresses_known_findings(tmp_path):
    bad = _bad_tree(tmp_path)
    baseline = tmp_path / "baseline.sarif"
    first = _run_cli(
        "repro.analyze", "--format", "sarif", "-o", str(baseline), str(bad)
    )
    assert first.returncode == 1
    again = _run_cli("repro.analyze", "--baseline", str(baseline), str(bad))
    assert again.returncode == 0, again.stdout + again.stderr
    assert "baseline finding(s) suppressed" in again.stdout
    assert "analyze: clean" in again.stdout


def test_analyze_baseline_fails_on_new_finding(tmp_path):
    bad = _bad_tree(tmp_path)
    baseline = tmp_path / "baseline.sarif"
    _run_cli(
        "repro.analyze", "--format", "sarif", "-o", str(baseline), str(bad)
    )
    # A brand-new hazard in a second file is NOT in the baseline.
    worse = bad.parent / "worse.py"
    worse.write_text(RC005_PID)
    proc = _run_cli(
        "repro.analyze", "--baseline", str(baseline), str(bad.parent)
    )
    assert proc.returncode == 1
    assert "RC005" in proc.stdout
    assert "new finding(s)" in proc.stdout


def test_analyze_baseline_ignores_line_shifts(tmp_path):
    from repro.analyze import baseline_fingerprints

    bad = _bad_tree(tmp_path)
    baseline = tmp_path / "baseline.sarif"
    _run_cli(
        "repro.analyze", "--format", "sarif", "-o", str(baseline), str(bad)
    )
    prints = baseline_fingerprints(json.loads(baseline.read_text()))
    assert prints
    # Shift every finding down ten lines; fingerprints must not change.
    bad.write_text("\n" * 10 + bad.read_text())
    proc = _run_cli("repro.analyze", "--baseline", str(baseline), str(bad))
    assert proc.returncode == 0, proc.stdout
