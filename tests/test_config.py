"""Tests for configuration presets and validation (paper Table I)."""

import pytest

from repro.config import (
    ConfigError,
    Design,
    SystemConfig,
    TriggerMode,
    default_config,
    dq_width_config,
    gxfer_config,
    istate_config,
    scaled_config,
    sketch_config,
    small_config,
    split_dimm_config,
    tiny_config,
    trigger_mode_config,
    validate_config,
)


def test_default_matches_table_i():
    cfg = default_config()
    assert cfg.topology.channels == 2
    assert cfg.topology.ranks_per_channel == 4
    assert cfg.topology.chips_per_rank == 8
    assert cfg.topology.banks_per_chip == 8
    assert cfg.topology.total_units == 512
    assert cfg.topology.bank_capacity_mb == 64
    assert cfg.core.freq_mhz == 400
    assert cfg.comm.g_xfer_bytes == 256
    assert cfg.comm.i_state_cycles == 2000
    assert cfg.sketch.buckets == 16
    assert cfg.sketch.entries_per_bucket == 16
    validate_config(cfg)


def test_link_bandwidths():
    cfg = default_config()
    # DDR4-2400, x8 chip: 2.4 GB/s = 6 bytes per 2.5 ns core cycle.
    assert cfg.chip_link_bytes_per_cycle == pytest.approx(6.0)
    # 64-bit channel: 19.2 GB/s = 48 bytes per cycle.
    assert cfg.channel_bytes_per_cycle == pytest.approx(48.0)
    # 17 ns at 400 MHz is 7 cycles.
    assert cfg.t_cas_cycles == 7


def test_design_matrix():
    base = default_config()
    assert not base.with_design(Design.C).balance.enabled
    assert not base.with_design(Design.B).balance.enabled
    w = base.with_design(Design.W)
    assert w.balance.enabled
    assert not w.balance.advance_trigger
    assert not w.balance.fine_grained
    assert not w.balance.hot_selection
    assert w.balance.workload_correction
    o = base.with_design(Design.O)
    assert o.balance.enabled
    assert o.balance.advance_trigger
    assert o.balance.fine_grained
    assert o.balance.hot_selection


def test_scaled_configs():
    for units in (64, 128, 256, 512, 1024):
        cfg = scaled_config(units)
        assert cfg.topology.total_units == units
        validate_config(cfg)
    with pytest.raises(ValueError):
        scaled_config(100)


def test_dq_width_configs():
    x4 = dq_width_config(4)
    assert x4.topology.total_units == 1024
    assert x4.chip_link_bytes_per_cycle == pytest.approx(3.0)
    x16 = dq_width_config(16)
    assert x16.topology.total_units == 256
    assert x16.chip_link_bytes_per_cycle == pytest.approx(12.0)
    with pytest.raises(ValueError):
        dq_width_config(32)


def test_split_dimm_reduces_bandwidth():
    cfg = split_dimm_config()
    base = default_config()
    assert cfg.chip_link_bytes_per_cycle == pytest.approx(
        0.75 * base.chip_link_bytes_per_cycle
    )
    validate_config(cfg)


def test_trigger_mode_config():
    cfg = trigger_mode_config(TriggerMode.FIXED_2X)
    assert cfg.comm.trigger_mode is TriggerMode.FIXED_2X


def test_gxfer_config_validation():
    cfg = gxfer_config(1024, metadata_scale=4.0)
    assert cfg.comm.g_xfer_bytes == 1024
    assert cfg.balance.metadata_scale == 4.0
    with pytest.raises(ValueError):
        gxfer_config(100)


def test_istate_and_sketch_configs():
    assert istate_config(500).comm.i_state_cycles == 500
    sk = sketch_config(8, 32)
    assert sk.sketch.buckets == 8
    assert sk.sketch.entries_per_bucket == 32
    with pytest.raises(ValueError):
        istate_config(0)


def test_validation_rejects_bad_topology():
    cfg = default_config()
    bad = cfg.replace(
        topology=cfg.topology.__class__(chips_per_rank=3)
    )
    with pytest.raises(ConfigError):
        validate_config(bad)


def test_validation_rejects_lb_on_design_c():
    cfg = default_config(Design.C)
    bad = cfg.replace(balance=cfg.balance.__class__(enabled=True))
    with pytest.raises(ConfigError):
        validate_config(bad)


def test_small_and_tiny_are_valid():
    validate_config(small_config())
    validate_config(tiny_config())
    assert small_config().topology.total_units == 64
    assert tiny_config().topology.total_units == 16
