"""Integration tests of the load-balancing workflow (paper Fig. 6).

These drive the five steps explicitly on a small system: SCHEDULE with a
budget, giver selection, bridge assignment + metadata update, receiver
delivery, and eventual execution at the receiver.
"""

import pytest

from repro.config import Design, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

from .conftest import noop_task


def loaded_system(n_tasks=60, workload=300, design=Design.O):
    """A system with all work piled on unit 0."""
    system = NDPSystem(tiny_config(design))
    system.registry.register("noop", lambda ctx, task: None)
    for i in range(n_tasks):
        system.seed_task(noop_task(i * 64, workload=workload))
    return system


def test_workflow_moves_work_to_idle_units():
    system = loaded_system()
    system.run()
    executed_elsewhere = sum(
        u.tasks_executed for u in system.units if u.unit_id != 0
    )
    assert executed_elsewhere > 0, "no tasks migrated off the hot unit"
    lent = system.stats.sum_counters(".blocks_lent")
    assert lent > 0


def test_workflow_updates_all_metadata_levels():
    system = loaded_system()
    ran_checks = {"unit": False, "bridge": False}

    # Sample metadata mid-run by hooking task completion.
    orig = system.tracker.task_completed

    def spy(ts):
        bridge = system.fabric.rank_bridges[0]
        if len(bridge.borrowed):
            ran_checks["bridge"] = True
            for entry in bridge.borrowed.entries():
                home = system.units[entry.home_unit]
                pending = entry.block_id in home._lend_pending
                if home.islent.is_lent(entry.block_id) or pending:
                    ran_checks["unit"] = True
        orig(ts)

    system.tracker.task_completed = spy
    system.run()
    assert ran_checks["bridge"], "bridge dataBorrowed never populated"
    assert ran_checks["unit"], "home isLent never agreed with the bridge"


def test_borrowed_tasks_execute_at_receiver():
    system = loaded_system()
    system.run()
    # Some receiver actually holds (or held) borrowed blocks.
    borrowed_total = system.stats.sum_counters(".blocks_borrowed")
    assert borrowed_total > 0


def test_budget_zero_is_noop():
    system = loaded_system(design=Design.O)
    unit = system.units[0]
    unit.handle_schedule(0)
    assert not unit._lend_pending
    assert system.tracker.data_messages_in_flight == 0


def test_giver_without_queue_gives_nothing():
    system = NDPSystem(tiny_config(Design.O))
    system.registry.register("noop", lambda ctx, task: None)
    unit = system.units[0]
    unit.handle_schedule(500)
    assert not unit._lend_pending


def test_work_stealing_design_also_balances():
    system = loaded_system(design=Design.W)
    system.run()
    executed_elsewhere = sum(
        u.tasks_executed for u in system.units if u.unit_id != 0
    )
    assert executed_elsewhere > 0


def test_balancing_reduces_makespan_on_skew():
    balanced = loaded_system(design=Design.O)
    balanced.run()
    static = loaded_system(design=Design.B)
    static.run()
    assert balanced.makespan < static.makespan
