"""Property-based end-to-end tests.

Hypothesis generates random task graphs (fan-outs, timestamps, target
units, workloads) and runs them on several designs, checking the
system-level invariants that must hold for *any* program:

* every created task completes exactly once (conservation);
* all designs compute identical application-visible results;
* the metadata audit passes after balanced runs;
* determinism: re-running the same program reproduces cycle counts.
"""

from dataclasses import dataclass
from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.audit import audit_system
from repro.config import Design, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

N_UNITS = 16

# A program is a list of seed specs: (target_element, ts, workload,
# fanout); every executed task appends to a result log and spawns
# `fanout` children on derived elements at ts or ts+1.
seed_spec = st.tuples(
    st.integers(min_value=0, max_value=127),     # element index
    st.integers(min_value=0, max_value=2),       # timestamp
    st.integers(min_value=1, max_value=200),     # workload
    st.integers(min_value=0, max_value=3),       # fanout
)
program_strategy = st.lists(seed_spec, min_size=1, max_size=25)


@dataclass
class _ProgramResult:
    executed: List[Tuple[int, int]]
    makespan: int
    system: object


def run_program(program, design, seed=5) -> _ProgramResult:
    system = NDPSystem(tiny_config(design, seed=seed))
    arr = system.partition.allocate("elements", 128, element_size=64)
    executed: List[Tuple[int, int]] = []

    def fn(ctx, task):
        element = system.partition.index_of(arr, task.data_addr)
        depth, fanout = task.args
        executed.append((element, task.ts))
        if depth >= 2:
            return
        for k in range(fanout):
            child_el = (element * 7 + k * 13 + 1) % 128
            child_ts = task.ts + (k % 2)
            ctx.enqueue_task(
                "fn", child_ts,
                system.partition.addr_of(arr, child_el),
                workload=10 + 5 * k,
                args=(depth + 1, max(0, fanout - 1)),
            )

    system.registry.register("fn", fn)
    for element, ts, workload, fanout in program:
        system.seed_task(Task(
            func="fn", ts=ts,
            data_addr=system.partition.addr_of(arr, element),
            workload=workload, actual_cycles=workload,
            args=(0, fanout),
        ))
    system.run()
    return _ProgramResult(executed, system.makespan, system)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_conservation_on_bridge_design(program):
    result = run_program(program, Design.B)
    tr = result.system.tracker
    assert tr.total_created == tr.total_completed == len(result.executed)
    assert tr.task_messages_in_flight == 0


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_all_designs_agree_on_results(program):
    reference = None
    for design in (Design.C, Design.B, Design.O):
        result = run_program(program, design)
        canonical = sorted(result.executed)
        if reference is None:
            reference = canonical
        assert canonical == reference, f"{design} diverged"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_balanced_runs_pass_audit(program):
    result = run_program(program, Design.O)
    report = audit_system(result.system)
    assert report.ok, str(report)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(program=program_strategy)
def test_determinism_property(program):
    a = run_program(program, Design.O)
    b = run_program(program, Design.O)
    assert a.makespan == b.makespan
    assert a.executed == b.executed
