"""Tests for the design-H host multicore model."""

import pytest

from repro.apps import make_app
from repro.baselines.host_system import HostSystem
from repro.config import Design, default_config, tiny_config
from repro.runtime.runner import build_system, run_app
from repro.runtime.task import Task


def make_host():
    return HostSystem(tiny_config(Design.H))


def test_runs_simple_task():
    host = make_host()
    done = []
    host.registry.register("t", lambda ctx, task: done.append(ctx.unit_id))
    host.seed_task(Task(func="t", ts=0, data_addr=0, workload=100))
    host.run()
    assert len(done) == 1
    assert host.makespan > 0


def test_host_core_is_faster_than_ndp_core():
    host = make_host()
    host.registry.register("t", lambda ctx, task: None)
    host.seed_task(Task(func="t", ts=0, data_addr=0,
                        workload=1300, actual_cycles=1300))
    host.run()
    # 1300 NDP cycles / 6.5x speedup = ~200 host-side cycles of compute.
    assert host.makespan <= 220


def test_all_cores_used_in_parallel():
    host = make_host()
    host.registry.register("t", lambda ctx, task: None)
    for i in range(16):
        host.seed_task(Task(func="t", ts=0, data_addr=i * 4096,
                            workload=1300, actual_cycles=1300,
                            read_only=True))
    host.run()
    # 16 tasks on 16 cores take barely longer than 1 task.
    assert host.makespan <= 2 * 220


def test_work_exceeding_cores_serializes():
    def run(n):
        host = make_host()
        host.registry.register("t", lambda ctx, task: None)
        for i in range(n):
            host.seed_task(Task(func="t", ts=0, data_addr=i * 4096,
                                workload=1300, actual_cycles=1300,
                                read_only=True))
        host.run()
        return host.makespan

    assert run(32) > 1.5 * run(16)


def test_writers_to_same_element_serialize():
    def run(read_only):
        host = make_host()
        host.registry.register("t", lambda ctx, task: None)
        for _ in range(32):
            host.seed_task(Task(func="t", ts=0, data_addr=128,
                                workload=13, actual_cycles=13,
                                read_only=read_only))
        host.run()
        return host.makespan

    assert run(read_only=False) > 2 * run(read_only=True)


def test_memory_bandwidth_bounds_short_tasks():
    host = make_host()
    host.registry.register("t", lambda ctx, task: None)
    for i in range(1000):
        host.seed_task(Task(func="t", ts=0, data_addr=i * 64,
                            workload=1, actual_cycles=1))
    host.run()
    # 1000 x 64 B over ~96 B/cycle of shared bandwidth is > 600 cycles.
    assert host.makespan >= 600


def test_epochs_respected():
    host = make_host()
    order = []
    host.registry.register("t", lambda ctx, task: order.append(task.args[0]))
    host.seed_task(Task(func="t", ts=1, data_addr=0, args=("late",),
                        workload=1))
    host.seed_task(Task(func="t", ts=0, data_addr=64, args=("early",),
                        workload=500, actual_cycles=500))
    host.run()
    assert order == ["early", "late"]


def test_build_system_dispatches_on_design():
    assert isinstance(build_system(tiny_config(Design.H)), HostSystem)


def test_apps_run_unmodified_on_host():
    app = make_app("wcc", scale=0.03, seed=2)
    result = run_app(app, tiny_config(Design.H))
    assert app.verify()
    assert result.metrics.design == "H"


def test_cannot_run_twice():
    host = make_host()
    host.registry.register("t", lambda ctx, task: None)
    host.seed_task(Task(func="t", ts=0, data_addr=0))
    host.run()
    with pytest.raises(RuntimeError):
        host.run()
