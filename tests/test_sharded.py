"""Sharded conservative-window engine: protocol, bit-identity, guards.

Three layers of coverage:

* toy runtimes drive :class:`repro.sim.sharded.ShardedSimulator` directly
  (window sizing, lookahead enforcement, barrier edge cases);
* the NDP binding's core contract -- a ``shards=1`` run is bit-identical
  to the serial ``run_app`` across the full app x design matrix, and an
  N-shard run is bit-identical between inline and forked-parallel
  execution;
* the guard rails: unshardable topologies raise ``ConfigError``, a
  partition plan whose lookahead overstates the real hop latency trips
  the engine's conservativeness check, and the exec cache key separates
  sharded from serial cells.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

import pytest

from repro.config import (
    ConfigError,
    Design,
    default_config,
    multi_dimm_config,
    scaled_config,
    tiny_config,
    validate_shardable,
)
from repro.exec.runner import CellRequest
from repro.runtime.shards import (
    NDPShardBuilder,
    resolve_shards,
    run_app_sharded,
)
from repro.sim import SimulationError, Simulator
from repro.sim.partition import plan_partition
from repro.sim.sharded import (
    BoundaryMessage,
    ControlDecision,
    FixedLookaheadPlan,
    ShardedSimulator,
    ShardReport,
    ShardRuntime,
)

APPS = ["ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", "wcc"]
NDP_DESIGNS = [Design.C, Design.B, Design.W, Design.O]


# ----------------------------------------------------------------------
# toy runtimes
# ----------------------------------------------------------------------
class PingPong(ShardRuntime):
    """Two shards volley a token; each bounce crosses the boundary.

    ``undercut`` shaves cycles off the declared lookahead -- the
    negative-test knob for the engine's conservativeness check.
    """

    def __init__(
        self,
        shard_id: int,
        plan: FixedLookaheadPlan,
        volleys: int,
        undercut: int = 0,
        start_time: int = 5,
    ) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.volleys = volleys
        self.undercut = undercut
        self.sim = Simulator(max_cycles=10 ** 9)
        self.outbox: List[BoundaryMessage] = []
        self.log: List[int] = []
        self._seq = 0
        if shard_id == 0 and volleys > 0:
            self.sim.schedule_at(start_time, lambda: self._volley(0))

    def _volley(self, count: int) -> None:
        now = self.sim.now
        deliver = self.plan.horizon(now) - self.undercut
        self.outbox.append(BoundaryMessage(
            src_shard=self.shard_id,
            dst_shard=1 - self.shard_id,
            send_time=now,
            deliver_time=deliver,
            seq=self._seq,
            kind="token",
            payload=(count,),
        ))
        self._seq += 1

    def begin(self) -> ShardReport:
        return self._report()

    def run_window(
        self, until: int, inbox: Sequence[BoundaryMessage]
    ) -> ShardReport:
        for msg in inbox:
            count = int(msg.payload[0])

            def arrive(count: int = count) -> None:
                self.log.append(self.sim.now)
                if count + 1 < self.volleys:
                    self._volley(count + 1)

            self.sim.schedule_at(msg.deliver_time, arrive)
        self.sim.run(until=until)
        return self._report()

    def apply_control(self, decision: ControlDecision) -> ShardReport:
        return self._report()

    def finalize(self) -> Dict[str, object]:
        return {
            "shard": self.shard_id,
            "log": list(self.log),
            "events": self.sim.events_processed,
        }

    def _report(self) -> ShardReport:
        # Outbox messages travel inside the report, so the engine's
        # pending-message veto covers anything still in flight; quiescence
        # here is just "my event queue is empty".
        quiescent = self.sim.peek_time() is None
        outbox = tuple(self.outbox)
        self.outbox = []
        return ShardReport(
            shard_id=self.shard_id,
            now=self.sim.now,
            next_event_time=self.sim.peek_time(),
            events_processed=self.sim.events_processed,
            quiescent=quiescent,
            future_work=False,
            finished=False,
            outbox=outbox,
        )


class Stuck(PingPong):
    """Reports non-quiescent forever with an empty event queue."""

    def _report(self) -> ShardReport:
        report = super()._report()
        return dataclasses.replace(report, quiescent=False)


def _pingpong(
    volleys: int,
    lookahead: int = 10,
    batch_period: int = 0,
    undercut: int = 0,
    parallel: bool = False,
):
    plan = FixedLookaheadPlan(
        shards=2, lookahead=lookahead, batch_period=batch_period
    )
    builders = [
        lambda s=s: PingPong(s, plan, volleys, undercut=undercut)
        for s in range(2)
    ]
    return ShardedSimulator(builders, plan, parallel=parallel)


# ----------------------------------------------------------------------
# engine protocol (toy)
# ----------------------------------------------------------------------
def test_pingpong_delivers_every_volley():
    result = _pingpong(volleys=6).run()
    payloads = sorted(result.payloads, key=lambda p: p["shard"])
    # 6 volleys alternate: shard 1 receives 0,2,4; shard 0 receives 1,3,5.
    assert len(payloads[1]["log"]) == 3
    assert len(payloads[0]["log"]) == 3
    assert result.boundary_messages == 6
    assert result.exported == {(0, 1): 3, (1, 0): 3}
    assert result.injected == result.exported

def test_pingpong_inline_matches_parallel():
    inline = _pingpong(volleys=8, batch_period=50, parallel=False).run()
    forked = _pingpong(volleys=8, batch_period=50, parallel=True).run()
    assert inline.payloads == forked.payloads
    assert inline.windows == forked.windows
    assert inline.exported == forked.exported


def test_windows_jump_over_idle_gaps():
    """The floor is the next event, not now+lookahead: few windows even
    when deliveries are spread over a huge time span."""
    result = _pingpong(volleys=4, lookahead=100_000).run()
    assert result.windows <= 2 * 4 + 2


def test_delivery_exactly_at_lookahead_bound_is_legal():
    # undercut=0 sends every token at precisely horizon(send_time).
    result = _pingpong(volleys=2, batch_period=64, undercut=0).run()
    assert result.boundary_messages == 2


def test_lookahead_undercut_raises():
    with pytest.raises(SimulationError, match="lookahead violation"):
        _pingpong(volleys=2, undercut=1).run()


def test_stalled_run_raises():
    plan = FixedLookaheadPlan(shards=2, lookahead=10)
    builders = [lambda s=s: Stuck(s, plan, volleys=0) for s in range(2)]
    with pytest.raises(SimulationError, match="stalled"):
        ShardedSimulator(builders, plan, parallel=False).run()


def test_empty_workload_finishes_without_windows():
    plan = FixedLookaheadPlan(shards=2, lookahead=10)
    builders = [lambda s=s: PingPong(s, plan, volleys=0) for s in range(2)]
    result = ShardedSimulator(builders, plan, parallel=False).run()
    assert result.boundary_messages == 0
    assert result.windows == 0


# ----------------------------------------------------------------------
# NDP binding: bit-identity
# ----------------------------------------------------------------------
def _metric_dict(metrics) -> dict:
    d = metrics.as_dict()
    for key in ("shards", "windows", "boundary_tasks"):
        d.pop(key, None)
    return d


@pytest.mark.parametrize("design", NDP_DESIGNS)
@pytest.mark.parametrize("app", APPS)
def test_one_shard_matches_serial(app, design):
    """shards=1 through the full sharded machinery == plain run_app."""
    from repro import make_app, run_app

    cfg = tiny_config(design)
    serial = run_app(make_app(app, scale=0.1, seed=7), cfg)
    sharded = run_app_sharded(app, cfg, scale=0.1, seed=7, shards=1)
    assert _metric_dict(sharded.metrics) == _metric_dict(serial.metrics)
    assert sharded.metrics.extra["shards"] == 1
    assert sharded.metrics.extra["boundary_tasks"] == 0


def test_one_shard_parallel_matches_serial():
    from repro import make_app, run_app

    cfg = tiny_config(Design.O)
    serial = run_app(make_app("tree", scale=0.1, seed=7), cfg)
    sharded = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=1, parallel=True
    )
    assert _metric_dict(sharded.metrics) == _metric_dict(serial.metrics)


@pytest.mark.parametrize("app,design,crosses", [
    ("tree", Design.O, True),
    ("bfs", Design.B, True),
    ("pr", Design.C, True),
    # ht at this scale happens to keep every spawn shard-local -- still a
    # useful case: pure seed-splitting with zero boundary traffic.
    ("ht", Design.W, False),
])
def test_two_shards_inline_matches_parallel(app, design, crosses):
    """The parallel transport must not perturb the simulation at all."""
    cfg = scaled_config(128, design)
    inline = run_app_sharded(
        app, cfg, scale=0.1, seed=7, shards=2, verify=False, parallel=False
    )
    forked = run_app_sharded(
        app, cfg, scale=0.1, seed=7, shards=2, verify=False, parallel=True
    )
    assert inline.metrics.as_dict() == forked.metrics.as_dict()
    assert inline.system.payloads == forked.system.payloads
    assert inline.system.windows == forked.system.windows
    if crosses:
        # The split must actually exercise the boundary.
        assert inline.system.boundary_messages > 0


def test_sharded_run_under_sanitizer(monkeypatch):
    """Sanitizer + per-shard MessageAuditor stay bit-identical."""
    cfg = scaled_config(128, Design.O)
    plain = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2, verify=False,
        parallel=False,
    )
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    sanitized = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2, verify=False,
        parallel=False,
    )
    assert sanitized.metrics.as_dict() == plain.metrics.as_dict()
    assert sanitized.system.payloads == plain.system.payloads


def test_multi_dimm_config_shards_four_ways():
    cfg = multi_dimm_config(512, Design.O, channels=4, dimms_per_channel=2)
    result = run_app_sharded(
        "ll", cfg, scale=0.05, seed=7, shards=4, verify=False,
        parallel=False,
    )
    assert result.system.plan.shards == 4
    assert result.metrics.tasks_executed > 0


# ----------------------------------------------------------------------
# NDP binding: conservation and window accounting
# ----------------------------------------------------------------------
def test_cross_shard_task_conservation():
    cfg = scaled_config(128, Design.O)
    result = run_app_sharded(
        "bfs", cfg, scale=0.1, seed=7, shards=2, verify=False,
        parallel=False,
    )
    info = result.system
    assert info.exported == info.injected
    created = sum(int(p["tasks_created"]) for p in info.payloads)
    completed = sum(int(p["tasks_completed"]) for p in info.payloads)
    assert created == completed == result.metrics.tasks_executed
    # Every shard's own export/import ledger is echoed in its payload and
    # cross-checked against the engine inside run_app_sharded already;
    # here we close the global loop.
    exported = sum(
        sum(p["exported"].values()) for p in info.payloads
    )
    imported = sum(
        sum(p["imported"].values()) for p in info.payloads
    )
    assert exported == imported == info.boundary_messages


def test_windows_batch_on_host_poll_rounds():
    """Poll-round batching keeps the barrier count far below makespan /
    lookahead: windows stretch to the next host poll round."""
    cfg = scaled_config(128, Design.O)
    result = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2, verify=False,
        parallel=False,
    )
    info = result.system
    period = cfg.comm.host_poll_interval_cycles
    assert info.plan.batch_period == period
    assert 0 < info.windows <= result.metrics.makespan // period + 4


def test_inflated_lookahead_trips_the_engine():
    """A plan whose declared lookahead overstates the real hop latency
    must die at the first barrier, not silently desynchronize."""
    cfg = scaled_config(128, Design.O)
    plan = plan_partition(cfg, 2)
    bad_plan = dataclasses.replace(plan, lookahead=plan.lookahead * 8)
    builders = [
        NDPShardBuilder(
            app="tree", scale=0.1, seed=7, config=cfg, plan=bad_plan,
            shard_id=s, verify=False,
        )
        for s in range(2)
    ]
    with pytest.raises(SimulationError, match="lookahead violation"):
        ShardedSimulator(builders, bad_plan, parallel=False).run()


# ----------------------------------------------------------------------
# shardability validation and shard-count resolution
# ----------------------------------------------------------------------
def test_unshardable_topologies_raise():
    with pytest.raises(ConfigError, match="whole rank"):
        validate_shardable(tiny_config(Design.O), 2)  # 1 rank, 2 shards
    with pytest.raises(ConfigError, match="multiple of the channel"):
        # 2 channels x 4 ranks: an odd shard count splits a rank group
        # across channels.
        validate_shardable(scaled_config(512, Design.O), 3)
    with pytest.raises(ConfigError, match="do not divide"):
        # 6 shards = 3 per channel, but 4 ranks per channel.
        validate_shardable(scaled_config(512, Design.O), 6)
    with pytest.raises(ConfigError, match="designs C/B/W/O"):
        validate_shardable(default_config(Design.H), 2)
    with pytest.raises(ConfigError, match="designs C/B/W/O"):
        validate_shardable(default_config(Design.R), 2)
    with pytest.raises(ConfigError, match="shard count"):
        validate_shardable(default_config(Design.O), 0)


def test_explicit_shards_are_strict():
    with pytest.raises(ConfigError):
        run_app_sharded("ll", tiny_config(Design.O), scale=0.05, shards=2)


def test_design_h_is_rejected():
    with pytest.raises(ConfigError, match="host model"):
        run_app_sharded("ll", default_config(Design.H), shards=1)


def test_env_shards_fall_back_to_feasible(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SHARDS", "8")
    assert resolve_shards(tiny_config(Design.O)) == 1      # 1 rank
    assert resolve_shards(scaled_config(128, Design.O)) == 2  # 2 ranks
    assert resolve_shards(scaled_config(512, Design.O)) == 8
    monkeypatch.setenv("NDPBRIDGE_SHARDS", "auto")
    assert resolve_shards(scaled_config(128, Design.O)) == 2
    monkeypatch.delenv("NDPBRIDGE_SHARDS", raising=False)
    assert resolve_shards(scaled_config(512, Design.O)) == 1


def test_env_routes_run_app_to_sharded_engine(monkeypatch):
    """``run_app`` itself is the opt-in entry: with ``NDPBRIDGE_SHARDS``
    set it replicates the given app instance per shard (prototype
    deep-copy) and produces exactly what the name-based entry does."""
    from repro import make_app, run_app

    cfg = scaled_config(128, Design.O)
    named = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2, verify=False,
        parallel=False,
    )
    monkeypatch.setenv("NDPBRIDGE_SHARDS", "2")
    monkeypatch.setenv("NDPBRIDGE_JOBS", "1")  # inline, deterministic
    routed = run_app(make_app("tree", scale=0.1, seed=7), cfg, verify=False)
    assert routed.metrics.extra["shards"] == 2
    assert routed.metrics.as_dict() == named.metrics.as_dict()
    assert routed.system.payloads == named.system.payloads
    # Unshardable topologies stay serial under the same knob.
    serial = run_app(make_app("tree", scale=0.1, seed=7), tiny_config(Design.O))
    assert "shards" not in serial.metrics.extra


def test_multi_dimm_validation():
    cfg = multi_dimm_config(1024, Design.O, channels=4, dimms_per_channel=2)
    assert cfg.topology.dimms_per_channel == 2
    assert cfg.topology.ranks_per_dimm == 2
    with pytest.raises(ConfigError, match="DIMM"):
        from repro.config import TopologyConfig, validate_config
        from repro.config import SystemConfig

        validate_config(SystemConfig(topology=TopologyConfig(
            channels=1, ranks_per_channel=3, dimms_per_channel=2,
        )))


# ----------------------------------------------------------------------
# exec integration
# ----------------------------------------------------------------------
def test_cell_key_distinguishes_shard_count():
    cfg = scaled_config(128, Design.O)
    serial = CellRequest(app="tree", config=cfg, scale=0.1, seed=7)
    sharded = CellRequest(
        app="tree", config=cfg, scale=0.1, seed=7, shards=2
    )
    assert serial.key != sharded.key
    # Same request -> same key (partition hash is deterministic).
    again = CellRequest(
        app="tree", config=cfg, scale=0.1, seed=7, shards=2
    )
    assert sharded.key == again.key


def test_execute_cells_runs_sharded_requests():
    from repro.exec.runner import execute_cells

    cfg = scaled_config(128, Design.O)
    request = CellRequest(
        app="tree", config=cfg, scale=0.1, seed=7, verify=False, shards=2
    )
    inline = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2, verify=False,
        parallel=False,
    )
    [metrics] = execute_cells([request], jobs=1, cache=None)
    assert metrics.as_dict() == inline.metrics.as_dict()
