"""Runtime sanitizer tests for the event engine.

Two halves: (1) negative tests proving each sanitizer check actually
fires on the corruption it guards against, and (2) equivalence tests
proving sanitized runs are bit-identical to plain runs -- the sanitizer
observes, it must never perturb.
"""

import heapq
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app
from repro.sim import (
    SimulationError,
    Simulator,
    Tracer,
    TracerError,
    sanitize_from_env,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def noop():
    pass


# ----------------------------------------------------------------------
# mode selection
# ----------------------------------------------------------------------
def test_env_flag_parsing(monkeypatch):
    for value, expected in [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False), ("no", False),
    ]:
        monkeypatch.setenv("NDPBRIDGE_SANITIZE", value)
        assert sanitize_from_env() is expected
    monkeypatch.delenv("NDPBRIDGE_SANITIZE")
    assert sanitize_from_env() is False


def test_env_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    assert Simulator().sanitize is True
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "0")
    assert Simulator().sanitize is False
    # Explicit argument beats the environment.
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    assert Simulator(sanitize=False).sanitize is False


# ----------------------------------------------------------------------
# negative tests: every check must fire
# ----------------------------------------------------------------------
def test_float_delay_rejected():
    sim = Simulator(sanitize=True)
    with pytest.raises(SimulationError, match="must be an int"):
        sim.schedule(1.5, noop)
    # The plain engine silently truncates (historical behaviour).
    plain = Simulator(sanitize=False)
    plain.schedule(1.5, noop)
    assert plain.run() == 1


def test_float_absolute_time_rejected():
    sim = Simulator(sanitize=True)
    with pytest.raises(SimulationError, match="must be an int"):
        sim.schedule_at(10.0, noop)
    with pytest.raises(SimulationError, match="must be an int"):
        sim.schedule_cancellable(2.5, noop)
    with pytest.raises(SimulationError, match="must be an int"):
        sim.schedule_cancellable_at(7.5, noop)


def test_non_callable_callback_rejected():
    sim = Simulator(sanitize=True)
    with pytest.raises(SimulationError, match="not callable"):
        sim.schedule(1, "not a function")


def test_schedule_into_past_still_raises():
    sim = Simulator(sanitize=True)
    with pytest.raises(ValueError, match="past"):
        sim.schedule(-1, noop)
    sim.schedule(10, noop)
    sim.run()
    with pytest.raises(ValueError, match="current time"):
        sim.schedule_at(5, noop)


def test_time_running_backwards_detected():
    sim = Simulator(sanitize=True)
    sim.schedule(10, noop)
    sim.run()
    assert sim.now == 10
    # Corrupt the heap behind the API's back: an entry in the past.
    heapq.heappush(sim._queue, (5, sim._seq, noop))
    sim._seq += 1
    sim._scheduled_total += 1
    with pytest.raises(SimulationError, match="order violated|backwards"):
        sim.run()


def test_seq_collision_detected():
    sim = Simulator(sanitize=True)
    # Two heap entries sharing (time, seq): strict (time, seq) dispatch
    # ordering must refuse the duplicate.
    heapq.heappush(sim._queue, (3, 0, noop))
    heapq.heappush(sim._queue, (3, 0, noop))
    sim._scheduled_total += 2
    with pytest.raises(SimulationError, match="order violated"):
        sim.run()


def test_cancel_bookkeeping_corruption_detected():
    sim = Simulator(sanitize=True)
    sim.schedule_cancellable(5, noop)
    sim._cancelled = 3  # corrupt: nothing was actually cancelled
    with pytest.raises(SimulationError, match="bookkeeping inconsistent"):
        sim.audit()


def test_event_conservation_violation_detected():
    sim = Simulator(sanitize=True)
    sim.schedule(1, noop)
    sim.schedule(2, noop)
    sim._queue.pop()  # lose an event without accounting for it
    with pytest.raises(SimulationError, match="conservation"):
        sim.audit()


def test_audit_runs_automatically_at_run_exit():
    sim = Simulator(sanitize=True)
    sim.schedule(1, noop)
    sim._queue.pop()
    with pytest.raises(SimulationError, match="conservation"):
        sim.run()


def test_tracer_strict_raises_without_clock():
    t = Tracer(enabled=True, strict=True)
    with pytest.raises(TracerError, match="no clock bound"):
        t.emit("x", a=1)


def test_tracer_lenient_stamps_zero_without_clock():
    t = Tracer(enabled=True, strict=False)
    t.emit("x", a=1)
    assert t.records[0].cycle == 0


def test_tracer_strict_follows_env(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    assert Tracer(enabled=True).strict is True
    monkeypatch.delenv("NDPBRIDGE_SANITIZE")
    assert Tracer(enabled=True).strict is False


def test_tracer_strict_fine_once_clock_bound():
    t = Tracer(enabled=True, strict=True)
    t.bind_clock(lambda: 42)
    t.emit("x")
    assert t.records[0].cycle == 42


# ----------------------------------------------------------------------
# positive tests: clean runs pass every check
# ----------------------------------------------------------------------
def test_audit_clean_after_normal_run():
    sim = Simulator(sanitize=True)
    fired = []
    for i in range(20):
        sim.schedule(i, lambda i=i: fired.append(i))
    ev = sim.schedule_cancellable(5, noop)
    ev.cancel()
    assert sim.run() == 19
    sim.audit()  # explicit re-audit must also pass
    assert fired == list(range(20))
    assert sim.scheduled_total == 21
    assert sim.events_processed == 20
    assert sim.cancel_purged == 1


def test_audit_clean_with_heavy_cancellation_and_compaction():
    sim = Simulator(sanitize=True)
    events = [sim.schedule_cancellable(i + 1, noop) for i in range(500)]
    for ev in events[::2]:
        ev.cancel()
    # Compaction triggered by the cancel ratio must keep every counter
    # consistent; run() audits on exit.
    sim.run()
    assert sim.events_processed == 250
    assert sim.scheduled_total == 500


def test_audit_clean_on_stopped_and_until_exits():
    sim = Simulator(sanitize=True)
    sim.schedule(1, noop)
    sim.schedule(100, noop)
    assert sim.run(until=10) == 10
    sim.schedule(0, sim.stop)
    sim.run()
    sim.audit()


def test_sanitized_step_checks_order():
    sim = Simulator(sanitize=True)
    sim.schedule(1, noop)
    sim.schedule(2, noop)
    assert sim.step() and sim.step()
    assert not sim.step()
    sim.audit()


# ----------------------------------------------------------------------
# equivalence: the sanitizer observes, never perturbs
# ----------------------------------------------------------------------
def _makespan(sanitize: bool) -> tuple:
    app = make_app("ht", scale=0.03, seed=7)
    config = tiny_config(Design.O)
    result = run_app(app, config)
    sim = result.system.sim
    assert sim.sanitize is sanitize
    return (result.metrics.makespan, result.metrics.tasks_executed,
            sim.events_processed)


def test_sanitized_run_bit_identical(monkeypatch):
    monkeypatch.delenv("NDPBRIDGE_SANITIZE", raising=False)
    plain = _makespan(sanitize=False)
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    sanitized = _makespan(sanitize=True)
    assert plain == sanitized


def test_tier1_determinism_suites_pass_under_sanitize():
    """Re-run the engine + exec determinism tests with the sanitizer on."""
    env = dict(os.environ)
    env["NDPBRIDGE_SANITIZE"] = "1"
    env["NDPBRIDGE_CACHE"] = "0"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest", "-x", "-q",
            "tests/test_sim_engine.py", "tests/test_exec.py",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
