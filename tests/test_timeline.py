"""Tests for the ASCII utilization timeline."""

import pytest

from repro.analysis.timeline import (
    SHADES,
    UnitActivity,
    render_timeline,
    system_timeline,
    utilization_summary,
)
from repro.apps import make_app
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app


def test_idle_unit_renders_blank():
    acts = [UnitActivity(0, busy_cycles=0, finish_time=0)]
    out = render_timeline(acts, makespan=100, columns=10)
    assert "|" + SHADES[0] * 10 + "|" in out


def test_busy_unit_renders_dense():
    acts = [UnitActivity(0, busy_cycles=100, finish_time=100)]
    out = render_timeline(acts, makespan=100, columns=10)
    assert SHADES[-1] * 10 in out
    assert "100.0% busy" in out


def test_early_finisher_has_trailing_blank():
    acts = [UnitActivity(3, busy_cycles=50, finish_time=50)]
    out = render_timeline(acts, makespan=100, columns=20)
    bar = out.split("|")[1]
    assert bar.endswith(SHADES[0] * 5)


def test_row_downsampling():
    acts = [UnitActivity(i, 10, 10) for i in range(100)]
    out = render_timeline(acts, makespan=100, max_rows=10)
    assert "elided" in out
    assert out.count("unit") <= 15


def test_min_columns_enforced():
    with pytest.raises(ValueError):
        render_timeline([], makespan=10, columns=4)


def test_system_timeline_end_to_end():
    result = run_app(make_app("ll", scale=0.05, seed=3),
                     tiny_config(Design.B))
    out = system_timeline(result.system, columns=30)
    assert "design B" in out
    assert out.count("unit") >= 10
    mean, median, peak = utilization_summary(result.system)
    assert 0.0 <= mean <= peak <= 1.0
