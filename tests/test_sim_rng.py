"""Determinism tests for the named RNG streams."""

from repro.sim import DeterministicRNG


def test_same_seed_same_sequence():
    a = DeterministicRNG(7)
    b = DeterministicRNG(7)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = DeterministicRNG(7)
    b = DeterministicRNG(8)
    assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]


def test_substreams_independent_of_draw_order():
    root1 = DeterministicRNG(42)
    _ = [root1.random() for _ in range(5)]
    s1 = root1.substream("unit3")

    root2 = DeterministicRNG(42)
    s2 = root2.substream("unit3")
    assert [s1.random() for _ in range(10)] == [s2.random() for _ in range(10)]


def test_substream_names_disjoint():
    root = DeterministicRNG(1)
    a = root.substream("a")
    b = root.substream("b")
    assert [a.random() for _ in range(8)] != [b.random() for _ in range(8)]


def test_nested_substreams():
    r = DeterministicRNG(5)
    x = r.substream("x").substream("y")
    x2 = DeterministicRNG(5).substream("x").substream("y")
    assert x.randint(0, 10**9) == x2.randint(0, 10**9)


def test_helpers_work():
    r = DeterministicRNG(3)
    assert 0 <= r.randint(0, 5) <= 5
    assert r.choice([1, 2, 3]) in (1, 2, 3)
    assert sorted(r.sample(range(10), 3))[0] >= 0
    lst = list(range(6))
    r.shuffle(lst)
    assert sorted(lst) == list(range(6))
    assert 1.0 <= r.uniform(1.0, 2.0) <= 2.0
    assert r.paretovariate(2.0) >= 1.0
