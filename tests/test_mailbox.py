"""Tests for the mailbox ring buffer (Section V-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.messages import DataMessage, Mailbox, MailboxFullError, TaskMessage
from repro.runtime.task import Task


def task_msg(i=0):
    return TaskMessage(
        src_unit=0, dst_unit=1,
        task=Task(func="f", ts=0, data_addr=i * 64, workload=1),
    )


def test_enqueue_accounts_wire_bytes():
    mb = Mailbox(1024)
    msg = task_msg()
    assert mb.enqueue(msg)
    assert mb.used_bytes == msg.wire_bytes
    assert mb.free_bytes == 1024 - msg.wire_bytes


def test_full_mailbox_rejects():
    mb = Mailbox(128)
    assert mb.enqueue(task_msg(0))
    assert mb.enqueue(task_msg(1))
    assert not mb.enqueue(task_msg(2))  # 192 > 128
    with pytest.raises(MailboxFullError):
        mb.enqueue_or_raise(task_msg(3))


def test_fetch_fifo_order():
    mb = Mailbox(4096)
    msgs = [task_msg(i) for i in range(5)]
    for m in msgs:
        mb.enqueue(m)
    got, taken = mb.fetch(256)
    assert got == msgs[:4]
    assert taken == 256
    got2, _ = mb.fetch(256)
    assert got2 == msgs[4:]
    assert mb.is_empty()


def test_partial_fetch_of_large_message():
    mb = Mailbox(4096)
    big = DataMessage(src_unit=0, dst_unit=1, block_id=0, block_bytes=256)
    mb.enqueue(big)  # 320 wire bytes
    got, taken = mb.fetch(256)
    assert got == [] and taken == 256
    got, taken = mb.fetch(256)
    assert got == [big] and taken == 64
    assert mb.used_bytes == 0


def test_high_water_tracking():
    mb = Mailbox(1024)
    for i in range(3):
        mb.enqueue(task_msg(i))
    mb.fetch(1024)
    assert mb.high_water == 192
    assert mb.total_enqueued == 3
    assert mb.total_dequeued == 3


def test_drain_all():
    mb = Mailbox(1024)
    msgs = [task_msg(i) for i in range(4)]
    for m in msgs:
        mb.enqueue(m)
    assert mb.drain_all() == msgs
    assert mb.is_empty()
    assert mb.used_bytes == 0


def test_invalid_construction_and_fetch():
    with pytest.raises(ValueError):
        Mailbox(0)
    mb = Mailbox(64)
    with pytest.raises(ValueError):
        mb.fetch(0)


def test_fetch_budget_smaller_than_head():
    """A budget below the head's wire size makes partial progress only."""
    mb = Mailbox(1024)
    msg = task_msg()  # 64 wire bytes
    mb.enqueue(msg)
    got, taken = mb.fetch(63)
    assert got == [] and taken == 63
    # The last byte completes the message.
    got, taken = mb.fetch(63)
    assert got == [msg] and taken == 1
    assert mb.is_empty() and mb.used_bytes == 0


def test_fetch_exact_fit_budget():
    mb = Mailbox(1024)
    msgs = [task_msg(i) for i in range(2)]
    for m in msgs:
        mb.enqueue(m)
    got, taken = mb.fetch(msgs[0].wire_bytes)
    assert got == [msgs[0]]
    assert taken == msgs[0].wire_bytes
    got, taken = mb.fetch(msgs[1].wire_bytes)
    assert got == [msgs[1]]
    assert mb.is_empty()


def test_fetch_budget_one_byte():
    """The minimum positive budget always makes forward progress."""
    mb = Mailbox(1024)
    msg = task_msg()
    mb.enqueue(msg)
    for _ in range(msg.wire_bytes - 1):
        got, taken = mb.fetch(1)
        assert got == [] and taken == 1
    got, taken = mb.fetch(1)
    assert got == [msg] and taken == 1


def test_rejection_counters():
    mb = Mailbox(128)
    assert mb.enqueue(task_msg(0))
    assert mb.enqueue(task_msg(1))
    assert mb.dropped_messages == 0 and mb.dropped_bytes == 0
    rejected = task_msg(2)
    assert not mb.enqueue(rejected)
    assert mb.dropped_messages == 1
    assert mb.dropped_bytes == rejected.wire_bytes
    # enqueue_or_raise records the rejection too before raising.
    with pytest.raises(MailboxFullError):
        mb.enqueue_or_raise(task_msg(3))
    assert mb.dropped_messages == 2


def test_pending_messages_snapshot():
    mb = Mailbox(1024)
    msgs = [task_msg(i) for i in range(3)]
    for m in msgs:
        mb.enqueue(m)
    snap = mb.pending_messages()
    assert snap == tuple(msgs)
    mb.fetch(64)
    # The snapshot is a copy, not a live view.
    assert snap == tuple(msgs)
    assert mb.pending_messages() == tuple(msgs[1:])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), max_size=30),
       st.integers(min_value=64, max_value=512))
def test_byte_conservation_property(arg_counts, budget):
    """Everything enqueued is eventually fetched, in order, exactly once."""
    mb = Mailbox(1 << 20)
    msgs = []
    for i, n in enumerate(arg_counts):
        m = TaskMessage(
            src_unit=0, dst_unit=1,
            task=Task(func="f", ts=0, data_addr=i, args=tuple(range(n))),
        )
        msgs.append(m)
        assert mb.enqueue(m)
    out = []
    for _ in range(1000):
        if mb.is_empty():
            break
        got, taken = mb.fetch(budget)
        assert taken <= budget
        out.extend(got)
    assert out == msgs
    assert mb.used_bytes == 0
