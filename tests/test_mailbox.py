"""Tests for the mailbox ring buffer (Section V-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.messages import DataMessage, Mailbox, MailboxFullError, TaskMessage
from repro.runtime.task import Task


def task_msg(i=0):
    return TaskMessage(
        src_unit=0, dst_unit=1,
        task=Task(func="f", ts=0, data_addr=i * 64, workload=1),
    )


def test_enqueue_accounts_wire_bytes():
    mb = Mailbox(1024)
    msg = task_msg()
    assert mb.enqueue(msg)
    assert mb.used_bytes == msg.wire_bytes
    assert mb.free_bytes == 1024 - msg.wire_bytes


def test_full_mailbox_rejects():
    mb = Mailbox(128)
    assert mb.enqueue(task_msg(0))
    assert mb.enqueue(task_msg(1))
    assert not mb.enqueue(task_msg(2))  # 192 > 128
    with pytest.raises(MailboxFullError):
        mb.enqueue_or_raise(task_msg(3))


def test_fetch_fifo_order():
    mb = Mailbox(4096)
    msgs = [task_msg(i) for i in range(5)]
    for m in msgs:
        mb.enqueue(m)
    got, taken = mb.fetch(256)
    assert got == msgs[:4]
    assert taken == 256
    got2, _ = mb.fetch(256)
    assert got2 == msgs[4:]
    assert mb.is_empty()


def test_partial_fetch_of_large_message():
    mb = Mailbox(4096)
    big = DataMessage(src_unit=0, dst_unit=1, block_id=0, block_bytes=256)
    mb.enqueue(big)  # 320 wire bytes
    got, taken = mb.fetch(256)
    assert got == [] and taken == 256
    got, taken = mb.fetch(256)
    assert got == [big] and taken == 64
    assert mb.used_bytes == 0


def test_high_water_tracking():
    mb = Mailbox(1024)
    for i in range(3):
        mb.enqueue(task_msg(i))
    mb.fetch(1024)
    assert mb.high_water == 192
    assert mb.total_enqueued == 3
    assert mb.total_dequeued == 3


def test_drain_all():
    mb = Mailbox(1024)
    msgs = [task_msg(i) for i in range(4)]
    for m in msgs:
        mb.enqueue(m)
    assert mb.drain_all() == msgs
    assert mb.is_empty()
    assert mb.used_bytes == 0


def test_invalid_construction_and_fetch():
    with pytest.raises(ValueError):
        Mailbox(0)
    mb = Mailbox(64)
    with pytest.raises(ValueError):
        mb.fetch(0)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), max_size=30),
       st.integers(min_value=64, max_value=512))
def test_byte_conservation_property(arg_counts, budget):
    """Everything enqueued is eventually fetched, in order, exactly once."""
    mb = Mailbox(1 << 20)
    msgs = []
    for i, n in enumerate(arg_counts):
        m = TaskMessage(
            src_unit=0, dst_unit=1,
            task=Task(func="f", ts=0, data_addr=i, args=tuple(range(n))),
        )
        msgs.append(m)
        assert mb.enqueue(m)
    out = []
    for _ in range(1000):
        if mb.is_empty():
            break
        got, taken = mb.fetch(budget)
        assert taken <= budget
        out.extend(got)
    assert out == msgs
    assert mb.used_bytes == 0
