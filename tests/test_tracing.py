"""Tests for the structured tracer."""

from repro.sim.tracing import NULL_TRACER, Tracer


def test_disabled_tracer_drops_everything():
    t = Tracer(enabled=False)
    t.emit("x", a=1)
    assert t.records == []
    NULL_TRACER.emit("y")
    assert NULL_TRACER.records == []


def test_emit_and_filter():
    t = Tracer(enabled=True, strict=False)
    t.emit("bridge.gather", unit=3)
    t.emit("bridge.scatter", unit=4)
    t.emit("unit.park", block=7)
    assert t.count("bridge") == 2
    assert t.count("bridge.gather") == 1
    assert [r.payload["block"] for r in t.filter("unit")] == [7]


def test_clock_binding():
    t = Tracer(enabled=True)
    now = [0]
    t.bind_clock(lambda: now[0])
    t.emit("a")
    now[0] = 50
    t.emit("b")
    assert [r.cycle for r in t.records] == [0, 50]
    assert t.between(10, 100) == [t.records[1]]


def test_capacity_limit():
    t = Tracer(enabled=True, capacity=2, strict=False)
    for i in range(5):
        t.emit("x", i=i)
    assert len(t.records) == 2
    assert t.dropped == 3


def test_categories_and_dump():
    t = Tracer(enabled=True, strict=False)
    t.emit("a.b")
    t.emit("a.b")
    t.emit("c")
    assert t.categories() == {"a.b": 2, "c": 1}
    dump = t.dump(limit=2)
    assert "1 more" in dump
    t.clear()
    assert t.records == [] and t.dropped == 0
