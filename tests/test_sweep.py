"""Tests for the parameter sweep helper."""

import pytest

from repro.analysis.sweep import SweepResult, Variant, run_sweep
from repro.config import Design, tiny_config


def variants():
    return [
        Variant("B", tiny_config(Design.B)),
        Variant("O", tiny_config(Design.O)),
    ]


def test_sweep_runs_all_cells():
    result = run_sweep(variants(), apps=["ht", "ll"], scale=0.03, seed=3)
    assert set(result.cells) == {
        ("B", "ht"), ("B", "ll"), ("O", "ht"), ("O", "ll"),
    }
    for metrics in result.cells.values():
        assert metrics.makespan > 0


def test_relative_performance_baseline_is_one():
    result = run_sweep(variants(), apps=["ht"], scale=0.03, seed=3)
    rel = result.relative_performance("B")
    assert rel["B"] == pytest.approx(1.0)
    assert rel["O"] > 0


def test_table_contains_all_labels():
    result = run_sweep(variants(), apps=["ht"], scale=0.03, seed=3)
    out = result.table(baseline="B", title="designs")
    assert "designs" in out
    assert "B" in out and "O" in out and "geomean" in out


def test_on_cell_callback_fires():
    seen = []
    run_sweep(
        variants(), apps=["ht"], scale=0.03, seed=3,
        on_cell=lambda v, a, m: seen.append((v, a, m.makespan)),
    )
    assert len(seen) == 2


def test_duplicate_labels_rejected():
    with pytest.raises(ValueError):
        run_sweep([Variant("x", tiny_config()), Variant("x", tiny_config())],
                  apps=["ht"])


def test_empty_sweep_rejected():
    with pytest.raises(ValueError):
        run_sweep([], apps=["ht"])
