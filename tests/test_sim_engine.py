"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_from_callback():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, lambda: seen.append(sim.now))

    sim.schedule(10, first)
    sim.run()
    assert seen == [10, 15]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_event_is_skipped():
    sim = Simulator()
    hits = []
    ev = sim.schedule_cancellable(10, lambda: hits.append(1))
    ev.cancel()
    sim.run()
    assert hits == []
    assert sim.now == 0  # nothing actually executed


def test_run_until_time_bound():
    sim = Simulator()
    hits = []
    sim.schedule(10, lambda: hits.append(10))
    sim.schedule(100, lambda: hits.append(100))
    sim.run(until=50)
    assert hits == [10]
    assert sim.now == 50
    sim.run()
    assert hits == [10, 100]


def test_stop_condition_halts_loop():
    sim = Simulator()
    hits = []
    for t in range(1, 6):
        sim.schedule(t, lambda t=t: hits.append(t))
    sim.run(stop_condition=lambda: len(hits) >= 3)
    assert hits == [1, 2, 3]


def test_max_cycles_guard():
    sim = Simulator(max_cycles=100)

    def reschedule():
        sim.schedule(60, reschedule)

    sim.schedule(60, reschedule)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for t in range(4):
        sim.schedule(t + 1, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule_cancellable(5, lambda: None)
    sim.schedule(9, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 9


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_fast_path_schedule_returns_nothing():
    sim = Simulator()
    assert sim.schedule(1, lambda: None) is None
    assert sim.schedule_at(2, lambda: None) is None


def test_fast_and_cancellable_paths_interleave_deterministically():
    sim = Simulator()
    order = []
    sim.schedule(5, lambda: order.append("fast0"))
    sim.schedule_cancellable(5, lambda: order.append("ev1"))
    sim.schedule(5, lambda: order.append("fast2"))
    sim.schedule_cancellable(5, lambda: order.append("ev3"))
    sim.run()
    assert order == ["fast0", "ev1", "fast2", "ev3"]


def test_pending_events_is_exact_under_cancellation():
    sim = Simulator()
    evs = [sim.schedule_cancellable(10, lambda: None) for _ in range(8)]
    sim.schedule(10, lambda: None)
    assert sim.pending_events == 9
    evs[0].cancel()
    evs[3].cancel()
    assert sim.pending_events == 7
    evs[3].cancel()  # double-cancel is a no-op
    assert sim.pending_events == 7
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 7


def test_cancel_after_execution_is_a_noop():
    sim = Simulator()
    hits = []
    ev = sim.schedule_cancellable(3, lambda: hits.append(1))
    sim.run()
    assert hits == [1]
    ev.cancel()  # already ran; must not corrupt the pending count
    assert sim.pending_events == 0
    sim.schedule(4, lambda: hits.append(2))
    sim.run()
    assert hits == [1, 2]


def test_cancel_inside_same_cycle_batch():
    """An event cancelled by an earlier event at the *same* cycle must be
    skipped even though both were popped as one batch."""
    sim = Simulator()
    hits = []
    sim.schedule(7, lambda: victim.cancel())
    victim = sim.schedule_cancellable(7, lambda: hits.append("victim"))
    sim.run()
    assert hits == []
    assert sim.events_processed == 1
    assert sim.pending_events == 0


def test_cancel_of_already_run_event_in_same_cycle():
    """Cancelling an event that already executed earlier in the same batch
    must be a no-op (seq order: victim runs first)."""
    sim = Simulator()
    hits = []
    victim = sim.schedule_cancellable(7, lambda: hits.append("victim"))
    sim.schedule(7, lambda: victim.cancel())
    sim.run()
    assert hits == ["victim"]
    assert sim.events_processed == 2
    assert sim.pending_events == 0


def test_same_cycle_batch_includes_events_scheduled_mid_batch():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0, lambda: order.append("injected"))

    sim.schedule(4, first)
    sim.schedule(4, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "injected"]
    assert sim.now == 4


def test_heap_compaction_preserves_order_and_counts():
    sim = Simulator()
    order = []
    keep = []
    cancel = []
    for i in range(200):
        ev = sim.schedule_cancellable(10 + i, lambda i=i: order.append(i))
        (keep if i % 3 == 0 else cancel).append(ev)
    for ev in cancel:
        ev.cancel()
    # More than half the heap is dead, so compaction must have fired.
    assert len(sim._queue) < 200
    assert sim.pending_events == len(keep)
    sim.run()
    assert order == [i for i in range(200) if i % 3 == 0]
    assert sim.events_processed == len(keep)


def test_stop_inside_batch_leaves_rest_of_cycle_pending():
    sim = Simulator()
    order = []
    sim.schedule(5, lambda: (order.append("a"), sim.stop()))
    sim.schedule(5, lambda: order.append("b"))
    sim.run()
    assert order == ["a"]
    assert sim.pending_events == 1
    sim.run()
    assert order == ["a", "b"]


def test_run_twice_same_seed_is_bit_identical():
    """Engine-level determinism: an identical schedule replayed twice
    yields identical times and event counts."""
    import random

    def build_and_run():
        sim = Simulator()
        rng = random.Random(1234)
        fired = []

        def tick(depth):
            fired.append(sim.now)
            if depth < 4:
                for _ in range(2):
                    sim.schedule(rng.randrange(1, 50),
                                 lambda d=depth + 1: tick(d))

        for _ in range(10):
            sim.schedule(rng.randrange(0, 20), lambda: tick(0))
        sim.run()
        return sim.now, sim.events_processed, fired

    assert build_and_run() == build_and_run()
