"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_schedule_from_callback():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(5, lambda: seen.append(sim.now))

    sim.schedule(10, first)
    sim.run()
    assert seen == [10, 15]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_cancelled_event_is_skipped():
    sim = Simulator()
    hits = []
    ev = sim.schedule(10, lambda: hits.append(1))
    ev.cancel()
    sim.run()
    assert hits == []
    assert sim.now == 0  # nothing actually executed


def test_run_until_time_bound():
    sim = Simulator()
    hits = []
    sim.schedule(10, lambda: hits.append(10))
    sim.schedule(100, lambda: hits.append(100))
    sim.run(until=50)
    assert hits == [10]
    assert sim.now == 50
    sim.run()
    assert hits == [10, 100]


def test_stop_condition_halts_loop():
    sim = Simulator()
    hits = []
    for t in range(1, 6):
        sim.schedule(t, lambda t=t: hits.append(t))
    sim.run(stop_condition=lambda: len(hits) >= 3)
    assert hits == [1, 2, 3]


def test_max_cycles_guard():
    sim = Simulator(max_cycles=100)

    def reschedule():
        sim.schedule(60, reschedule)

    sim.schedule(60, reschedule)
    with pytest.raises(SimulationError):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for t in range(4):
        sim.schedule(t + 1, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule(5, lambda: None)
    sim.schedule(9, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 9


def test_step_returns_false_when_drained():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert sim.step() is False
