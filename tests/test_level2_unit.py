"""Focused unit tests of level-2 bridge internals."""

from dataclasses import replace

import pytest

from repro.config import Design, SystemConfig, TopologyConfig
from repro.messages import DataMessage, TaskMessage
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


def four_rank_config(design=Design.O, seed=5):
    topo = TopologyConfig(
        channels=2, ranks_per_channel=2, chips_per_rank=4, banks_per_chip=4,
        channel_bits=32,
    )
    return SystemConfig(topology=topo, seed=seed).with_design(design)


def make_system(design=Design.O):
    system = NDPSystem(four_rank_config(design))
    system.registry.register("noop", lambda ctx, task: None)
    return system


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


def test_channels_mapped_to_ranks():
    system = make_system()
    l2 = system.fabric.level2
    assert len(l2.channel_links) == 2
    assert l2._channel_of_rank(0) == 0
    assert l2._channel_of_rank(1) == 0
    assert l2._channel_of_rank(2) == 1
    assert l2._channel_of_rank(3) == 1


def test_uplink_selection():
    system = make_system()
    l2 = system.fabric.level2
    assert l2.p2p_ports is None
    assert l2._uplink(3) is l2.channel_links[1]
    linked = NDPSystem(four_rank_config().replace(
        comm=replace(four_rank_config().comm, inter_rank_links=True)
    ))
    ll2 = linked.fabric.level2
    assert ll2._uplink(3) is ll2.p2p_ports[3]


def test_cross_channel_message_counted():
    system = make_system()
    # Unit 0 lives on channel 0; unit 48 (rank 3) on channel 1.
    def spawn(ctx, task):
        ctx.enqueue_task("noop", task.ts, bank_addr(system, 48))

    system.registry.register("spawn", spawn)
    system.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(system, 0)))
    system.run()
    assert system.units[48].tasks_executed == 1
    l2 = system.fabric.level2
    # Both channels carried the message (gather on 0, scatter on 1).
    assert l2.channel_links[0].total_bytes > 0
    assert l2.channel_links[1].total_bytes > 0


def test_round_budget_scales_with_chunks():
    base = four_rank_config()
    small = base.replace(comm=replace(base.comm, max_chunks_per_round=2))
    sys_small = NDPSystem(small)
    sys_base = NDPSystem(four_rank_config())
    assert (
        sys_small.fabric.level2.round_budget
        < sys_base.fabric.level2.round_budget
    )


def test_l2_borrowed_tracks_cross_rank_lends():
    system = make_system(Design.O)
    # Pile work on one rank so the level-2 balancer engages.
    for i in range(300):
        system.seed_task(Task(func="noop", ts=0,
                              data_addr=bank_addr(system, 2, i * 64),
                              workload=400, actual_cycles=400))
    system.run()
    l2 = system.fabric.level2
    # Either the cross-rank balancer placed entries or it never needed
    # to (fast drain) -- but the schedule command counter tells us.
    if l2._stat_schedules.value:
        executed_other_ranks = sum(
            u.tasks_executed for u in system.units[16:]
        )
        assert executed_other_ranks > 0
