"""Protocol-order tests: a lend's data block travels before its tasks."""

import pytest

from repro.config import Design, tiny_config
from repro.messages import DataMessage, TaskMessage
from repro.runtime.system import NDPSystem

from .conftest import noop_task


def giver_with_hot_block():
    """A unit loaded with enough hot, profitable work to lend."""
    system = NDPSystem(tiny_config(Design.O))
    system.registry.register("noop", lambda ctx, task: None)
    unit = system.units[0]
    for i in range(12):
        t = noop_task(0 + (i % 4) * 64, workload=400)
        system.tracker.task_created(0)
        unit.accept_task(t)
    for i in range(12):
        t = noop_task(4096 + i * 256, workload=400)
        system.tracker.task_created(0)
        unit.accept_task(t)
    return system, unit


def wire_order(system):
    """Record the order messages pass the level-1 router."""
    bridge = system.fabric.rank_bridges[0]
    seen = []
    original = bridge._route_one

    def spy(msg):
        if isinstance(msg, DataMessage):
            seen.append(("data", msg.block_id))
        elif isinstance(msg, TaskMessage) and msg.lb_assigned:
            seen.append(("task", msg.task.data_addr // 256))
        return original(msg)

    bridge._route_one = spy
    return seen


def test_data_message_precedes_its_tasks_on_the_wire():
    system, unit = giver_with_hot_block()
    seen = wire_order(system)
    unit.handle_schedule(budget=800)
    system.run()
    bundles = [b for kind, b in seen if kind == "data"]
    assert bundles, "no bundle was produced"
    arrived_data = set()
    for kind, block in seen:
        if kind == "data":
            arrived_data.add(block)
        else:
            assert block in arrived_data, (
                "an lb task passed the router before its block's data"
            )


def test_bundle_workload_matches_task_sum():
    system, unit = giver_with_hot_block()
    bridge = system.fabric.rank_bridges[0]
    bundles = {}
    tasks = {}
    original = bridge._route_one

    def spy(msg):
        if isinstance(msg, DataMessage) and not msg.returning:
            bundles[msg.block_id] = msg.bundle_workload
        elif isinstance(msg, TaskMessage) and msg.lb_assigned:
            block = msg.task.data_addr // 256
            tasks[block] = tasks.get(block, 0) + msg.task.workload_estimate
        return original(msg)

    bridge._route_one = spy
    unit.handle_schedule(budget=800)
    system.run()
    assert bundles
    for block, workload in bundles.items():
        assert tasks.get(block, 0) == workload


def test_lend_pending_blocks_second_schedule():
    system, unit = giver_with_hot_block()
    data_blocks = []
    bridge = system.fabric.rank_bridges[0]
    original = bridge._route_one

    def spy(msg):
        if isinstance(msg, DataMessage) and not msg.returning:
            data_blocks.append(msg.block_id)
        return original(msg)

    bridge._route_one = spy
    unit.handle_schedule(budget=800)
    unit.handle_schedule(budget=800)
    system.run()
    # No block is bundled twice while its first bundle is in flight.
    assert len(data_blocks) == len(set(data_blocks))
