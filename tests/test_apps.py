"""Per-application tests: correctness against reference implementations."""

import pytest

from repro.apps import APP_CLASSES, make_app
from repro.apps.bfs import BfsApp
from repro.apps.hash_table import HashTableApp
from repro.apps.linked_list import LinkedListApp
from repro.apps.pagerank import PageRankApp
from repro.apps.spmv import SpmvApp
from repro.apps.sssp import SsspApp
from repro.apps.tree import TreeApp
from repro.apps.wcc import WccApp
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app
from repro.workloads.graphs import Graph, chain_graph


CFG = tiny_config(Design.B)


def run_tiny(app):
    return run_app(app, CFG, verify=True)


class TestLinkedList:
    def test_executes_all_visits(self):
        app = LinkedListApp(n_lists=64, n_queries=50, max_nodes=16, seed=3)
        result = run_tiny(app)
        assert app.visits_done == sum(app.lengths[q] for q in app.queries)
        assert result.metrics.tasks_executed == app.visits_done

    def test_no_communication_without_balancing(self):
        app = LinkedListApp(n_lists=64, n_queries=50, max_nodes=16, seed=3)
        result = run_tiny(app)
        assert result.metrics.task_messages == 0

    def test_list_count_rounds_to_units(self):
        app = LinkedListApp(n_lists=30, n_queries=10, max_nodes=16, seed=3)
        run_tiny(app)
        assert app.n_lists % 16 == 0

    def test_oversized_lists_rejected(self):
        with pytest.raises(ValueError):
            LinkedListApp(max_nodes=1000)


class TestHashTable:
    def test_all_queries_hit(self):
        app = HashTableApp(n_buckets=64, n_keys=256, n_queries=80, seed=3)
        run_tiny(app)
        assert app.hits == len(app.queries)

    def test_probe_counts_match_chain_positions(self):
        app = HashTableApp(n_buckets=64, n_keys=256, n_queries=80, seed=3)
        run_tiny(app)
        assert app.verify()

    def test_no_communication_without_balancing(self):
        app = HashTableApp(n_buckets=64, n_keys=256, n_queries=80, seed=3)
        result = run_tiny(app)
        assert result.metrics.task_messages == 0


class TestTree:
    def test_all_queries_found(self):
        app = TreeApp(n_nodes=255, n_queries=64, seed=3)
        run_tiny(app)
        assert app.found == len(app.queries)

    def test_visits_match_search_paths(self):
        app = TreeApp(n_nodes=255, n_queries=64, seed=3)
        run_tiny(app)
        expected = sum(len(app.tree.search_path(q)) for q in app.queries)
        assert app.nodes_visited == expected

    def test_tree_traversal_communicates(self):
        app = TreeApp(n_nodes=255, n_queries=64, seed=3)
        result = run_tiny(app)
        assert result.metrics.task_messages > 0

    def test_random_tree_variant(self):
        app = TreeApp(n_nodes=200, n_queries=32, balanced=False, seed=3)
        assert run_tiny(app).metrics.tasks_executed == app.nodes_visited


class TestSpmv:
    def test_result_matches_reference(self):
        app = SpmvApp(n_rows=128, n_cols=128, avg_nnz=4, seed=3)
        run_tiny(app)
        reference = app.matrix.multiply(app.x)
        assert all(abs(a - b) < 1e-9 for a, b in zip(app.y, reference))

    def test_one_task_per_row(self):
        app = SpmvApp(n_rows=128, n_cols=128, avg_nnz=4, seed=3)
        result = run_tiny(app)
        assert result.metrics.tasks_executed == 128


class TestBfs:
    def test_distances_match_reference(self):
        app = BfsApp(n_vertices=256, avg_degree=4, seed=3)
        run_tiny(app)
        assert app.dist == app.reference_distances()

    def test_chain_graph_depth(self):
        app = BfsApp(graph=chain_graph(20).undirected(), seed=3)
        run_tiny(app)
        assert app.dist[19] == 19

    def test_epochs_are_bfs_levels(self):
        app = BfsApp(graph=chain_graph(10).undirected(), seed=3)
        result = run_tiny(app)
        assert result.system.tracker.epoch >= 9


class TestSssp:
    def test_distances_match_dijkstra(self):
        app = SsspApp(n_vertices=256, avg_degree=4, seed=3)
        run_tiny(app)
        assert app.dist == app.reference_distances()

    def test_unreachable_stay_infinite(self):
        g = Graph(4, [[1], [], [3], []],
                  weights=[[2], [], [5], []])
        app = SsspApp(graph=g, source=0, seed=3)
        run_tiny(app)
        assert app.dist[1] == 2
        assert app.dist[2] == float("inf")


class TestPageRank:
    def test_ranks_match_reference(self):
        app = PageRankApp(n_vertices=128, avg_degree=4, iterations=3, seed=3)
        run_tiny(app)
        reference = app.reference_ranks()
        assert all(abs(a - b) < 1e-9 for a, b in zip(app.rank, reference))

    def test_rank_mass_roughly_conserved(self):
        app = PageRankApp(n_vertices=128, avg_degree=4, iterations=2, seed=3)
        run_tiny(app)
        assert 0.0 < sum(app.rank) <= 1.0 + 1e-9

    def test_iterations_scale_epochs(self):
        app = PageRankApp(n_vertices=64, avg_degree=4, iterations=2, seed=3)
        result = run_tiny(app)
        # Two iterations = contribute/apply x2 = at least 3 epoch advances.
        assert result.system.tracker.epoch >= 3


class TestWcc:
    def test_labels_match_union_find(self):
        app = WccApp(n_vertices=256, avg_degree=3, seed=3)
        run_tiny(app)
        assert app.labels == app.reference_labels()

    def test_isolated_vertices_keep_own_label(self):
        g = Graph(5, [[1], [0], [], [], []]).undirected()
        app = WccApp(graph=g, seed=3)
        run_tiny(app)
        assert app.labels == [0, 0, 2, 3, 4]


class TestFactory:
    def test_all_names_construct(self):
        for name in APP_CLASSES:
            app = make_app(name, scale=0.05)
            assert app.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_app("sort")

    def test_scale_shrinks_sizes(self):
        big = make_app("tree", scale=1.0)
        small = make_app("tree", scale=0.1)
        assert small.n_nodes < big.n_nodes


class TestPartitionLayouts:
    @pytest.mark.parametrize("layout", ["blocked", "striped"])
    def test_bfs_correct_under_both_layouts(self, layout):
        app = BfsApp(n_vertices=256, avg_degree=4, seed=3, layout=layout)
        run_tiny(app)
        assert app.dist == app.reference_distances()

    @pytest.mark.parametrize("layout", ["blocked", "striped"])
    def test_pr_correct_under_both_layouts(self, layout):
        app = PageRankApp(n_vertices=128, avg_degree=4, iterations=2,
                          seed=3, layout=layout)
        run_tiny(app)
        reference = app.reference_ranks()
        assert all(abs(a - b) < 1e-9 for a, b in zip(app.rank, reference))

    def test_striping_scatters_consecutive_vertices(self):
        from repro.config import Design, tiny_config
        from repro.runtime.runner import build_system

        app = WccApp(n_vertices=256, avg_degree=4, seed=3,
                     layout="striped")
        system = build_system(tiny_config(Design.B))
        app.attach(system)
        homes = [system.partition.home_unit(app.vertices, v)
                 for v in range(32)]
        # Round-robin: consecutive vertices live in consecutive units.
        assert homes[:16] == list(range(16))
        assert homes[16] == 0
