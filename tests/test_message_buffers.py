"""Tests for the bridge SRAM message buffers."""

import pytest

from repro.messages import MessageBuffer, TaskMessage
from repro.runtime.task import Task


def task_msg(i=0):
    return TaskMessage(
        src_unit=0, dst_unit=1,
        task=Task(func="f", ts=0, data_addr=i * 64),
    )


def test_push_pop_fifo():
    buf = MessageBuffer("b", 1024)
    msgs = [task_msg(i) for i in range(4)]
    for m in msgs:
        assert buf.push(m)
    assert [buf.pop() for _ in range(4)] == msgs
    assert buf.pop() is None


def test_capacity_enforced():
    buf = MessageBuffer("b", 128)
    assert buf.push(task_msg(0))
    assert buf.push(task_msg(1))
    assert not buf.push(task_msg(2))
    assert buf.used_bytes == 128
    assert buf.free_bytes == 0


def test_pop_up_to_respects_budget():
    buf = MessageBuffer("b", 4096)
    for i in range(10):
        buf.push(task_msg(i))
    got = buf.pop_up_to(256)
    assert len(got) == 4
    assert buf.used_bytes == 6 * 64


def test_pop_up_to_moves_oversized_head_alone():
    from repro.messages import DataMessage

    buf = MessageBuffer("b", 4096)
    big = DataMessage(src_unit=0, dst_unit=1, block_id=0, block_bytes=1024)
    buf.push(big)
    buf.push(task_msg(1))
    got = buf.pop_up_to(256)
    assert got == [big]


def test_high_water():
    buf = MessageBuffer("b", 1024)
    for i in range(3):
        buf.push(task_msg(i))
    buf.pop()
    assert buf.high_water == 192


def test_invalid_capacity():
    with pytest.raises(ValueError):
        MessageBuffer("b", 0)
