"""Tests for the bridge SRAM message buffers."""

import pytest

from repro.messages import MessageBuffer, TaskMessage
from repro.runtime.task import Task


def task_msg(i=0):
    return TaskMessage(
        src_unit=0, dst_unit=1,
        task=Task(func="f", ts=0, data_addr=i * 64),
    )


def test_push_pop_fifo():
    buf = MessageBuffer("b", 1024)
    msgs = [task_msg(i) for i in range(4)]
    for m in msgs:
        assert buf.push(m)
    assert [buf.pop() for _ in range(4)] == msgs
    assert buf.pop() is None


def test_capacity_enforced():
    buf = MessageBuffer("b", 128)
    assert buf.push(task_msg(0))
    assert buf.push(task_msg(1))
    assert not buf.push(task_msg(2))
    assert buf.used_bytes == 128
    assert buf.free_bytes == 0


def test_pop_up_to_respects_budget():
    buf = MessageBuffer("b", 4096)
    for i in range(10):
        buf.push(task_msg(i))
    got = buf.pop_up_to(256)
    assert len(got) == 4
    assert buf.used_bytes == 6 * 64


def test_pop_up_to_moves_oversized_head_alone():
    from repro.messages import DataMessage

    buf = MessageBuffer("b", 4096)
    big = DataMessage(src_unit=0, dst_unit=1, block_id=0, block_bytes=1024)
    buf.push(big)
    buf.push(task_msg(1))
    got = buf.pop_up_to(256)
    assert got == [big]


def test_high_water():
    buf = MessageBuffer("b", 1024)
    for i in range(3):
        buf.push(task_msg(i))
    buf.pop()
    assert buf.high_water == 192


def test_invalid_capacity():
    with pytest.raises(ValueError):
        MessageBuffer("b", 0)


def _oversize_msg(block_bytes=2048):
    from repro.messages import DataMessage

    return DataMessage(
        src_unit=0, dst_unit=1, block_id=0, block_bytes=block_bytes
    )


def test_oversize_message_admitted_into_empty_buffer():
    """A message larger than the whole buffer is a 64 B sub-message
    train; it must be able to traverse the hop alone (buffers.py
    store-and-forward minimum)."""
    buf = MessageBuffer("b", 128)
    big = _oversize_msg()  # 2112 wire bytes >> 128
    assert big.wire_bytes > buf.capacity_bytes
    assert buf.push(big)
    assert buf.used_bytes == big.wire_bytes  # accounting stays truthful
    assert buf.pop() is big
    assert buf.used_bytes == 0


def test_oversize_message_rejected_when_buffer_occupied():
    buf = MessageBuffer("b", 128)
    assert buf.push(task_msg(0))
    big = _oversize_msg()
    assert not buf.push(big)
    assert buf.dropped_messages == 1
    assert buf.dropped_bytes == big.wire_bytes


def test_rejection_counters():
    buf = MessageBuffer("b", 128)
    assert buf.push(task_msg(0))
    assert buf.push(task_msg(1))
    assert buf.dropped_messages == 0 and buf.dropped_bytes == 0
    rejected = task_msg(2)
    assert not buf.push(rejected)
    assert not buf.push(rejected)
    assert buf.dropped_messages == 2
    assert buf.dropped_bytes == 2 * rejected.wire_bytes


def test_force_push_ignores_capacity_but_keeps_accounting():
    buf = MessageBuffer("b", 128)
    msgs = [task_msg(i) for i in range(3)]
    assert buf.push(msgs[0])
    assert buf.push(msgs[1])
    assert not buf.push(msgs[2])
    buf.force_push(msgs[2])  # soft overflow: admitted anyway
    assert buf.used_bytes == 192 > buf.capacity_bytes
    assert buf.high_water == 192
    assert [buf.pop() for _ in range(3)] == msgs
    assert buf.used_bytes == 0


def test_pending_messages_snapshot():
    buf = MessageBuffer("b", 1024)
    msgs = [task_msg(i) for i in range(3)]
    for m in msgs:
        buf.push(m)
    snap = buf.pending_messages()
    assert snap == tuple(msgs)
    buf.pop()
    assert snap == tuple(msgs)  # a copy, not a live view
    assert buf.pending_messages() == tuple(msgs[1:])
