"""Tests for the reserved-address DDR command codec (Section V-B)."""

import pytest

from repro.dram import (
    BridgeOp,
    CommandCodec,
    DDRCommand,
    EncodedCommand,
    R_COL,
    R_ROW,
)


@pytest.mark.parametrize("op", list(BridgeOp))
def test_round_trip(op):
    encoded = CommandCodec.encode(op, budget=37)
    decoded = CommandCodec.decode(encoded)
    assert decoded.op is op
    if op is BridgeOp.SCHEDULE:
        assert decoded.budget == 37


def test_state_gather_is_activate_to_reserved_row():
    enc = CommandCodec.encode(BridgeOp.STATE_GATHER)
    assert enc.ddr is DDRCommand.ACTIVATE
    assert enc.row == R_ROW


def test_gather_scatter_use_reserved_column():
    g = CommandCodec.encode(BridgeOp.GATHER)
    s = CommandCodec.encode(BridgeOp.SCATTER)
    assert g.ddr is DDRCommand.READ and g.col == R_COL
    assert s.ddr is DDRCommand.WRITE and s.col == R_COL


def test_schedule_budget_encoding():
    for budget in (0, 1, 255, 65535):
        enc = CommandCodec.encode(BridgeOp.SCHEDULE, budget=budget)
        assert CommandCodec.decode(enc).budget == budget


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        CommandCodec.encode(BridgeOp.SCHEDULE, budget=-1)


def test_normal_commands_do_not_decode_as_bridge_ops():
    normal = EncodedCommand(DDRCommand.READ, col=17)
    assert not CommandCodec.decode(normal).is_bridge_command
    normal_act = EncodedCommand(DDRCommand.ACTIVATE, row=1234)
    assert not CommandCodec.decode(normal_act).is_bridge_command
