"""Snapshot/restore subsystem: the run-through equivalence oracle.

The contract under test (docs/ARCHITECTURE.md, "State inventory &
checkpointing"): pausing any run at any cycle, freezing it with
:func:`repro.state.snapshot.snapshot`, and finishing from the restored
clone is *bit-identical* to never having paused -- same makespan, same
event counts, every metric -- across the full app x design matrix,
plain and sanitized, serial and sharded.  A snapshot is also re-forkable
(each fork is independent) and refuses unsnapshottable state loudly.
"""

import dataclasses
import subprocess
import sys
from pathlib import Path

import pytest

from repro.apps import make_app
from repro.config import Design, scaled_config, tiny_config
from repro.runtime.runner import build_system, run_app
from repro.state.snapshot import (
    SnapshotError,
    restore,
    run_app_with_snapshot,
    snapshot,
    verify_inventory,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

APPS = ["ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", "wcc"]
NDP_DESIGNS = [Design.C, Design.B, Design.W, Design.O]


def _metrics(result):
    return dataclasses.asdict(result.metrics)


def _mid_run(app, design, scale=0.1, seed=7):
    """Baseline run plus a mid-makespan pause cycle for the same cell."""
    cfg = tiny_config(design)
    base = run_app(make_app(app, scale=scale, seed=seed), cfg)
    return cfg, base, max(1, base.metrics.makespan // 2)


# ----------------------------------------------------------------------
# the oracle: snapshot+resume == run-through, full matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("design", NDP_DESIGNS)
@pytest.mark.parametrize("app", APPS)
def test_snapshot_resume_matches_run_through(app, design):
    cfg, base, at = _mid_run(app, design)
    forked, snap = run_app_with_snapshot(
        make_app(app, scale=0.1, seed=7), cfg, snapshot_at=at
    )
    assert _metrics(forked) == _metrics(base)
    assert snap.meta["cycle"] == at
    assert snap.meta["version"] == 1


def test_snapshot_resume_under_sanitizer(monkeypatch):
    """PR-2 sanitizer + PR-5 auditor wrappers survive the deep clone."""
    monkeypatch.setenv("NDPBRIDGE_SANITIZE", "1")
    cfg, base, at = _mid_run("tree", Design.O)
    forked, snap = run_app_with_snapshot(
        make_app("tree", scale=0.1, seed=7), cfg, snapshot_at=at
    )
    assert _metrics(forked) == _metrics(base)
    assert snap.meta["sanitize"] is True
    # The auditor's conservation counters are part of the manifest.
    assert "auditor" in snap.manifest()


def test_snapshot_is_reforkable():
    """One snapshot, two forks: both finish identically, independently."""
    cfg, base, at = _mid_run("bfs", Design.B)
    app = make_app("bfs", scale=0.1, seed=7)
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    system.start().advance(until=at)
    snap = snapshot(system, app)

    results = []
    for _ in range(2):
        fsys, fapp = restore(snap)
        fsys.finish()
        assert fapp.verify()
        results.append(fsys.makespan)
    assert results[0] == results[1] == base.metrics.makespan
    # ...and the paused original still finishes on its own.
    system.finish()
    assert system.makespan == base.metrics.makespan


def test_fork_is_independent_of_original():
    """Running a fork to completion must not advance the original."""
    cfg, _base, at = _mid_run("ll", Design.W)
    app = make_app("ll", scale=0.1, seed=7)
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    system.start().advance(until=at)
    paused_events = system.sim.events_processed
    snap = snapshot(system, app)
    fsys, _fapp = restore(snap)
    fsys.finish()
    assert system.sim.events_processed == paused_events
    assert fsys.sim.events_processed > paused_events


def test_manifest_is_deterministic():
    """Two identical runs paused at the same cycle -> same digest."""
    digests = []
    for _ in range(2):
        cfg = tiny_config(Design.O)
        app = make_app("tree", scale=0.1, seed=7)
        system = build_system(cfg)
        app.attach(system)
        app.seed_tasks(system)
        system.start().advance(until=5000)
        digests.append(snapshot(system, app).manifest_digest())
        system.finish()
    assert digests[0] == digests[1]


def test_manifest_encodes_queue_symbolically():
    cfg = tiny_config(Design.O)
    app = make_app("tree", scale=0.1, seed=7)
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    system.start().advance(until=5000)
    manifest = snapshot(system, app).manifest()
    assert len(manifest["queue"]) > 0
    # Every queue entry names its owner through the component registry
    # as [time, seq, "owner-path.method"], never a raw object id.
    for _time, _seq, desc in manifest["queue"]:
        assert "0x" not in desc
    system.finish()


def test_unsnapshottable_attribute_raises(tmp_path):
    cfg = tiny_config(Design.B)
    app = make_app("ll", scale=0.1, seed=7)
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    system.start().advance(until=1000)
    log = tmp_path / "trace.log"
    system.units[0].trace_fh = log.open("w")
    try:
        with pytest.raises(SnapshotError):
            snapshot(system, app)
    finally:
        system.units[0].trace_fh.close()


def test_verify_inventory_clean_on_live_system():
    """Every live attribute is statically declared (ST001's promise)."""
    from repro.state import build_tree_inventory

    inventory = build_tree_inventory([REPO_ROOT / "src"])
    cfg = tiny_config(Design.O)
    app = make_app("tree", scale=0.1, seed=7)
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    system.start().advance(until=5000)
    problems = verify_inventory(system, inventory)
    assert problems == [], "\n".join(problems)
    system.finish()


def test_run_app_does_not_import_snapshot_machinery():
    """Zero fast-path cost: a plain run never loads repro.state."""
    probe = (
        "import sys\n"
        "from repro import Design, make_app, run_app\n"
        "from repro.config import tiny_config\n"
        "run_app(make_app('ll', scale=0.05, seed=1), "
        "tiny_config(Design.B))\n"
        "assert not any(m.startswith('repro.state') for m in sys.modules),"
        " 'plain run imported snapshot machinery'\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# sharded: barrier snapshots
# ----------------------------------------------------------------------
def test_sharded_barrier_snapshot_resume_matches_run_through():
    from repro.runtime.shards import run_app_sharded, resolve_shards
    from repro.sim.partition import plan_partition
    from repro.state.snapshot import BarrierSnapshotter, resume_app_sharded

    cfg = scaled_config(128, Design.O)
    base = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2,
        verify=False, parallel=False,
    )
    plan = plan_partition(cfg, resolve_shards(cfg, 2))
    snapper = BarrierSnapshotter(
        at_barrier=3, app="tree", scale=0.1, seed=7, verify=False,
        config=cfg, plan=plan,
    )
    hooked = run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2,
        verify=False, parallel=False, barrier_hook=snapper,
    )
    # Observation only: the hook must not perturb the hooked run itself.
    assert hooked.metrics.as_dict() == base.metrics.as_dict()
    assert snapper.snapshot is not None

    resumed = resume_app_sharded(snapper.snapshot)
    assert resumed.metrics.as_dict() == base.metrics.as_dict()
    assert resumed.system.payloads == base.system.payloads
    assert resumed.system.windows == base.system.windows


def test_sharded_snapshot_is_reforkable():
    from repro.runtime.shards import run_app_sharded, resolve_shards
    from repro.sim.partition import plan_partition
    from repro.state.snapshot import BarrierSnapshotter, resume_app_sharded

    cfg = scaled_config(128, Design.O)
    plan = plan_partition(cfg, resolve_shards(cfg, 2))
    snapper = BarrierSnapshotter(
        at_barrier=2, app="tree", scale=0.1, seed=7, verify=False,
        config=cfg, plan=plan,
    )
    run_app_sharded(
        "tree", cfg, scale=0.1, seed=7, shards=2,
        verify=False, parallel=False, barrier_hook=snapper,
    )
    first = resume_app_sharded(snapper.snapshot)
    second = resume_app_sharded(snapper.snapshot)
    assert first.metrics.as_dict() == second.metrics.as_dict()


# ----------------------------------------------------------------------
# exec integration: snapshot-resume cells
# ----------------------------------------------------------------------
def test_exec_snapshot_cell_matches_plain_cell():
    from repro.exec.runner import CellRequest, execute_cells

    cfg = tiny_config(Design.O)
    plain = CellRequest(
        app="tree", config=cfg, scale=0.1, seed=7, verify=True,
    )
    snap = CellRequest(
        app="tree", config=cfg, scale=0.1, seed=7, verify=True,
        snapshot_at=5000,
    )
    assert plain.key != snap.key  # never alias the plain cache entry
    results = execute_cells([plain, snap], jobs=1, cache=None)
    assert dataclasses.asdict(results[0]) == dataclasses.asdict(results[1])


def test_exec_snapshot_cell_rejects_sharded():
    from repro.exec.runner import CellRequest, _execute_cell

    cfg = scaled_config(128, Design.O)
    request = CellRequest(
        app="tree", config=cfg, scale=0.1, seed=7, shards=2,
        snapshot_at=5000,
    )
    with pytest.raises(ValueError, match="serial"):
        _execute_cell(request)
