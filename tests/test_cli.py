"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_run_command(capsys):
    rc = main([
        "run", "--app", "ht", "--design", "B",
        "--units", "64", "--scale", "0.05", "--seed", "3",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ht" in out
    assert "makespan" in out
    assert "energy" in out


def test_matrix_command(capsys):
    rc = main([
        "matrix", "--apps", "ht", "--designs", "C,B",
        "--units", "64", "--scale", "0.05",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "geomean" in out
    assert "speedup over design C" in out


def test_matrix_json(capsys):
    rc = main([
        "matrix", "--apps", "ht", "--designs", "C,B",
        "--units", "64", "--scale", "0.05", "--json",
    ])
    assert rc == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert "ht" in payload and "B" in payload["ht"]


def test_designs_and_apps_lists(capsys):
    assert main(["designs"]) == 0
    out = capsys.readouterr().out
    assert "O" in out
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "tree" in out


def test_unknown_design_rejected():
    with pytest.raises(SystemExit):
        main(["matrix", "--designs", "Z", "--apps", "ht"])


def test_unknown_app_rejected():
    with pytest.raises(SystemExit):
        main(["matrix", "--designs", "C", "--apps", "sorting"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--param", "i_state", "--values", "1000,4000",
        "--apps", "ht", "--units", "64", "--scale", "0.05",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "i_state sweep" in out
    assert "i_state=1000" in out and "i_state=4000" in out


def test_sweep_rejects_unknown_param():
    import pytest as _pytest

    with _pytest.raises(SystemExit):
        main(["sweep", "--param", "bogus", "--values", "1"])


def test_invalid_units_friendly_error():
    with pytest.raises(SystemExit, match="invalid --units"):
        main(["run", "--app", "ht", "--design", "B", "--units", "10",
              "--scale", "0.05"])


def test_apps_lists_extensions(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    assert "join (extension)" in out
    assert "tc (extension)" in out
