"""Tests for the named dataset registry."""

import pytest

from repro.workloads.datasets import dataset_names, load_dataset
from repro.workloads.graphs import Graph
from repro.workloads.matrices import SparseMatrix


def test_names_by_kind():
    assert "social" in dataset_names("graph")
    assert "scalefree-matrix" in dataset_names("matrix")
    assert "social" not in dataset_names("matrix")


def test_graph_datasets_build():
    for name in dataset_names("graph"):
        g = load_dataset(name, scale=0.25, seed=3)
        assert isinstance(g, Graph)
        assert g.n >= 16
        assert g.m > 0


def test_matrix_datasets_build():
    for name in dataset_names("matrix"):
        m = load_dataset(name, scale=0.25, seed=3)
        assert isinstance(m, SparseMatrix)
        assert m.nnz > 0


def test_deterministic():
    a = load_dataset("web", scale=0.25, seed=9)
    b = load_dataset("web", scale=0.25, seed=9)
    assert a.adj == b.adj


def test_seed_matters():
    a = load_dataset("road", scale=0.25, seed=1)
    b = load_dataset("road", scale=0.25, seed=2)
    assert a.adj != b.adj


def test_skew_profiles_differ():
    web = load_dataset("web", scale=1.0, seed=5)
    road = load_dataset("road", scale=1.0, seed=5)
    web_max = max(web.out_degree(v) for v in range(web.n))
    road_max = max(road.out_degree(v) for v in range(road.n))
    assert web_max / (web.m / web.n) > road_max / (road.m / road.n)


def test_unknown_name():
    with pytest.raises(KeyError):
        load_dataset("twitter")


def test_road_is_weighted():
    g = load_dataset("road", scale=0.25, seed=1)
    weights = [g.weight(v, i) for v in range(g.n)
               for i in range(g.out_degree(v))]
    assert any(w > 1 for w in weights)
