"""Tests for the NDP unit model: queues, mailbox stalls, metadata."""

import pytest

from repro.config import Design, tiny_config
from repro.messages import DataMessage, TaskMessage
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

from .conftest import noop_task


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


class TestLocalExecution:
    def test_local_task_executes(self, tiny_system_b):
        sys_ = tiny_system_b
        sys_.seed_task(noop_task(bank_addr(sys_, 0)))
        sys_.run()
        assert sys_.units[0].tasks_executed == 1
        assert sys_.units[0].busy_cycles > 0
        assert sys_.tracker.finished

    def test_task_routed_to_home_unit(self, tiny_system_b):
        sys_ = tiny_system_b
        sys_.seed_task(noop_task(bank_addr(sys_, 5)))
        sys_.run()
        assert sys_.units[5].tasks_executed == 1
        assert sys_.units[0].tasks_executed == 0

    def test_child_task_crosses_banks(self, tiny_system_b):
        sys_ = tiny_system_b
        hops = []

        def hop(ctx, task):
            hops.append(ctx.unit_id)
            if len(hops) < 3:
                target = bank_addr(sys_, len(hops) * 3)
                ctx.enqueue_task("hop", task.ts, target, workload=5)

        sys_.registry.register("hop", hop)
        sys_.seed_task(Task(func="hop", ts=0,
                            data_addr=bank_addr(sys_, 0), workload=5))
        sys_.run()
        assert hops == [0, 3, 6]

    def test_remote_child_takes_longer_than_local(self):
        def run(dst_unit):
            system = NDPSystem(tiny_config(Design.B))

            def spawn_once(ctx, task):
                if task.args:
                    ctx.enqueue_task(
                        "spawn_once", task.ts,
                        bank_addr(system, dst_unit), workload=10,
                    )

            system.registry.register("spawn_once", spawn_once)
            system.seed_task(Task(
                func="spawn_once", ts=0, data_addr=bank_addr(system, 0),
                workload=10, args=(1,),
            ))
            system.run()
            return system.makespan

        assert run(dst_unit=1) > run(dst_unit=0)


class TestEpochs:
    def test_future_tasks_wait_for_epoch(self, tiny_system_b):
        sys_ = tiny_system_b
        order = []
        sys_.registry.register(
            "mark", lambda ctx, task: order.append(task.args[0])
        )
        sys_.seed_task(Task(func="mark", ts=1,
                            data_addr=bank_addr(sys_, 0), args=("late",)))
        sys_.seed_task(Task(func="mark", ts=0,
                            data_addr=bank_addr(sys_, 1), args=("early",)))
        sys_.run()
        assert order == ["early", "late"]

    def test_epoch_barrier_across_units(self, tiny_system_b):
        sys_ = tiny_system_b
        events = []

        def phase0(ctx, task):
            events.append(("p0", ctx.unit_id))
            ctx.enqueue_task("phase1", task.ts + 1, task.data_addr)

        sys_.registry.register("phase0", phase0)
        sys_.registry.register(
            "phase1", lambda ctx, task: events.append(("p1", ctx.unit_id))
        )
        for u in (0, 7, 15):
            sys_.seed_task(Task(
                func="phase0", ts=0, data_addr=bank_addr(sys_, u),
                workload=20 * (u + 1),
            ))
        sys_.run()
        phases = [e[0] for e in events]
        assert phases == ["p0", "p0", "p0", "p1", "p1", "p1"]


class TestMailboxStall:
    def test_core_blocks_when_mailbox_full(self):
        from dataclasses import replace

        # Design C: the host polls on a fixed interval, so a burst of
        # remote children reliably overflows a shrunken mailbox (bridges
        # would gather reactively and mask the stall).
        cfg = tiny_config(Design.C)
        cfg = cfg.replace(unit_mem=replace(cfg.unit_mem, mailbox_bytes=256))
        system = NDPSystem(cfg)

        def burst(ctx, task):
            for i in range(1, 9):
                ctx.enqueue_task("sink", task.ts,
                                 bank_addr(system, i), workload=5)

        system.registry.register("burst", burst)
        system.registry.register("sink", lambda ctx, task: None)
        system.seed_task(Task(func="burst", ts=0,
                              data_addr=bank_addr(system, 0)))
        system.run()
        assert system.stats.sum_counters(".mailbox_stall_events") >= 1
        assert sum(u.tasks_executed for u in system.units) == 9


class TestMetadataPaths:
    def test_schedule_lends_block_and_sets_islent(self, tiny_system_o):
        sys_ = tiny_system_o
        unit = sys_.units[0]
        for i in range(20):
            task = noop_task(bank_addr(sys_, 0, offset=i * 64), workload=50)
            sys_.tracker.task_created(0)
            unit.accept_task(task)
        unit.handle_schedule(budget=100)
        # isLent commits when the bridge gathers the bundle; until then
        # the block is held in the lend-pending set.
        assert len(unit._lend_pending) + unit.islent.lent_count >= 1
        # The lend produced at least one data message (it may already have
        # been gathered by a reactively triggered bridge round).
        assert sys_.tracker.data_messages_in_flight >= 1

    def test_borrowed_block_accepts_tasks(self, tiny_system_o):
        sys_ = tiny_system_o
        receiver = sys_.units[3]
        block = 0  # home unit 0
        msg = DataMessage(
            src_unit=0, dst_unit=3, block_id=block, block_bytes=256,
            home_unit=0,
        )
        sys_.tracker.message_departed(is_data=True)
        if sys_.auditor is not None:
            # White-box injection: tell the lifecycle auditor the message
            # exists, or it would (correctly) flag a phantom delivery.
            sys_.auditor.on_created(msg)
        receiver.deliver_data_message(msg)
        assert receiver.borrowed.contains(block)
        assert receiver.holds_block(block)

    def test_home_unit_without_block_does_not_hold(self, tiny_system_o):
        sys_ = tiny_system_o
        u = sys_.units[0]
        u.islent.set_lent(u._base_block)
        assert not u.holds_block(u._base_block)
        u.islent.clear_lent(u._base_block)
        assert u.holds_block(u._base_block)
