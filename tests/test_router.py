"""Direct unit tests of the level-1 message router."""

import pytest

from repro.bridge.level1 import UP, Level1Bridge
from repro.config import Design, tiny_config
from repro.messages import DataMessage, TaskMessage
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


@pytest.fixture
def system():
    sys_ = NDPSystem(tiny_config(Design.O))
    sys_.registry.register("noop", lambda ctx, task: None)
    return sys_


@pytest.fixture
def bridge(system):
    return system.fabric.rank_bridges[0]


def task_msg(system, dst_unit, bounces=0, lb=False):
    addr = dst_unit * system.addr_map.bank_bytes + 512
    return TaskMessage(
        src_unit=0, dst_unit=dst_unit,
        task=Task(func="noop", ts=0, data_addr=addr, workload=4),
        bounces=bounces, lb_assigned=lb,
    )


def test_task_routes_to_home_scatter_buffer(system, bridge):
    msg = task_msg(system, dst_unit=5)
    system.tracker.task_created(0)
    system.tracker.message_departed(is_data=False)
    bridge._route_one(msg)
    assert len(bridge.scatter_buffers[5]) == 1
    assert 5 in bridge._scatter_pending


def test_task_follows_borrow_entry(system, bridge):
    msg = task_msg(system, dst_unit=5)
    block = msg.task.data_addr // 256
    bridge.borrowed.insert(block, 11, 5)
    bridge._route_one(msg)
    assert len(bridge.scatter_buffers[11]) == 1
    assert msg.dst_unit == 11


def test_returning_data_clears_entry_and_goes_home(system, bridge):
    block = (3 * system.addr_map.bank_bytes + 256) // 256
    bridge.borrowed.insert(block, 9, 3)
    msg = DataMessage(
        src_unit=9, dst_unit=3, block_id=block, block_bytes=256,
        returning=True, home_unit=3,
    )
    bridge._route_one(msg)
    assert bridge.borrowed.lookup(block) is None
    assert len(bridge.scatter_buffers[3]) == 1


def test_lb_pending_uses_assignment_queue(system, bridge):
    from repro.balance.policy import SchedulePlan

    giver = system.units[4]
    plan = SchedulePlan(giver=4, budget=50, receivers=[(12, 50)])
    bridge._issue_schedule(plan)
    block = (4 * system.addr_map.bank_bytes) // 256
    msg = DataMessage(
        src_unit=4, dst_unit=None, block_id=block, block_bytes=256,
        lb_pending=True, bundle_workload=50, home_unit=4,
    )
    bridge._route_data(msg)
    assert msg.dst_unit == 12
    assert bridge.borrowed.lookup(block).value == 12
    # The home's isLent committed atomically with the entry.
    assert system.units[4].islent.is_lent(block)


def test_lb_pending_without_assignment_falls_back(system, bridge):
    # Populate a snapshot so the fallback receiver can be chosen.
    bridge.last_snapshot = {
        u.unit_id: u.collect_state() for u in bridge.units
    }
    block = (4 * system.addr_map.bank_bytes) // 256
    msg = DataMessage(
        src_unit=4, dst_unit=None, block_id=block, block_bytes=256,
        lb_pending=True, bundle_workload=10, home_unit=4,
    )
    bridge._route_data(msg)
    assert msg.dst_unit is not None and msg.dst_unit != UP
    assert bridge.borrowed.lookup(block) is not None


def test_bounced_task_without_entry_goes_home_when_no_l2(system, bridge):
    assert not system.has_level2
    msg = task_msg(system, dst_unit=2, bounces=1)
    bridge._route_one(msg)
    # Single-rank system: nowhere to go but back to the home unit.
    assert len(bridge.scatter_buffers[2]) == 1


def test_backup_preserves_per_destination_fifo(system, bridge):
    # Fill unit 7's scatter buffer to capacity (1 kB = 16 task frames).
    for _ in range(16):
        bridge._route_one(task_msg(system, dst_unit=7))
    overflow = task_msg(system, dst_unit=7)
    bridge._route_one(overflow)
    assert bridge._backup_bytes > 0
    # Another message for 7 must also queue behind it, even though the
    # scatter buffer may have space later.
    second = task_msg(system, dst_unit=7)
    bridge._route_one(second)
    assert bridge._backup[7][0] is overflow
    assert bridge._backup[7][1] is second
    # But a message for another unit flows directly.
    bridge._route_one(task_msg(system, dst_unit=3))
    assert len(bridge.scatter_buffers[3]) == 1
