"""End-to-end integration: every design runs every app correctly.

These are the heavyweight tests: each (design, app) pair builds a full
16-unit system, runs to completion, and checks the distributed result
against the app's reference implementation.  Workload conservation and
determinism invariants are also verified here.
"""

import pytest

from repro.apps import APP_CLASSES, make_app
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app

ALL_DESIGNS = [Design.C, Design.B, Design.W, Design.O, Design.R, Design.H]
ALL_APPS = sorted(APP_CLASSES)


@pytest.mark.parametrize("design", ALL_DESIGNS)
@pytest.mark.parametrize("app_name", ALL_APPS)
def test_design_app_matrix(design, app_name):
    """The full Table-II matrix (plus H and R) at tiny scale, verified."""
    app = make_app(app_name, scale=0.03, seed=5)
    result = run_app(app, tiny_config(design), verify=True)
    assert result.metrics.makespan > 0
    assert result.metrics.tasks_executed > 0


@pytest.mark.parametrize("design", [Design.C, Design.B, Design.O])
def test_task_conservation(design):
    """Every created task completes exactly once."""
    app = make_app("tree", scale=0.05, seed=9)
    result = run_app(app, tiny_config(design))
    tr = result.system.tracker
    assert tr.total_created == tr.total_completed
    assert tr.task_messages_in_flight == 0
    assert tr.data_messages_in_flight == 0


@pytest.mark.parametrize("design", [Design.C, Design.B, Design.W, Design.O])
def test_determinism(design):
    """Same seed, same config -> identical cycle counts."""
    def one():
        app = make_app("bfs", scale=0.03, seed=11)
        return run_app(app, tiny_config(design, seed=11)).metrics.makespan

    assert one() == one()


def test_seed_changes_outcome():
    a = run_app(make_app("tree", scale=0.05, seed=1),
                tiny_config(Design.O, seed=1)).metrics.makespan
    b = run_app(make_app("tree", scale=0.05, seed=2),
                tiny_config(Design.O, seed=2)).metrics.makespan
    assert a != b


def test_same_app_results_identical_across_designs():
    """The computed answer must not depend on the hardware design."""
    ranks = []
    for design in (Design.C, Design.B, Design.O, Design.H):
        app = make_app("pr", scale=0.05, seed=7)
        run_app(app, tiny_config(design))
        ranks.append([round(r, 12) for r in app.rank])
    assert all(r == ranks[0] for r in ranks[1:])


def test_balancing_executes_tasks_off_home():
    """Design O actually runs tasks away from their data's home unit."""
    app = make_app("ll", scale=0.1, seed=3)
    result = run_app(app, tiny_config(Design.O))
    lent = result.system.stats.sum_counters(".blocks_lent")
    assert lent > 0


def test_rowclone_uses_intra_chip_path():
    app = make_app("tree", scale=0.05, seed=3)
    result = run_app(app, tiny_config(Design.R))
    copies = result.system.stats.sum_counters("rowclone.intra_chip_copies")
    assert copies > 0


def test_host_design_has_no_ndp_messages():
    app = make_app("tree", scale=0.05, seed=3)
    result = run_app(app, tiny_config(Design.H))
    assert result.metrics.task_messages == 0
    assert result.metrics.design == "H"
