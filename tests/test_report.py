"""Tests for result reporting helpers."""

import json

import pytest

from repro.analysis.metrics import RunMetrics
from repro.analysis.report import (
    energy_table,
    geomean,
    metrics_table,
    speedup_summary,
    text_table,
    to_json,
)
from repro.energy import EnergyBreakdown


def metrics(app="tree", design="O", makespan=100):
    return RunMetrics(
        design=design, app=app, makespan=makespan, avg_unit_time=40.0,
        max_unit_time=makespan, wait_fraction=0.25, total_busy_cycles=80,
        tasks_executed=10, task_messages=3, data_messages=1,
    )


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0


def test_text_table_alignment():
    out = text_table(["a", "bb"], [[1, 2.5], [100, 3.25]], title="t")
    lines = out.splitlines()
    assert lines[0] == "=== t ==="
    assert "100" in lines[4]
    assert all(len(l) == len(lines[1]) for l in lines[2:])


def test_speedup_summary_geomean_row():
    results = {
        "tree": {"C": metrics(makespan=200), "O": metrics(makespan=100)},
        "bfs": {"C": metrics("bfs", makespan=400),
                "O": metrics("bfs", makespan=100)},
    }
    out = speedup_summary(results, "C", ["C", "O"])
    assert "geomean" in out
    # geomean of 2x and 4x = 2.83x
    assert "2.83" in out


def test_metrics_table_contains_fields():
    out = metrics_table([metrics()])
    assert "tree" in out and "wait" in out


def test_to_json_round_trips():
    results = {"tree": {"O": metrics()}}
    payload = json.loads(to_json(results))
    assert payload["tree"]["O"]["makespan"] == 100


def test_energy_table_skips_missing():
    m = metrics()
    out = energy_table({"x": m})
    assert "x" not in out  # no energy attached
    m.energy = EnergyBreakdown(1e6, 2e6, 3e6, 4e6)
    out = energy_table({"x": m})
    assert "x" in out and "10.00" in out
