"""Edge-case tests for the assembled system."""

import pytest

from repro.config import Design, tiny_config
from repro.runtime.runner import VerificationError, run_app
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task
from repro.sim import SimulationError


def test_empty_workload_finishes_immediately():
    system = NDPSystem(tiny_config(Design.B))
    system.run()
    assert system.tracker.finished
    assert system.makespan == 0


def test_single_task_system():
    system = NDPSystem(tiny_config(Design.O))
    system.registry.register("t", lambda ctx, task: None)
    system.seed_task(Task(func="t", ts=0, data_addr=0, workload=7))
    system.run()
    assert system.total_tasks_executed == 1


def test_system_cannot_run_twice():
    system = NDPSystem(tiny_config(Design.B))
    system.run()
    with pytest.raises(RuntimeError):
        system.run()


def test_unknown_task_function_raises():
    system = NDPSystem(tiny_config(Design.B))
    system.seed_task(Task(func="missing", ts=0, data_addr=0))
    with pytest.raises(KeyError):
        system.run()


def test_max_cycles_guard_applies():
    cfg = tiny_config(Design.B).replace(max_cycles=100)
    system = NDPSystem(cfg)
    system.registry.register("t", lambda ctx, task: None)
    system.seed_task(Task(func="t", ts=0, data_addr=0,
                          workload=10_000, actual_cycles=10_000))
    with pytest.raises(SimulationError):
        system.run()


def test_verification_error_propagates():
    from repro.apps.linked_list import LinkedListApp

    class BrokenApp(LinkedListApp):
        def verify(self):
            return False

    app = BrokenApp(n_lists=16, n_queries=4, max_nodes=8, seed=1)
    with pytest.raises(VerificationError):
        run_app(app, tiny_config(Design.B))


def test_deep_task_chain_completes():
    """A long dependent chain exercises repeated local scheduling."""
    system = NDPSystem(tiny_config(Design.B))
    bank = system.addr_map.bank_bytes

    def chain(ctx, task):
        depth = task.args[0]
        if depth > 0:
            ctx.enqueue_task("chain", task.ts, task.data_addr,
                             workload=2, args=(depth - 1,))

    system.registry.register("chain", chain)
    system.seed_task(Task(func="chain", ts=0, data_addr=bank * 2,
                          workload=2, args=(500,)))
    system.run()
    assert system.total_tasks_executed == 501


def test_many_epochs_advance():
    system = NDPSystem(tiny_config(Design.B))

    def step(ctx, task):
        n = task.args[0]
        if n > 0:
            ctx.enqueue_task("step", task.ts + 1, task.data_addr,
                             workload=3, args=(n - 1,))

    system.registry.register("step", step)
    system.seed_task(Task(func="step", ts=0, data_addr=0, workload=3,
                          args=(40,)))
    system.run()
    assert system.tracker.epoch == 40


def test_wide_fanout_single_epoch():
    system = NDPSystem(tiny_config(Design.O))
    bank = system.addr_map.bank_bytes
    hits = []

    def fan(ctx, task):
        for u in range(16):
            ctx.enqueue_task("leaf", task.ts, u * bank + 128, workload=3)

    system.registry.register("fan", fan)
    system.registry.register("leaf", lambda ctx, t: hits.append(ctx.unit_id))
    system.seed_task(Task(func="fan", ts=0, data_addr=0))
    system.run()
    assert sorted(set(hits)) == list(range(16))
