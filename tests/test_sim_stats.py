"""Tests for the statistics registry."""

from repro.sim import StatsRegistry


def test_counter_identity_and_increment():
    stats = StatsRegistry()
    c1 = stats.counter("unit0", "reads")
    c2 = stats.counter("unit0", "reads")
    assert c1 is c2
    c1.add()
    c1.add(4)
    assert c2.value == 5


def test_counter_scoping():
    stats = StatsRegistry()
    stats.counter("unit0", "reads").add(3)
    stats.counter("unit1", "reads").add(5)
    assert stats.sum_counters(".reads") == 8
    assert stats.counters_matching("unit0") == {"unit0.reads": 3}


def test_accumulator_statistics():
    stats = StatsRegistry()
    acc = stats.accumulator("core", "latency")
    for v in (10, 20, 30):
        acc.observe(v)
    assert acc.count == 3
    assert acc.total == 60
    assert acc.mean == 20
    assert acc.min == 10
    assert acc.max == 30


def test_accumulator_empty_mean_is_zero():
    stats = StatsRegistry()
    assert stats.accumulator("x", "y").mean == 0.0


def test_histogram_bucketing():
    stats = StatsRegistry()
    h = stats.histogram("q", "depth", [10, 100])
    for v in (1, 10, 11, 100, 1000):
        h.observe(v)
    assert h.counts == [2, 2, 1]
    assert h.total == 5


def test_as_dict_round_trip():
    stats = StatsRegistry()
    stats.counter("a", "b").add(7)
    stats.accumulator("c", "d").observe(2.5)
    d = stats.as_dict()
    assert d["a.b"] == 7
    assert d["c.d"]["mean"] == 2.5


def test_counter_reset():
    stats = StatsRegistry()
    c = stats.counter("s", "n")
    c.add(9)
    c.reset()
    assert c.value == 0
