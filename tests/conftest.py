"""Shared fixtures for the NDPBridge test suite."""

import pytest

from repro.config import Design, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


@pytest.fixture
def tiny_system_b():
    """A 16-unit design-B system with a trivial no-op task function."""
    system = NDPSystem(tiny_config(Design.B))
    system.registry.register("noop", lambda ctx, task: None)
    return system


@pytest.fixture
def tiny_system_o():
    """A 16-unit full-NDPBridge (design O) system."""
    system = NDPSystem(tiny_config(Design.O))
    system.registry.register("noop", lambda ctx, task: None)
    return system


def noop_task(addr: int, ts: int = 0, workload: int = 10) -> Task:
    return Task(func="noop", ts=ts, data_addr=addr, workload=workload,
                actual_cycles=workload)
