"""Property-based timing invariants for banks and links."""

from hypothesis import given, settings, strategies as st

from repro.config import Design, default_config
from repro.dram import DRAMBank
from repro.links import Link
from repro.sim import Simulator, StatsRegistry

access_spec = st.tuples(
    st.integers(min_value=0, max_value=1 << 20),   # address
    st.integers(min_value=1, max_value=2048),      # bytes
    st.booleans(),                                 # is_write
    st.integers(min_value=0, max_value=500),       # issue-gap cycles
)


@settings(max_examples=40, deadline=None)
@given(st.lists(access_spec, min_size=1, max_size=40))
def test_bank_accesses_never_overlap(accesses):
    bank = DRAMBank(Simulator(), default_config(), StatsRegistry(), 0)
    now = 0
    prev_finish = 0
    for addr, nbytes, is_write, gap in accesses:
        now += gap
        acc = bank.access(now, addr, nbytes, is_write, 8.0)
        # Serialization: starts no earlier than issue and previous finish.
        assert acc.start >= now
        assert acc.start >= prev_finish
        assert acc.finish > acc.start
        prev_finish = acc.finish


@settings(max_examples=40, deadline=None)
@given(st.lists(access_spec, min_size=2, max_size=40))
def test_row_hit_never_slower_than_miss(accesses):
    cfg = default_config()
    bank = DRAMBank(Simulator(), cfg, StatsRegistry(), 0)
    # Prime a row, then every same-row read must not exceed the
    # conflict-path latency for the same size.
    for addr, nbytes, is_write, gap in accesses:
        acc = bank.access(bank.busy_until, addr, nbytes, is_write, 8.0)
        worst = (
            cfg.t_rp_cycles + cfg.t_rcd_cycles + cfg.t_cas_cycles
            + bank._t_wtr + (nbytes // 8) + 2
        )
        assert acc.latency <= worst


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=4096),
              st.integers(min_value=0, max_value=300)),
    min_size=1, max_size=40,
))
def test_link_transfers_serialize_and_count(transfers):
    link = Link(Simulator(), StatsRegistry(), "l", 6.0)
    now = 0
    prev_finish = 0
    total = 0
    for nbytes, gap in transfers:
        now += gap
        finish = link.transfer(now, nbytes)
        start = max(now, prev_finish)
        assert finish >= start + 1
        assert finish - start >= nbytes / 6.0 - 1
        prev_finish = finish
        total += nbytes
    assert link.total_bytes == total


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10_000),
       st.floats(min_value=0.5, max_value=64.0,
                 allow_nan=False, allow_infinity=False))
def test_transfer_cycles_monotone_in_size(nbytes, bpc):
    link = Link(Simulator(), StatsRegistry(), "l", bpc)
    assert link.transfer_cycles(nbytes) <= link.transfer_cycles(nbytes + 64)
    assert link.transfer_cycles(nbytes) >= 1
