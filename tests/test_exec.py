"""Tests for the parallel + cached execution subsystem (repro.exec).

Determinism is the contract: a cell's metrics must be bit-identical
whether the simulation ran in-process, in a pool worker, or came back
from the on-disk cache.
"""

import json

import pytest

from repro.analysis.metrics import RunMetrics
from repro.config import Design, tiny_config
from repro.energy import EnergyBreakdown
from repro.exec import (
    CellRequest,
    ResultCache,
    cell_key,
    code_version,
    config_fingerprint,
    execute_cells,
    metrics_from_payload,
    metrics_to_payload,
    run_matrix,
)

APP = "ht"
SCALE = 0.03
SEED = 3


def request(design=Design.B, seed=SEED, scale=SCALE):
    return CellRequest(
        app=APP, config=tiny_config(design), scale=scale, seed=seed
    )


def sample_metrics(with_energy=True):
    energy = EnergyBreakdown(
        core_sram_pj=1.5, local_dram_pj=2.25, comm_dram_pj=0.125,
        static_pj=10.0,
    ) if with_energy else None
    return RunMetrics(
        design="B", app="ht", makespan=12345, avg_unit_time=17.25,
        max_unit_time=12345, wait_fraction=0.333251953125,
        total_busy_cycles=99, tasks_executed=42, task_messages=7,
        data_messages=3, energy=energy, extra={"x": 1.75},
    )


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def test_metrics_payload_round_trip_exact():
    for with_energy in (True, False):
        m = sample_metrics(with_energy)
        # Through actual JSON text, as the on-disk cache does.
        payload = json.loads(json.dumps(metrics_to_payload(m)))
        assert metrics_from_payload(payload) == m


def test_config_fingerprint_distinguishes_configs():
    base = tiny_config(Design.B)
    assert config_fingerprint(base) == config_fingerprint(tiny_config(Design.B))
    assert config_fingerprint(base) != config_fingerprint(tiny_config(Design.O))
    assert config_fingerprint(base) != config_fingerprint(
        base.replace(seed=base.seed + 1)
    )


def test_cell_key_sensitivity():
    base = request()
    assert base.key == request().key
    assert base.key != request(seed=SEED + 1).key
    assert base.key != request(scale=SCALE * 2).key
    assert base.key != request(design=Design.O).key
    assert base.key != cell_key(
        "ll", tiny_config(Design.B), SCALE, SEED
    )


def test_code_version_is_stable_within_process():
    assert code_version() == code_version()
    assert len(code_version()) == 16


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    m = sample_metrics()
    key = request().key
    assert cache.get(key) is None
    cache.put(key, m)
    assert cache.get(key) == m
    assert cache.hits == 1 and cache.misses == 1


def test_cache_corrupt_file_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = request().key
    cache.put(key, sample_metrics())
    path = cache._path(key)
    path.write_text("{not json")
    assert cache.get(key) is None


def test_cache_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(request().key, sample_metrics())
    assert cache.clear() == 1
    assert cache.get(request().key) is None


def test_cache_disabled_via_env(monkeypatch):
    monkeypatch.setenv("NDPBRIDGE_CACHE", "0")
    assert ResultCache.from_env() is None
    monkeypatch.setenv("NDPBRIDGE_CACHE", "1")
    monkeypatch.setenv("NDPBRIDGE_CACHE_DIR", "/tmp/some-cache")
    cache = ResultCache.from_env()
    assert cache is not None and str(cache.root) == "/tmp/some-cache"


# ----------------------------------------------------------------------
# execution determinism: fresh vs cached vs subprocess
# ----------------------------------------------------------------------
def test_fresh_cached_and_subprocess_results_identical(tmp_path):
    reqs = [request(Design.B), request(Design.O)]

    fresh = execute_cells(reqs, jobs=1, cache=None)
    pooled = execute_cells(reqs, jobs=2, cache=None)

    cache = ResultCache(tmp_path)
    primed = execute_cells(reqs, jobs=1, cache=cache)
    hits_before = cache.hits
    cached = execute_cells(reqs, jobs=1, cache=cache)
    assert cache.hits == hits_before + len(reqs)

    for a, b, c, d in zip(fresh, pooled, primed, cached):
        assert a == b == c == d
        assert a.makespan > 0


def test_double_run_same_seed_identical(tmp_path):
    a = execute_cells([request()], jobs=1, cache=None)[0]
    b = execute_cells([request()], jobs=1, cache=None)[0]
    assert a.makespan == b.makespan
    assert a == b


def test_on_cell_fires_in_request_order(tmp_path):
    reqs = [request(Design.B), request(Design.O)]
    seen = []
    execute_cells(
        reqs, jobs=1, cache=ResultCache(tmp_path),
        on_cell=lambda r, m: seen.append((r.config.design.value, m.makespan)),
    )
    assert [d for d, _ in seen] == ["B", "O"]
    assert all(mk > 0 for _, mk in seen)


def test_run_matrix_shape_and_keys(tmp_path):
    results = run_matrix(
        ["ht"], [Design.B, Design.O],
        config_of=tiny_config, scale=SCALE, seed=SEED,
        jobs=1, cache=ResultCache(tmp_path),
    )
    assert set(results) == {"ht"}
    assert set(results["ht"]) == {"B", "O"}
    assert results["ht"]["B"].design == "B"
    assert results["ht"]["O"].app == "ht"
