"""Tests for the DIMM-Link inter-rank extension (Section V-A tandem)."""

from dataclasses import replace

import pytest

from repro.config import Design, SystemConfig, TopologyConfig
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


def two_rank_config(design=Design.B, links=False, seed=7):
    topo = TopologyConfig(
        channels=1, ranks_per_channel=2, chips_per_rank=4, banks_per_chip=4,
        channel_bits=32,
    )
    cfg = SystemConfig(topology=topo, seed=seed).with_design(design)
    if links:
        cfg = cfg.replace(comm=replace(cfg.comm, inter_rank_links=True))
    return cfg


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


def run_cross_rank_chatter(links: bool, messages: int = 60):
    system = NDPSystem(two_rank_config(links=links))
    system.registry.register("noop", lambda ctx, task: None)

    def spray(ctx, task):
        for i in range(messages):
            ctx.enqueue_task(
                "noop", task.ts, bank_addr(system, 16 + (i % 16)),
                workload=2,
            )

    system.registry.register("spray", spray)
    system.seed_task(Task(func="spray", ts=0, data_addr=bank_addr(system, 0)))
    system.run()
    return system


def test_p2p_ports_created_only_when_enabled():
    with_links = NDPSystem(two_rank_config(links=True))
    without = NDPSystem(two_rank_config(links=False))
    assert with_links.fabric.level2.p2p_ports is not None
    assert without.fabric.level2.p2p_ports is None


def test_p2p_links_carry_cross_rank_traffic():
    system = run_cross_rank_chatter(links=True)
    l2 = system.fabric.level2
    assert sum(p.total_bytes for p in l2.p2p_ports) > 0
    assert sum(c.total_bytes for c in l2.channel_links) == 0 or True
    assert all(u.tasks_executed >= 1 for u in system.units[16:20])


def test_p2p_links_do_not_slow_cross_rank_communication():
    # With heavy cross-rank traffic the dedicated ports can only help;
    # light traffic may tie (delivery is quantized to bridge rounds).
    slow = run_cross_rank_chatter(links=False, messages=400).makespan
    fast = run_cross_rank_chatter(links=True, messages=400).makespan
    assert fast <= slow


def test_results_identical_with_and_without_links():
    a = run_cross_rank_chatter(links=False)
    b = run_cross_rank_chatter(links=True)
    assert a.total_tasks_executed == b.total_tasks_executed
