"""Tests for isLent / dataBorrowed metadata (Section VI-B)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.balance import DataBorrowedTable, IsLentBitmap


class TestIsLentBitmap:
    def test_set_clear(self):
        bm = IsLentBitmap(2048, base_block=1000)
        assert not bm.is_lent(1005)
        bm.set_lent(1005)
        assert bm.is_lent(1005)
        assert bm.lent_count == 1
        bm.clear_lent(1005)
        assert not bm.is_lent(1005)

    def test_capacity_from_sram_bytes(self):
        bm = IsLentBitmap(2048, base_block=0)
        assert bm.capacity_blocks == 2048 * 8

    def test_scale_factor(self):
        quarter = IsLentBitmap(2048, 0, scale=0.25)
        four_x = IsLentBitmap(2048, 0, scale=4.0)
        assert quarter.capacity_blocks == 2048 * 2
        assert four_x.capacity_blocks == 2048 * 32

    def test_out_of_range_rejected(self):
        bm = IsLentBitmap(1, base_block=100)  # tracks 8 blocks
        assert bm.tracks(100) and bm.tracks(107)
        assert not bm.tracks(108) and not bm.tracks(99)
        with pytest.raises(ValueError):
            bm.set_lent(108)

    def test_clear_untracked_is_noop(self):
        bm = IsLentBitmap(1, base_block=0)
        bm.clear_lent(5)  # never set; must not raise


class TestDataBorrowedTable:
    def test_insert_lookup_remove(self):
        t = DataBorrowedTable(16 * 1024, ways=8)
        assert t.insert(42, value=7, home_unit=3) is None
        entry = t.lookup(42)
        assert entry.value == 7
        assert entry.home_unit == 3
        assert t.contains(42)
        removed = t.remove(42)
        assert removed.block_id == 42
        assert t.lookup(42) is None

    def test_capacity_entries(self):
        t = DataBorrowedTable(16 * 1024, ways=8)
        assert t.capacity_entries == 1024

    def test_lru_eviction_within_set(self):
        t = DataBorrowedTable(
            DataBorrowedTable.ENTRY_BYTES * 4, ways=4
        )  # 1 set, 4 ways
        assert t.num_sets == 1
        for block in range(4):
            t.insert(block, block, 0)
        t.lookup(0)  # touch 0: now 1 is LRU
        victim = t.insert(100, 100, 0)
        assert victim.block_id == 1
        assert t.contains(0)
        assert not t.contains(1)

    def test_update_existing_no_eviction(self):
        t = DataBorrowedTable(DataBorrowedTable.ENTRY_BYTES * 2, ways=2)
        t.insert(1, 10, 0)
        t.insert(3, 30, 0)
        assert t.insert(1, 11, 0) is None  # update, no victim
        assert t.lookup(1).value == 11

    def test_hit_miss_counters(self):
        t = DataBorrowedTable(1024, ways=4)
        t.insert(5, 1, 0)
        t.lookup(5)
        t.lookup(6)
        assert t.hits == 1
        assert t.misses == 1

    def test_scale_changes_capacity(self):
        small = DataBorrowedTable(16 * 1024, 8, scale=0.25)
        big = DataBorrowedTable(16 * 1024, 8, scale=4.0)
        assert small.capacity_entries == 256
        assert big.capacity_entries == 4096

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=200))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        t = DataBorrowedTable(DataBorrowedTable.ENTRY_BYTES * 16, ways=4)
        live = set()
        for b in blocks:
            victim = t.insert(b, b, 0)
            live.add(b)
            if victim is not None:
                live.discard(victim.block_id)
            assert len(t) <= t.capacity_entries
        assert {e.block_id for e in t.entries()} == live
