"""Additional RowClone fabric coverage: bus contention and latency."""

import pytest

from repro.bridge.rowclone import ROW_COPY_LATENCY
from repro.config import Design, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task


def bank_addr(system, unit_id, offset=0):
    return unit_id * system.addr_map.bank_bytes + offset


def make_system():
    system = NDPSystem(tiny_config(Design.R))
    system.registry.register("noop", lambda ctx, task: None)
    return system


def test_copy_latency_floor():
    system = make_system()

    def spawn(ctx, task):
        ctx.enqueue_task("noop", task.ts, bank_addr(system, 1), workload=1)

    system.registry.register("spawn", spawn)
    system.seed_task(Task(func="spawn", ts=0, data_addr=bank_addr(system, 0),
                          workload=1))
    system.run()
    # The child cannot have run before the row-copy latency elapsed.
    assert system.makespan >= ROW_COPY_LATENCY


def test_chip_bus_serializes_copies():
    def run(n_msgs):
        system = make_system()

        def spray(ctx, task):
            for i in range(n_msgs):
                ctx.enqueue_task("noop", task.ts,
                                 bank_addr(system, 1 + i % 3, i * 256),
                                 workload=1)

        system.registry.register("spray", spray)
        system.seed_task(Task(func="spray", ts=0,
                              data_addr=bank_addr(system, 0)))
        system.run()
        return system.makespan

    assert run(40) > run(2)


def test_separate_chips_copy_in_parallel():
    system = make_system()
    # Two independent intra-chip sprays on different chips.
    def spawn_chip0(ctx, task):
        for i in range(10):
            ctx.enqueue_task("noop", task.ts, bank_addr(system, 1, i * 256),
                             workload=1)

    def spawn_chip1(ctx, task):
        for i in range(10):
            ctx.enqueue_task("noop", task.ts, bank_addr(system, 5, i * 256),
                             workload=1)

    system.registry.register("s0", spawn_chip0)
    system.registry.register("s1", spawn_chip1)
    system.seed_task(Task(func="s0", ts=0, data_addr=bank_addr(system, 0)))
    system.seed_task(Task(func="s1", ts=0, data_addr=bank_addr(system, 4)))
    system.run()
    buses = system.fabric.chip_buses
    used = [b for b in buses.values() if b.total_bytes > 0]
    assert len(used) == 2
