"""Tests for the extension applications (stencil, hist)."""

import pytest

from repro.apps import EXTENSION_APPS, make_app
from repro.apps.histogram import HistogramApp
from repro.apps.stencil import StencilApp
from repro.config import Design, tiny_config
from repro.runtime.runner import run_app


class TestStencil:
    def test_matches_reference(self):
        app = StencilApp(width=16, height=16, steps=2, seed=4)
        run_app(app, tiny_config(Design.B))
        assert app.verify()

    def test_two_epochs_per_step(self):
        app = StencilApp(width=8, height=8, steps=3, seed=4)
        result = run_app(app, tiny_config(Design.B))
        assert result.system.tracker.epoch >= 2 * 3 - 1

    def test_boundary_messages_only(self):
        app = StencilApp(width=16, height=16, steps=1, seed=4)
        result = run_app(app, tiny_config(Design.B))
        # 256 cells over 16 units = 16 cells (one row) per unit: each row
        # pushes to the rows above and below -> bounded message count.
        assert 0 < result.metrics.task_messages <= 2 * 16 * 16

    def test_runs_on_host(self):
        app = StencilApp(width=8, height=8, steps=2, seed=4)
        run_app(app, tiny_config(Design.H))
        assert app.verify()

    def test_corner_has_two_neighbors(self):
        app = StencilApp(width=4, height=4)
        assert sorted(app._neighbors(0)) == [1, 4]
        assert len(app._neighbors(5)) == 4


class TestHistogram:
    def test_counts_match_reference(self):
        app = HistogramApp(n_bins=64, n_items=500, seed=4)
        run_app(app, tiny_config(Design.B))
        assert app.verify()
        assert sum(app.counts) == 500

    def test_skew_concentrates_counts(self):
        app = HistogramApp(n_bins=256, n_items=2000, skew=1.2, seed=4)
        run_app(app, tiny_config(Design.B))
        assert max(app.counts) > 5 * (sum(app.counts) / app.n_bins)

    def test_balancer_declines_unprofitable_moves(self):
        # Histogram is the adversarial case for data-first scheduling: a
        # bin's increments serialize wherever the bin lives and spawn no
        # follow-up work, so each candidate bundle fails the transfer-
        # profitability test.  The data-transfer-aware policy must
        # decline (or nearly decline) and stay within a whisker of B.
        def run(design):
            app = HistogramApp(n_bins=256, n_items=4000, skew=1.2, seed=4)
            return run_app(app, tiny_config(design))

        b = run(Design.B)
        o = run(Design.O)
        assert o.metrics.makespan <= 1.2 * b.metrics.makespan


def test_factory_builds_extensions():
    for name in EXTENSION_APPS:
        app = make_app(name, scale=0.1, seed=2)
        assert app.name == name


def test_unknown_app_error_mentions_extensions():
    with pytest.raises(KeyError, match="stencil"):
        make_app("sorting")


class TestHashJoin:
    def test_match_count_correct(self):
        from repro.apps.join import HashJoinApp

        app = HashJoinApp(n_buckets=64, r_rows=300, s_rows=500,
                          n_keys=64, seed=6)
        run_app(app, tiny_config(Design.B))
        assert app.matches == app.reference_matches()
        assert app.matches > 0

    def test_build_precedes_probe(self):
        from repro.apps.join import HashJoinApp

        app = HashJoinApp(n_buckets=64, r_rows=100, s_rows=100,
                          n_keys=32, seed=6)
        result = run_app(app, tiny_config(Design.B))
        # The probe phase is a second epoch.
        assert result.system.tracker.epoch >= 1

    def test_correct_under_balancing(self):
        from repro.apps.join import HashJoinApp

        app = HashJoinApp(n_buckets=64, r_rows=400, s_rows=800,
                          n_keys=64, skew=1.1, seed=6)
        run_app(app, tiny_config(Design.O))
        assert app.verify()


class TestTriangleCount:
    def test_count_matches_reference(self):
        from repro.apps.triangles import TriangleCountApp

        app = TriangleCountApp(n_vertices=128, avg_degree=6, seed=6)
        run_app(app, tiny_config(Design.B))
        assert app.triangles == app.reference_triangles()
        assert app.triangles > 0

    def test_known_small_graph(self):
        from repro.apps.triangles import TriangleCountApp
        from repro.workloads.graphs import Graph

        # A 4-clique has exactly 4 triangles.
        g = Graph(4, [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]])
        app = TriangleCountApp(graph=g, seed=6)
        run_app(app, tiny_config(Design.B))
        assert app.triangles == 4

    def test_large_payload_messages(self):
        from repro.apps.triangles import TriangleCountApp

        app = TriangleCountApp(n_vertices=128, avg_degree=8, seed=6)
        result = run_app(app, tiny_config(Design.B))
        # Adjacency payloads exceed one 64 B frame.
        assert result.metrics.task_messages > 0

    def test_correct_on_host(self):
        from repro.apps.triangles import TriangleCountApp

        app = TriangleCountApp(n_vertices=64, avg_degree=6, seed=6)
        run_app(app, tiny_config(Design.H))
        assert app.verify()
