"""Tests for the bandwidth-limited link model."""

import pytest

from repro.links import Link
from repro.sim import Simulator, StatsRegistry


def make_link(bpc=8.0, lat=0):
    return Link(Simulator(), StatsRegistry(), "l", bpc, fixed_latency=lat)


def test_transfer_time_matches_bandwidth():
    link = make_link(bpc=8.0)
    assert link.transfer(0, 64) == 8
    assert link.transfer_cycles(64) == 8


def test_transfers_serialize():
    link = make_link(bpc=8.0)
    f1 = link.transfer(0, 64)
    f2 = link.transfer(0, 64)
    assert f2 == f1 + 8


def test_fixed_latency_added():
    link = make_link(bpc=8.0, lat=5)
    assert link.transfer(0, 64) == 13


def test_idle_gap_respected():
    link = make_link(bpc=8.0)
    link.transfer(0, 64)           # busy until 8
    finish = link.transfer(100, 8)  # starts at 100, not 8
    assert finish == 101


def test_byte_accounting_and_utilization():
    link = make_link(bpc=8.0)
    link.transfer(0, 64)
    link.transfer(0, 64)
    assert link.total_bytes == 128
    assert link.total_busy_cycles == 16
    assert link.utilization(32) == pytest.approx(0.5)


def test_occupy_until_extends_horizon():
    link = make_link(bpc=8.0)
    link.occupy_until(20, 64)
    assert link.busy_until == 20
    assert link.total_bytes == 64
    # Occupying a time already covered does not move the horizon back.
    link.occupy_until(10, 8)
    assert link.busy_until == 20


def test_invalid_sizes_rejected():
    link = make_link()
    with pytest.raises(ValueError):
        link.transfer(0, 0)
    with pytest.raises(ValueError):
        Link(Simulator(), StatsRegistry(), "bad", 0.0)


def test_fractional_bandwidth_rounds_up():
    link = make_link(bpc=6.0)
    assert link.transfer_cycles(64) == 11  # ceil(64/6)
