"""Property tests: the bridge fabric under randomized message storms.

Hypothesis generates random communication patterns (who sprays how many
tasks at whom, with what workloads and timestamps) and the tests check
the conservation invariants that must survive any pattern: every message
delivers, every task executes exactly once, and buffers drain.
"""

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.config import Design, SystemConfig, TopologyConfig, tiny_config
from repro.runtime.system import NDPSystem
from repro.runtime.task import Task

spray_spec = st.tuples(
    st.integers(min_value=0, max_value=15),      # source unit
    st.integers(min_value=0, max_value=15),      # destination unit
    st.integers(min_value=1, max_value=40),      # messages
    st.integers(min_value=1, max_value=60),      # per-task workload
)


def run_storm(sprays: List[Tuple[int, int, int, int]], design: Design):
    system = NDPSystem(tiny_config(design, seed=3))
    bank = system.addr_map.bank_bytes
    delivered = []

    def leaf(ctx, task):
        delivered.append(ctx.unit_id)

    def spray(ctx, task):
        dst, count, workload = task.args
        for i in range(count):
            ctx.enqueue_task(
                "leaf", task.ts, dst * bank + (i % 64) * 256,
                workload=workload,
            )

    system.registry.register("leaf", leaf)
    system.registry.register("spray", spray)
    for src, dst, count, workload in sprays:
        system.seed_task(Task(
            func="spray", ts=0, data_addr=src * bank,
            workload=4, args=(dst, count, workload),
        ))
    system.run()
    return system, delivered


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sprays=st.lists(spray_spec, min_size=1, max_size=10))
def test_storm_conserves_tasks_on_bridges(sprays):
    system, delivered = run_storm(sprays, Design.B)
    expected = sum(count for _, _, count, _ in sprays)
    assert len(delivered) == expected
    tr = system.tracker
    assert tr.total_created == tr.total_completed
    assert tr.task_messages_in_flight == 0
    # Every buffer drained.
    for bridge in system.fabric.rank_bridges:
        assert bridge._backup_bytes == 0
        assert all(b.is_empty() for b in bridge.scatter_buffers.values())
        assert len(bridge.up_mailbox) == 0
    for unit in system.units:
        assert unit.mailbox.is_empty()
        assert not unit._backlog


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sprays=st.lists(spray_spec, min_size=1, max_size=8))
def test_storm_conserves_tasks_with_balancing(sprays):
    system, delivered = run_storm(sprays, Design.O)
    expected = sum(count for _, _, count, _ in sprays)
    assert len(delivered) == expected
    from repro.analysis.audit import audit_system

    assert audit_system(system).ok


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sprays=st.lists(spray_spec, min_size=1, max_size=8))
def test_storm_conserves_tasks_on_host_path(sprays):
    system, delivered = run_storm(sprays, Design.C)
    expected = sum(count for _, _, count, _ in sprays)
    assert len(delivered) == expected


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sprays=st.lists(spray_spec, min_size=1, max_size=6))
def test_storm_across_ranks(sprays):
    """Same invariants on a 2-rank system (level-2 bridge in play)."""
    topo = TopologyConfig(
        channels=1, ranks_per_channel=2, chips_per_rank=4, banks_per_chip=4,
        channel_bits=32,
    )
    system = NDPSystem(
        SystemConfig(topology=topo, seed=3).with_design(Design.B)
    )
    bank = system.addr_map.bank_bytes
    hits = []
    system.registry.register("leaf", lambda ctx, t: hits.append(ctx.unit_id))

    def spray(ctx, task):
        dst, count, workload = task.args
        for i in range(count):
            ctx.enqueue_task("leaf", task.ts,
                             (dst * 2) * bank + i * 256, workload=workload)

    system.registry.register("spray", spray)
    for src, dst, count, workload in sprays:
        system.seed_task(Task(
            func="spray", ts=0, data_addr=src * bank,
            workload=4, args=(dst, count, workload),
        ))
    system.run()
    assert len(hits) == sum(c for _, _, c, _ in sprays)
    assert len(system.fabric.level2.down_buffers[0]) == 0
