"""Tests for cross-rank load balancing specifics (Section VI-A end)."""

import pytest

from repro.config import Design, SystemConfig, TopologyConfig
from repro.runtime.system import NDPSystem

from .conftest import noop_task


def two_rank_o(seed=9):
    topo = TopologyConfig(
        channels=1, ranks_per_channel=2, chips_per_rank=4, banks_per_chip=4,
        channel_bits=32,
    )
    system = NDPSystem(
        SystemConfig(topology=topo, seed=seed).with_design(Design.O)
    )
    system.registry.register("noop", lambda ctx, task: None)
    return system


def skewed_run(seed=9, tasks=500, workload=400):
    system = two_rank_o(seed)
    bank = system.addr_map.bank_bytes
    for i in range(tasks):
        system.seed_task(noop_task(
            (i % 4) * bank + (i // 4) * 256, workload=workload,
        ))
    system.run()
    return system


def test_only_fully_idle_ranks_receive():
    """Rank 1 has zero work, so it must become a cross-rank receiver."""
    system = skewed_run()
    rank1_done = sum(u.tasks_executed for u in system.units[16:])
    assert rank1_done > 0
    assert system.fabric.level2._stat_schedules.value >= 1


def test_handle_schedule_from_l2_picks_busiest_children():
    system = two_rank_o()
    bank = system.addr_map.bank_bytes
    # Load two units unevenly and snapshot.
    for i in range(40):
        system.tracker.task_created(0)
        system.units[2].accept_task(noop_task(2 * bank + i * 256,
                                              workload=300))
    for i in range(5):
        system.tracker.task_created(0)
        system.units[3].accept_task(noop_task(3 * bank + i * 256,
                                              workload=300))
    bridge = system.fabric.rank_bridges[0]
    bridge.last_snapshot = {u.unit_id: u.collect_state()
                            for u in bridge.units}
    bridge.handle_schedule_from_l2(budget=600)
    # The busiest child received the SCHEDULE (pending UP assignment).
    assert bridge.pending_assign.get(2), "busiest unit was not chosen"


def test_cross_rank_lend_updates_l2_table():
    system = skewed_run()
    l2 = system.fabric.level2
    # If a cross-rank bundle flowed, the L2 table saw it (entries may be
    # gone if returned; the insert counter persists through hits).
    moved = l2._stat_schedules.value
    if moved:
        assert (
            len(l2.borrowed) > 0
            or l2.borrowed.evictions > 0
            or l2.borrowed.hits + l2.borrowed.misses > 0
        )


def test_results_correct_under_cross_rank_lb():
    system = skewed_run()
    tr = system.tracker
    assert tr.total_created == tr.total_completed
    from repro.analysis.audit import audit_system

    assert audit_system(system).ok
