"""simlint test suite.

Every rule must (a) catch its hazard in a positive fixture, (b) stay
quiet when the finding line carries a ``# simlint: ignore[RULE]``
comment, and (c) stay quiet when the module is allowlisted.  A meta-test
asserts the repository's own ``src/`` tree is clean, which is what makes
the CI lint gate meaningful.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import ALLOWLIST, RULES, AllowlistEntry, lint_source
from repro.lint.allowlist import is_allowlisted
from repro.lint.checker import iter_python_files

REPO_ROOT = Path(__file__).resolve().parent.parent

RULE_CODES = [rule.code for rule in RULES]


def codes(source, module_path="repro/sim/fixture.py", path="fixture.py"):
    return [
        d.rule
        for d in lint_source(source, path=path, module_path=module_path)
    ]


# ----------------------------------------------------------------------
# per-rule fixtures: (source, module_path, line_to_suppress)
# ----------------------------------------------------------------------
FIXTURES = {
    "SL001": (
        "import time\n"
        "def f():\n"
        "    return time.time()\n",
        "repro/sim/fixture.py",
        3,
    ),
    "SL002": (
        "import random\n"
        "def f():\n"
        "    return random.random()\n",
        "repro/balance/fixture.py",
        1,
    ),
    "SL003": (
        "def f(sim, banks):\n"
        "    for b in set(banks):\n"
        "        sim.schedule(1, b)\n",
        "repro/bridge/fixture.py",
        2,
    ),
    "SL004": (
        "class L:\n"
        "    def f(self, n):\n"
        "        self.delay = n / 2\n",
        "repro/links/fixture.py",
        3,
    ),
    "SL005": (
        "from repro.sim import Component\n"
        "class B(Component):\n"
        "    def f(self, xs=[]):\n"
        "        return xs\n",
        "repro/ndp/fixture.py",
        3,
    ),
    "SL006": (
        "def f(sim, tasks):\n"
        "    for t in tasks:\n"
        "        sim.schedule(1, lambda: go(t))\n",
        "repro/ndp/fixture.py",
        3,
    ),
    "SL007": (
        "def key_of(name):\n"
        "    return hash(name) % 64\n",
        "repro/runtime/fixture.py",
        2,
    ),
    "SL008": (
        "def f(xs):\n"
        "    return sorted(xs, key=lambda x: id(x))\n",
        "repro/bridge/fixture.py",
        2,
    ),
}


def test_every_rule_has_a_fixture():
    assert set(FIXTURES) == set(RULE_CODES)
    assert len(RULES) >= 6


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_fires_on_hazard(code):
    source, module_path, _ = FIXTURES[code]
    assert code in codes(source, module_path), (
        f"{code} failed to detect its hazard fixture"
    )


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_suppressed_by_ignore_comment(code):
    source, module_path, line = FIXTURES[code]
    lines = source.splitlines()
    lines[line - 1] += f"  # simlint: ignore[{code}] fixture justification"
    suppressed = "\n".join(lines) + "\n"
    assert code not in codes(suppressed, module_path)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_suppressed_by_bare_ignore(code):
    source, module_path, line = FIXTURES[code]
    lines = source.splitlines()
    lines[line - 1] += "  # simlint: ignore"
    suppressed = "\n".join(lines) + "\n"
    assert code not in codes(suppressed, module_path)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_rule_respects_allowlist(code, monkeypatch):
    source, module_path, _ = FIXTURES[code]
    entry = AllowlistEntry(
        rule=code,
        module=module_path,
        justification="fixture: testing the allowlist mechanism",
    )
    monkeypatch.setattr(
        "repro.lint.allowlist.ALLOWLIST", ALLOWLIST + (entry,)
    )
    assert code not in codes(source, module_path)


# ----------------------------------------------------------------------
# negatives: sanctioned idioms must NOT be flagged
# ----------------------------------------------------------------------
def test_sorted_set_iteration_is_clean():
    src = (
        "def f(sim, banks):\n"
        "    for b in sorted(set(banks)):\n"
        "        sim.schedule(1, b)\n"
    )
    assert codes(src, "repro/bridge/fixture.py") == []


def test_set_membership_without_iteration_is_clean():
    src = (
        "def f(sim, live, uid):\n"
        "    live = set(live)\n"
        "    if uid in live:\n"
        "        sim.schedule(1, print)\n"
    )
    assert codes(src, "repro/bridge/fixture.py") == []


def test_set_attribute_iteration_is_flagged():
    src = (
        "class B:\n"
        "    def __init__(self):\n"
        "        self._pending = set()\n"
        "    def f(self, sim):\n"
        "        for uid in self._pending:\n"
        "            sim.schedule(1, print)\n"
    )
    assert "SL003" in codes(src, "repro/bridge/fixture.py")


def test_int_laundered_division_is_clean():
    src = (
        "import math\n"
        "class L:\n"
        "    def f(self, n, bw):\n"
        "        self.delay = math.ceil(n / bw)\n"
        "        self.busy_cycles = int(n / bw)\n"
    )
    assert codes(src, "repro/links/fixture.py") == []


def test_float_time_outside_scoped_dirs_is_clean():
    source, _, _ = FIXTURES["SL004"]
    assert codes(source, "repro/analysis/fixture.py") == []


def test_bandwidth_names_are_not_time_names():
    src = "class L:\n    def f(self, n):\n        self.bytes_per_cycle = n / 2\n"
    assert codes(src, "repro/links/fixture.py") == []


def test_default_bound_lambda_is_clean():
    src = (
        "def f(sim, tasks):\n"
        "    for t in tasks:\n"
        "        sim.schedule(1, lambda t=t: go(t))\n"
    )
    assert codes(src, "repro/ndp/fixture.py") == []


def test_wall_clock_allowed_in_benchmarks():
    src = "import time\nstart = time.time()\n"
    diags = lint_source(
        src, path="benchmarks/bench_x.py", module_path="bench_x.py"
    )
    assert diags == []


def test_lambda_outside_loop_is_clean():
    src = "def f(sim, task):\n    sim.schedule(1, lambda: go(task))\n"
    assert codes(src, "repro/ndp/fixture.py") == []


def test_comprehension_lambda_is_flagged():
    src = (
        "def f(sim, tasks):\n"
        "    return [sim.schedule(1, lambda: go(t)) for t in tasks]\n"
    )
    assert "SL006" in codes(src, "repro/ndp/fixture.py")


def test_id_in_comparison_is_flagged():
    src = (
        "def f(a, b):\n"
        "    return id(a) < id(b)\n"
    )
    assert "SL008" in codes(src, "repro/sim/fixture.py")


def test_id_outside_scoped_dirs_is_clean():
    source, _, _ = FIXTURES["SL008"]
    assert codes(source, "repro/analysis/fixture.py") == []


def test_plain_id_call_is_clean():
    # id() as an identity probe (e.g. caching, debug) is fine; only
    # ordering on it is nondeterministic.
    src = (
        "def f(xs, seen):\n"
        "    return [x for x in xs if id(x) not in seen]\n"
    )
    assert codes(src, "repro/bridge/fixture.py") == []


# ----------------------------------------------------------------------
# machinery
# ----------------------------------------------------------------------
def test_allowlist_entries_carry_justifications():
    for entry in ALLOWLIST:
        assert entry.justification.strip(), entry
        assert entry.rule in RULE_CODES, entry


def test_rng_module_is_allowlisted_for_sl002():
    assert is_allowlisted("SL002", "repro/sim/rng.py")
    assert codes("import random\n", "repro/sim/rng.py") == []


def test_diagnostic_format_is_greppable():
    source, module_path, line = FIXTURES["SL002"]
    diags = lint_source(source, path="x/y.py", module_path=module_path)
    assert diags and diags[0].format().startswith(f"x/y.py:{line}:")
    assert " SL002 " in diags[0].format()


def test_syntax_error_reported_not_crashed():
    diags = lint_source("def f(:\n", path="broken.py")
    assert [d.rule for d in diags] == ["SL000"]


def test_iter_python_files_deterministic_order(tmp_path):
    for name in ("b.py", "a.py", "c.txt"):
        (tmp_path / name).write_text("x = 1\n")
    files = iter_python_files([tmp_path])
    assert [f.name for f in files] == ["a.py", "b.py"]


# ----------------------------------------------------------------------
# meta: the repository itself must be clean, via the real CLI
# ----------------------------------------------------------------------
def _run_cli(*args, cwd=REPO_ROOT):
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


def test_cli_clean_on_repo_src():
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_cli_exit_1_on_finding(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\n")
    proc = _run_cli(str(bad))
    assert proc.returncode == 1
    assert "SL001" in proc.stdout


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for code in RULE_CODES:
        assert code in proc.stdout
    assert "repro/sim/rng.py" in proc.stdout  # allowlist shown with why


def test_cli_sarif_output(tmp_path):
    import json

    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\nt = time.time()\n")
    out = tmp_path / "lint.sarif"
    proc = _run_cli("--format", "sarif", "-o", str(out), str(bad))
    assert proc.returncode == 1
    report = json.loads(out.read_text())
    assert report["version"] == "2.1.0"
    run = report["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == RULE_CODES
    result = run["results"][0]
    assert result["ruleId"] == "SL001"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2
    assert region["startColumn"] >= 1  # SARIF columns are 1-based
    # ruleIndex must point back into the driver rule table.
    assert rule_ids[result["ruleIndex"]] == "SL001"


def test_cli_sarif_clean_is_exit_0(tmp_path):
    import json

    good = tmp_path / "repro" / "sim" / "ok.py"
    good.parent.mkdir(parents=True)
    good.write_text("x = 1\n")
    proc = _run_cli("--format", "sarif", str(good))
    assert proc.returncode == 0
    report = json.loads(proc.stdout)
    assert report["runs"][0]["results"] == []
