"""Smoke driver: run every (design, app) pair at small scale with a
wall-clock watchdog per run, printing progress unbuffered."""

import itertools
import os
import sys
import time

from repro import Design, make_app, small_config, tiny_config
from repro.config import default_config
from repro.runtime.runner import build_system

CONFIGS = {
    "tiny": tiny_config,
    "small": small_config,
    "default": default_config,
}

DESIGNS = [Design.C, Design.B, Design.W, Design.O, Design.R, Design.H]
APPS = ["ll", "ht", "tree", "spmv", "bfs", "sssp", "pr", "wcc"]


def run_one(design, name, scale=0.05, budget_s=30):
    cfg = CONFIGS[os.environ.get("SMOKE_CONFIG", "tiny")](design)
    app = make_app(name, scale=scale)
    system = build_system(cfg)
    app.attach(system)
    app.seed_tasks(system)
    if hasattr(system, "fabric"):
        system.fabric.start()
    system.tracker.check_progress()
    t0 = time.time()
    checked = 0
    while not system.tracker.finished:
        if not system.sim.step():
            break
        checked += 1
        if checked % 20000 == 0 and time.time() - t0 > budget_s:
            tr = system.tracker
            return (
                f"STUCK now={system.sim.now} done={tr.total_completed}/"
                f"{tr.total_created} tmsg={tr.task_messages_in_flight} "
                f"dmsg={tr.data_messages_in_flight} epoch={tr.epoch}"
            )
    if not system.tracker.finished:
        return "DRAINED-UNFINISHED"
    ok = app.verify()
    return (
        f"makespan={system.makespan} tasks={system.total_tasks_executed} "
        f"verify={ok} ({time.time() - t0:.1f}s)"
    )


def main():
    designs = DESIGNS
    apps = APPS
    if len(sys.argv) > 1:
        designs = [Design(sys.argv[1])]
    if len(sys.argv) > 2:
        apps = sys.argv[2].split(",")
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.05
    for design, name in itertools.product(designs, apps):
        try:
            result = run_one(design, name, scale=scale)
        except Exception as exc:  # noqa: BLE001 - smoke reporting
            result = f"FAIL {type(exc).__name__}: {exc}"
        print(f"{design.value:>2} {name:>5}: {result}", flush=True)


if __name__ == "__main__":
    main()
