#!/usr/bin/env bash
# Reproduce everything: tests, then every paper figure/table benchmark.
#
# Usage:
#   scripts/reproduce.sh                 # default reduced-scale harness
#   NDPBRIDGE_BENCH_UNITS=512 \
#   NDPBRIDGE_BENCH_SCALE=2.0 scripts/reproduce.sh    # toward paper scale
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== unit / integration / property tests =="
python -m pytest tests/ 2>&1 | tee test_output.txt

echo "== per-figure benchmark harness =="
python -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

echo "done; see test_output.txt and bench_output.txt"
