#!/usr/bin/env python
"""cProfile hook for the simulation hot path.

Runs the fixed tree-on-O workload (the same one ``benchmarks/
bench_engine.py`` times) under cProfile, prints the top functions by
cumulative time, and records wall-clock + events/sec into
``BENCH_engine.json`` under the ``profile_tree_on_O`` key.

With ``--shards N`` the same workload instead runs on the sharded
engine (inline, so the profile covers one process executing every
shard's hot loop plus the window/barrier machinery) and records under
``profile_tree_on_O_shardedN``.

With ``--snapshot-at N`` the serial workload pauses at cycle N for a
snapshot + fork and finishes from the restored clone (see
``repro.state.snapshot``), so the profile covers the deep-clone
capture/restore cost alongside the hot loop; records under
``profile_tree_on_O_snapshotN`` with the snapshot size attached.

Usage:
    PYTHONPATH=src python scripts/profile_engine.py [--smoke]
        [--units N] [--scale F] [--shards N] [--snapshot-at N]
        [--sort cumulative|tottime] [--top N] [--dump profile.prof]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--units", type=int, default=128)
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run for CI (scale 0.1)")
    parser.add_argument("--shards", type=int, default=1,
                        help="profile the sharded engine (inline) with "
                             "this many shards")
    parser.add_argument("--snapshot-at", type=int, default=None,
                        dest="snapshot_at", metavar="N",
                        help="pause the serial run at cycle N, snapshot, "
                             "and finish from the restored clone")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime"])
    parser.add_argument("--top", type=int, default=25)
    parser.add_argument("--dump", default=None,
                        help="also write raw stats to this .prof file")
    args = parser.parse_args()
    if args.smoke:
        args.scale = 0.1

    from benchmarks.common import record_bench
    from repro import Design, make_app, run_app
    from repro.config import scaled_config

    cfg = scaled_config(args.units, Design.O, seed=args.seed)

    profiler = cProfile.Profile()
    snap_size = None
    if args.shards > 1 and args.snapshot_at is not None:
        parser.error("--snapshot-at profiles the serial engine only")
    if args.shards > 1:
        from repro.runtime.shards import run_app_sharded

        t0 = time.perf_counter()
        profiler.enable()
        result = run_app_sharded(
            "tree", cfg, scale=args.scale, seed=args.seed,
            shards=args.shards, verify=False, parallel=False,
        )
        profiler.disable()
        wall_s = time.perf_counter() - t0
        events = result.system.events_processed
    elif args.snapshot_at is not None:
        from repro.state.snapshot import run_app_with_snapshot

        app = make_app("tree", scale=args.scale, seed=args.seed)
        t0 = time.perf_counter()
        profiler.enable()
        result, snap = run_app_with_snapshot(
            app, cfg, snapshot_at=args.snapshot_at
        )
        profiler.disable()
        wall_s = time.perf_counter() - t0
        events = result.system.sim.events_processed
        snap_size = snap.size_bytes()
    else:
        app = make_app("tree", scale=args.scale, seed=args.seed)
        t0 = time.perf_counter()
        profiler.enable()
        result = run_app(app, cfg)
        profiler.disable()
        wall_s = time.perf_counter() - t0
        events = result.system.sim.events_processed

    print(f"tree-on-O: units={args.units} scale={args.scale} "
          f"seed={args.seed} shards={args.shards}")
    print(f"makespan={result.metrics.makespan} events={events} "
          f"wall={wall_s:.3f}s ({events / wall_s:,.0f} events/s under "
          f"profiler)\n")

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue())

    if args.dump:
        stats.dump_stats(args.dump)
        print(f"raw profile written to {args.dump}")

    key = "profile_tree_on_O_smoke" if args.smoke else "profile_tree_on_O"
    if args.shards > 1:
        key = f"{key}_sharded{args.shards}"
    if args.snapshot_at is not None:
        key = f"{key}_snapshot{args.snapshot_at}"
    payload = {
        "units": args.units,
        "scale": args.scale,
        "seed": args.seed,
        "shards": args.shards,
        "makespan": result.metrics.makespan,
        "events": events,
        "wall_s_profiled": round(wall_s, 4),
        "events_per_s_profiled": round(events / wall_s),
    }
    if snap_size is not None:
        payload["snapshot_at"] = args.snapshot_at
        payload["snapshot_bytes"] = snap_size
    record_bench(key, payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
