"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     one (app, design) pair, printing the paper-style metrics::

    python -m repro run --app tree --design O --units 64 --scale 0.5

``matrix``  the Fig.-10 app x design sweep with a speedup table::

    python -m repro matrix --designs C,B,W,O --apps tree,bfs --scale 0.25

``designs`` / ``apps``  list what is available.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .analysis.report import (
    energy_table,
    metrics_table,
    speedup_summary,
    to_json,
)
from .apps import APP_CLASSES, EXTENSION_APPS, make_app
from .config import Design, scaled_config
from .runtime.runner import run_app


def _parse_designs(text: str) -> List[Design]:
    try:
        return [Design(token.strip().upper()) for token in text.split(",")]
    except ValueError as exc:
        raise SystemExit(f"unknown design in {text!r}: {exc}")


def _config(design: Design, units: int, seed: int):
    try:
        return scaled_config(units, design, seed=seed)
    except ValueError as exc:
        raise SystemExit(f"invalid --units {units}: {exc}")


def cmd_run(args) -> int:
    design = Design(args.design.upper())
    app = make_app(args.app, scale=args.scale, seed=args.seed)
    result = run_app(app, _config(design, args.units, args.seed),
                     verify=not args.no_verify)
    print(metrics_table([result.metrics], title=f"{args.app} on {design.value}"))
    if result.metrics.energy is not None:
        print()
        print(energy_table({f"{args.app}/{design.value}": result.metrics}))
    return 0


def cmd_matrix(args) -> int:
    designs = _parse_designs(args.designs)
    apps = [a.strip() for a in args.apps.split(",")]
    known = set(APP_CLASSES) | set(EXTENSION_APPS)
    for app_name in apps:
        if app_name not in known:
            raise SystemExit(f"unknown app {app_name!r}; "
                             f"choose from {sorted(known)}")
    results = {}
    for app_name in apps:
        results[app_name] = {}
        for design in designs:
            app = make_app(app_name, scale=args.scale, seed=args.seed)
            metrics = run_app(
                app, _config(design, args.units, args.seed)
            ).metrics
            results[app_name][design.value] = metrics
    if args.json:
        print(to_json(results))
    else:
        print(speedup_summary(
            results, designs[0].value, [d.value for d in designs]
        ))
    return 0


def cmd_sweep(args) -> int:
    """Sweep one communication parameter across values (Fig.-16 style)."""
    from dataclasses import replace

    from .analysis.sweep import Variant, run_sweep

    apps = [a.strip() for a in args.apps.split(",")]
    values = [int(v) for v in args.values.split(",")]
    variants = []
    for value in values:
        cfg = _config(Design.O, args.units, args.seed)
        if args.param == "g_xfer":
            cfg = cfg.replace(comm=replace(cfg.comm, g_xfer_bytes=value))
        elif args.param == "i_state":
            cfg = cfg.replace(comm=replace(cfg.comm, i_state_cycles=value))
        elif args.param == "max_chunks":
            cfg = cfg.replace(
                comm=replace(cfg.comm, max_chunks_per_round=value)
            )
        else:
            raise SystemExit(f"unknown sweep parameter {args.param!r}")
        variants.append(Variant(f"{args.param}={value}", cfg))
    result = run_sweep(variants, apps, scale=args.scale, seed=args.seed)
    print(result.table(baseline=variants[0].label,
                       title=f"{args.param} sweep (design O)"))
    return 0


def cmd_designs(_args) -> int:
    for design in Design:
        print(f"{design.value}: {design.name}")
    return 0


def cmd_apps(_args) -> int:
    for name in sorted(APP_CLASSES):
        print(name)
    for name in sorted(EXTENSION_APPS):
        print(f"{name} (extension)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NDPBridge (ISCA 2024) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one app on one design")
    run_p.add_argument("--app", required=True,
                       choices=sorted(APP_CLASSES) + sorted(EXTENSION_APPS))
    run_p.add_argument("--design", required=True)
    run_p.add_argument("--units", type=int, default=64)
    run_p.add_argument("--scale", type=float, default=0.25)
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument("--no-verify", action="store_true")
    run_p.set_defaults(fn=cmd_run)

    matrix_p = sub.add_parser("matrix", help="app x design sweep")
    matrix_p.add_argument("--apps", default="tree,bfs,pr")
    matrix_p.add_argument("--designs", default="C,B,W,O")
    matrix_p.add_argument("--units", type=int, default=64)
    matrix_p.add_argument("--scale", type=float, default=0.25)
    matrix_p.add_argument("--seed", type=int, default=42)
    matrix_p.add_argument("--json", action="store_true")
    matrix_p.set_defaults(fn=cmd_matrix)

    sweep_p = sub.add_parser("sweep", help="parameter sweep on design O")
    sweep_p.add_argument("--param", required=True,
                         choices=["g_xfer", "i_state", "max_chunks"])
    sweep_p.add_argument("--values", required=True,
                         help="comma-separated values, first is baseline")
    sweep_p.add_argument("--apps", default="tree,pr")
    sweep_p.add_argument("--units", type=int, default=64)
    sweep_p.add_argument("--scale", type=float, default=0.25)
    sweep_p.add_argument("--seed", type=int, default=42)
    sweep_p.set_defaults(fn=cmd_sweep)

    sub.add_parser("designs", help="list designs").set_defaults(fn=cmd_designs)
    sub.add_parser("apps", help="list applications").set_defaults(fn=cmd_apps)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
