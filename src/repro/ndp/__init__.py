"""NDP unit model (core + unit controller per bank)."""

from .cache import HIT_LATENCY, L1Cache
from .unit import NDPUnit, UnitState, MAX_BOUNCES

__all__ = ["NDPUnit", "UnitState", "MAX_BOUNCES", "L1Cache", "HIT_LATENCY"]
