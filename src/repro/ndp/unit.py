"""The NDP unit: one wimpy core + unit controller per DRAM bank.

This module models everything inside Fig. 4(b): the in-order core executing
tasks from the in-DRAM task queue, the unit controller with its mailbox
head/tail pointers, command handler and message handler, the borrowed-data
region, and the load-balancing structures (isLent bitmap, dataBorrowed
table, hot-data sketch, reserved queue).

The unit is *passive* on the communication side: the parent bridge (or the
host forwarder) pulls from its mailbox and pushes into its queues; the unit
only appends outgoing messages and stalls when the mailbox ring is full.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..balance.metadata import DataBorrowedTable, IsLentBitmap
from ..balance.reserved_queue import ReservedQueue
from ..balance.sketch import HotDataSketch
from ..config import SystemConfig
from ..dram.bank import DRAMBank
from ..messages import DataMessage, Mailbox, Message, TaskMessage
from ..runtime.program import TaskContext
from ..runtime.task import Task
from ..sim import DeterministicRNG, Simulator, StatsRegistry
from .cache import HIT_LATENCY, L1Cache

#: Forwarded tasks park at their home unit after this many bounces.  The
#: park is cheap to leave: the bridge pings the home unit when the lend's
#: metadata lands (see Level1Bridge._record_assignment) and every state
#: round retries as a backstop, so a small bounce budget minimizes wasted
#: messages during the metadata-update window.
MAX_BOUNCES = 1


@dataclass
class UnitState:
    """State snapshot returned to a STATE-GATHER (Section V-B)."""

    unit_id: int
    mailbox_len: int          # L_mailbox (bytes)
    queue_workload: int       # W_queue
    finished_workload: int    # W_finish
    busy_cycles: int = 0      # cycles spent executing (for S_exe)
    sched_out: Tuple = ()     # blocks scheduled out since last snapshot
    idle: bool = False


@dataclass
class _Bundle:
    """One block plus the tasks lent with it (giver side)."""

    block_id: int
    tasks: List[Task]
    workload: int


class NDPUnit:
    """One bank + core + controller."""

    def __init__(
        self,
        sim: Simulator,
        config: SystemConfig,
        stats: StatsRegistry,
        unit_id: int,
        system: "object",
        rng: DeterministicRNG,
    ):
        self.sim = sim
        self.config = config
        self.unit_id = unit_id
        self.system = system                   # NDPSystem facade
        self.rng = rng
        self.bank = DRAMBank(sim, config, stats, unit_id)
        self.mailbox = Mailbox(config.unit_mem.mailbox_bytes)
        self.cache = L1Cache.from_config(config)

        block_bytes = config.comm.g_xfer_bytes
        bank_bytes = config.topology.bank_capacity_mb * 1024 * 1024
        self._base_block = unit_id * bank_bytes // block_bytes
        scale = config.balance.metadata_scale
        self.islent = IsLentBitmap(
            config.sram.islent_bytes, self._base_block, scale
        )
        self.borrowed = DataBorrowedTable(
            config.sram.databorrowed_bytes,
            config.sram.databorrowed_ways,
            scale,
        )
        self._borrow_slots = (
            config.unit_mem.borrowed_region_bytes // block_bytes
        )
        self._next_borrow_slot = 0

        self._hot = config.balance.enabled and config.balance.hot_selection
        self.sketch: Optional[HotDataSketch] = None
        self.reserved: Optional[ReservedQueue] = None
        if self._hot:
            self.sketch = HotDataSketch(config.sketch, rng.substream("sketch"))
            self.reserved = ReservedQueue(
                total_chunks=config.unit_mem.reserved_queue_chunks,
                chunk_bytes=block_bytes,
                static_chunks=(
                    config.sketch.buckets * config.sketch.entries_per_bucket
                ),
            )

        # Blocks the bridge recalled before their lend even arrived; they
        # bounce straight home on delivery (see recall_block).
        self._pending_recalls: set = set()
        # Blocks selected for lending whose bundle still sits in the
        # mailbox.  isLent is only committed when the bridge gathers the
        # bundle and installs its dataBorrowed entry (atomically from the
        # router's perspective), so no task ever bounces off a home whose
        # block location the bridge cannot yet resolve.
        self._lend_pending: set = set()

        # Task storage.
        self.queue: Deque[Task] = deque()
        self.future: Dict[int, List[Task]] = {}
        self.parked: Dict[int, List[Task]] = {}
        self._queue_workload = 0

        # Core state.
        self.core_busy = False
        self.blocked_on_mailbox = False
        # Same-block spawn statistics: how often a task generates a child
        # on its own data block.  A migrated block attracts that follow-up
        # work "for free" (Section VI-C: migrated data automatically
        # attract more tasks), so it multiplies a bundle's effective value.
        self._exec_count = 0
        self._same_block_spawns = 0
        self._backlog: Deque[Message] = deque()
        self.busy_cycles = 0
        self.finish_time = 0
        self.tasks_executed = 0
        self.finished_workload = 0
        self._sched_out_log: List[Tuple[int, int]] = []

        scope = f"unit{unit_id}"
        self._stat_forwarded = stats.counter(scope, "tasks_forwarded")
        self._stat_bounced = stats.counter(scope, "tasks_bounced")
        self._stat_parked = stats.counter(scope, "tasks_parked")
        self._stat_lent = stats.counter(scope, "blocks_lent")
        self._stat_borrowed = stats.counter(scope, "blocks_borrowed")
        self._stat_returned = stats.counter(scope, "blocks_returned")
        self._stat_stall = stats.counter(scope, "mailbox_stall_events")
        self._stat_sram = stats.counter(scope, "sram_accesses")

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def block_of(self, addr: int) -> int:
        return addr // self.config.comm.g_xfer_bytes

    def is_home(self, block_id: int) -> bool:
        return self.system.addr_map.unit_of_block(block_id) == self.unit_id

    def holds_block(self, block_id: int) -> bool:
        """Is the block's data locally accessible right now?"""
        if self.is_home(block_id):
            return not self.islent.is_lent(block_id)
        self._stat_sram.add()
        return self.borrowed.contains(block_id)

    # ------------------------------------------------------------------
    # task intake (spawned locally or scattered by the bridge)
    # ------------------------------------------------------------------
    def accept_task(self, task: Task, bounces: int = 0) -> None:
        """Queue a task locally, or forward it toward its data block."""
        block = self.block_of(task.data_addr)
        if self.holds_block(block):
            self._enqueue_local(task)
            return
        if self.is_home(block):
            # Home unit but block lent out: the bridge metadata will
            # redirect it.  After several bounces the block must be in
            # return transit; park until it lands.
            if bounces >= MAX_BOUNCES:
                self.parked.setdefault(block, []).append(task)
                self._stat_parked.add()
                return
            self._stat_bounced.add()
            self._forward(task, bounces + 1)
            return
        self._forward(task, bounces)

    def _forward(self, task: Task, bounces: int) -> None:
        home = self.system.addr_map.unit_of_addr(task.data_addr)
        msg = TaskMessage(
            src_unit=self.unit_id, dst_unit=home, task=task, bounces=bounces
        )
        self._stat_forwarded.add()
        self._send(msg)

    def _enqueue_local(self, task: Task) -> None:
        if task.ts > self.system.tracker.epoch:
            self.future.setdefault(task.ts, []).append(task)
            return
        self._push_runnable(task)
        self._try_start()

    def _push_runnable(self, task: Task) -> None:
        block = self.block_of(task.data_addr)
        if self._hot:
            result = self.sketch.observe(block, task.workload_estimate)
            self._stat_sram.add()
            if result.evicted_block is not None:
                for evicted_task in self.reserved.evict(result.evicted_block):
                    self.queue.append(evicted_task)
            if result.resident and self.reserved.reserve(block, task):
                self._queue_workload += task.workload_estimate
                return
        self.queue.append(task)
        self._queue_workload += task.workload_estimate

    # ------------------------------------------------------------------
    # the core
    # ------------------------------------------------------------------
    @property
    def queue_workload(self) -> int:
        return self._queue_workload

    @property
    def idle(self) -> bool:
        return not self.core_busy and self._queue_workload == 0

    def _next_task(self) -> Optional[Task]:
        while True:
            # Reserved tasks execute with normal priority -- only their
            # grouping (for hot-block scheduling) is special.  Preserve
            # global arrival order: pull whichever of the main queue head
            # and the oldest reserved chain head was created first.
            use_reserved = False
            if self._hot and self.reserved is not None:
                reserved_id = self.reserved.oldest_task_id()
                if reserved_id is not None:
                    if not self.queue:
                        use_reserved = True
                    elif reserved_id < self.queue[0].task_id:
                        use_reserved = True
            if use_reserved:
                block = self.reserved.oldest_block()
                task = self.reserved.pop_one(block)
                if task is None:
                    continue
                self._queue_workload -= task.workload_estimate
                if not self.holds_block(block):
                    self.accept_task(task)
                    continue
                return task
            if not self.queue:
                return None
            task = self.queue.popleft()
            self._queue_workload -= task.workload_estimate
            block = self.block_of(task.data_addr)
            if not self.holds_block(block):
                # The block was lent away after this task was queued; it
                # must chase its data (data-first execution).
                self.accept_task(task)
                continue
            return task

    def _try_start(self) -> None:
        if self.core_busy or self.blocked_on_mailbox:
            return
        task = self._next_task()
        if task is None:
            return
        self.core_busy = True
        cfg = self.config.core
        start = self.sim.now
        # Fetch the task's data element: from the L1 SRAM on a hit, or
        # from the local bank through the DMA engine on a miss (the access
        # arbiter serializes bank traffic with the bridge).
        if self.cache.access(task.data_addr):
            access_cycles = HIT_LATENCY
        else:
            access = self.bank.access(
                now=start,
                addr=task.data_addr
                % (self.config.topology.bank_capacity_mb << 20),
                nbytes=task.data_bytes,
                is_write=False,
                bytes_per_cycle=cfg.local_dma_bytes_per_cycle,
            )
            access_cycles = access.finish - start
        duration = (
            cfg.dispatch_overhead_cycles
            + access_cycles
            + self.system.registry.dispatch_cost(task)
        )
        self.sim.schedule(duration, lambda: self._complete(task, duration))

    def _complete(self, task: Task, duration: int) -> None:
        ctx = TaskContext(
            unit_id=self.unit_id, now=self.sim.now,
            epoch=self.system.tracker.epoch,
        )
        fn = self.system.registry.lookup(task.func)
        fn(ctx, task)
        children = ctx.spawned()
        child_cost = self.config.core.enqueue_overhead_cycles * len(children)
        self.busy_cycles += duration + child_cost
        self.tasks_executed += 1
        self.finished_workload += task.workload_estimate
        self._exec_count += 1
        parent_block = self.block_of(task.data_addr)
        for child in children:
            if self.block_of(child.data_addr) == parent_block:
                self._same_block_spawns += 1

        def _after_spawn() -> None:
            self.finish_time = self.sim.now
            for child in children:
                self.system.spawn(self.unit_id, child)
            self.core_busy = False
            # Completion may end the epoch / the run.
            self.system.tracker.task_completed(task.ts)
            if not self.system.tracker.finished:
                self._try_start()

        if child_cost:
            self.sim.schedule(child_cost, _after_spawn)
        else:
            _after_spawn()

    # ------------------------------------------------------------------
    # outgoing messages / mailbox stalls
    # ------------------------------------------------------------------
    def _send(self, msg: Message) -> None:
        self.system.tracker.message_departed(
            is_data=isinstance(msg, DataMessage)
        )
        # RowClone-style fabrics may short-circuit same-chip messages.
        if self.system.fabric.try_direct(self, msg):
            return
        if self._backlog or not self.mailbox.enqueue(msg):
            if not self._backlog:
                self._stat_stall.add()
            self._backlog.append(msg)
            self.blocked_on_mailbox = True
            return
        self.system.fabric.notify_enqueue(self)

    def on_mailbox_drained(self) -> None:
        """Bridge gathered from our mailbox; retry backlogged messages."""
        progressed = False
        while self._backlog and self.mailbox.enqueue(self._backlog[0]):
            self._backlog.popleft()
            progressed = True
        if progressed:
            self.system.fabric.notify_enqueue(self)
        if not self._backlog and self.blocked_on_mailbox:
            self.blocked_on_mailbox = False
            self._try_start()

    # ------------------------------------------------------------------
    # message handler (bridge SCATTER delivery)
    # ------------------------------------------------------------------
    def deliver_task_message(self, msg: TaskMessage) -> None:
        self.system.tracker.message_delivered(is_data=False)
        self.accept_task(msg.task, bounces=msg.bounces)

    def deliver_data_message(self, msg: DataMessage) -> None:
        self.system.tracker.message_delivered(is_data=True)
        block = msg.block_id
        if msg.returning:
            # Our own block coming home.
            self.islent.clear_lent(block)
            self._stat_returned.add()
            for task in self.parked.pop(block, []):
                self.accept_task(task)
            self._try_start()
            return
        # A borrowed block arriving (we are the receiver).
        if msg.home_unit == self.unit_id:
            # Our own block came back to us (e.g. a redirected self-lend):
            # treat it as a return.
            self.islent.clear_lent(block)
            self._lend_pending.discard(block)
            for task in self.parked.pop(block, []):
                self.accept_task(task)
            self._try_start()
            return
        if block in self._pending_recalls:
            # The bridge lost track of this block while it was in flight
            # and already asked for it back: return it without keeping it.
            self._pending_recalls.discard(block)
            self._return_block(block, msg.home_unit)
            return
        slot = self._next_borrow_slot % max(1, self._borrow_slots)
        self._next_borrow_slot += 1
        remapped = slot * self.config.comm.g_xfer_bytes
        victim = self.borrowed.insert(block, remapped, msg.home_unit)
        self._stat_borrowed.add()
        self._stat_sram.add()
        if victim is not None:
            self._return_block(victim.block_id, victim.home_unit)
        # Queued tasks skipped earlier may now find their block local.
        self._try_start()

    def _return_block(self, block_id: int, home_unit: int) -> None:
        g = self.config.comm.g_xfer_bytes
        self.cache.invalidate_range(block_id * g, g)
        msg = DataMessage(
            src_unit=self.unit_id,
            dst_unit=home_unit,
            block_id=block_id,
            block_bytes=self.config.comm.g_xfer_bytes,
            returning=True,
            home_unit=home_unit,
        )
        self._send(msg)

    def recall_block(self, block_id: int) -> None:
        """Bridge lost track of this borrowed block: send it home."""
        entry = self.borrowed.remove(block_id)
        if entry is not None:
            self._return_block(block_id, entry.home_unit)
        else:
            # The lend is still in transit toward us; return it on arrival.
            self._pending_recalls.add(block_id)

    # ------------------------------------------------------------------
    # command handler: SCHEDULE (giver side of load balancing)
    # ------------------------------------------------------------------
    def handle_schedule(self, budget: int) -> None:
        """Select ~``budget`` workload of tasks + blocks and mail them out."""
        if budget <= 0:
            return
        bundles = self._select_bundles(budget)
        # Selection may have pushed unlendable reserved tasks back to the
        # main queue while the core sat idle; restart it.
        self._try_start()
        for bundle in bundles:
            self._stat_lent.add()
            self._sched_out_log.append((bundle.block_id, bundle.workload))
            data = DataMessage(
                src_unit=self.unit_id,
                dst_unit=None,
                block_id=bundle.block_id,
                block_bytes=self.config.comm.g_xfer_bytes,
                lb_pending=True,
                bundle_workload=bundle.workload,
                home_unit=self.unit_id,
            )
            self._send(data)
            for task in bundle.tasks:
                self._send(TaskMessage(
                    src_unit=self.unit_id, dst_unit=None,
                    task=task, lb_assigned=True,
                ))

    def _select_bundles(self, budget: int) -> List[_Bundle]:
        selected: List[_Bundle] = []
        total = 0
        if self._hot:
            # Hottest-first selection from the sketch + reserved queue.
            # Selection is non-destructive: a chain that is unlendable or
            # unprofitable (its work would not cover its own transfer
            # time -- the "reduce transfer traffic" goal of Section VI-C)
            # simply stays reserved, preserving execution order.
            entries = sorted(
                self.sketch.entries(),
                key=lambda e: (-e.workload, e.block_id),
            )
            for entry in entries:
                if total >= budget:
                    break
                block = entry.block_id
                chain_workload = self.reserved.workload_of(block)
                n_tasks = self.reserved.task_count(block)
                if (
                    n_tasks == 0
                    or not self._lendable(block)
                    or not self._bundle_profitable(chain_workload, n_tasks)
                ):
                    continue
                self.sketch.remove(block)
                tasks = self.reserved.extract(block)
                self._queue_workload -= chain_workload
                # Mark immediately so the tail fallback below (and any
                # further SCHEDULE) cannot bundle the same block twice.
                self._lend_pending.add(block)
                selected.append(_Bundle(block, tasks, chain_workload))
                total += chain_workload
        if total < budget:
            selected.extend(self._select_from_tail(budget - total))
        return selected

    def _select_from_tail(self, budget: int) -> List[_Bundle]:
        """Traditional selection: tasks from the task queue tail."""
        picked: Dict[int, _Bundle] = {}
        skipped: List[Task] = []
        total = 0
        while self.queue and total < budget:
            task = self.queue.pop()
            block = self.block_of(task.data_addr)
            if not self._lendable(block) and block not in picked:
                skipped.append(task)
                continue
            self._queue_workload -= task.workload_estimate
            bundle = picked.get(block)
            if bundle is None:
                self._lend_pending.add(block)
                bundle = picked[block] = _Bundle(block, [], 0)
            bundle.tasks.append(task)
            bundle.workload += task.workload_estimate
            total += task.workload_estimate
        for task in reversed(skipped):
            self.queue.append(task)
        bundles: List[_Bundle] = []
        for bundle in picked.values():
            if self._hot and not self._bundle_profitable(
                bundle.workload, len(bundle.tasks)
            ):
                # Data-transfer-aware designs refuse unprofitable moves;
                # the classic work-stealing baseline (W) keeps them.
                self._lend_pending.discard(bundle.block_id)
                for task in bundle.tasks:
                    self.queue.append(task)
                    self._queue_workload += task.workload_estimate
                continue
            bundles.append(bundle)
        return bundles

    def commit_lend(self, block_id: int) -> None:
        """The bridge gathered this block's bundle: it is now officially
        elsewhere.  Called together with the bridge's dataBorrowed insert
        so routing metadata never disagrees with the home bitmap."""
        self._lend_pending.discard(block_id)
        if self.islent.tracks(block_id):
            self.islent.set_lent(block_id)
        g = self.config.comm.g_xfer_bytes
        self.cache.invalidate_range(block_id * g, g)

    def _bundle_profitable(self, workload: int, n_tasks: int) -> bool:
        """Is migrating this bundle worth its transfer time?

        Two conditions, both transfer-aware (Section VI-C):

        * the bundle's work (plus the follow-up chain its block will
          attract) must cover its own pipe time -- otherwise the move
          merely relocates a serial chain and pays traffic for it;
        * the giver must retain enough *other* work to overlap the
          transfer -- lending a dominant block from an otherwise-idle
          unit stalls the giver for the whole pipe time at zero gain.
        """
        cfg = self.config
        wire = cfg.comm.g_xfer_bytes + 64 * n_tasks
        transfer_cycles = 2.0 * wire / cfg.chip_link_bytes_per_cycle
        work_cycles = workload + n_tasks * (
            cfg.core.dispatch_overhead_cycles + HIT_LATENCY
        )
        # Follow-up credit: tasks that spawn children on their own block
        # bring a geometric chain of future work along with the block.
        if self._exec_count:
            ratio = min(0.9, self._same_block_spawns / self._exec_count)
            work_cycles /= (1.0 - ratio)
        if work_cycles < transfer_cycles:
            return False
        remaining_after = self._queue_workload - workload
        return remaining_after >= transfer_cycles / 2.0

    def _lendable(self, block_id: int) -> bool:
        """Home blocks within the isLent range that are not already lent."""
        return (
            self.is_home(block_id)
            and self.islent.tracks(block_id)
            and not self.islent.is_lent(block_id)
            and block_id not in self._lend_pending
        )

    def retry_parked(self) -> None:
        """Re-dispatch parked tasks (called each state round).

        A task can park while the lend that displaced its block is still
        being assigned; by the time the metadata settles nothing would
        ever wake it.  Retrying sends it through the bridge once more: if
        the borrow entry now exists it reaches the borrower, otherwise it
        comes straight back and parks again until the block lands.
        """
        if not self.parked:
            return
        for block in list(self.parked):
            tasks = self.parked.pop(block)
            if self.holds_block(block):
                for task in tasks:
                    self.accept_task(task)
            else:
                for task in tasks:
                    self._forward(task, MAX_BOUNCES - 1)
        self._try_start()

    # ------------------------------------------------------------------
    # state gathering
    # ------------------------------------------------------------------
    def collect_state(self) -> UnitState:
        sched_out = tuple(self._sched_out_log)
        self._sched_out_log.clear()
        return UnitState(
            unit_id=self.unit_id,
            mailbox_len=self.mailbox.used_bytes,
            queue_workload=self._queue_workload,
            finished_workload=self.finished_workload,
            busy_cycles=self.busy_cycles,
            sched_out=sched_out,
            idle=self.idle,
        )

    # ------------------------------------------------------------------
    # epoch barrier
    # ------------------------------------------------------------------
    def on_epoch(self, epoch: int) -> None:
        for task in self.future.pop(epoch, []):
            self._push_runnable(task)
        self._try_start()

    def __repr__(self) -> str:  # pragma: no cover
        return f"NDPUnit({self.unit_id}, q={len(self.queue)})"
