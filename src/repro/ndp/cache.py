"""Per-unit L1 data cache model (Table I: 64 kB, 4-way, 64 B lines).

A task's data access first probes the cache; hits cost a couple of cycles
of SRAM latency instead of a DRAM bank access.  Hot data elements (the
very elements that attract many tasks and drive load imbalance) therefore
execute from SRAM after the first touch -- without this, a hub vertex
would pay a full DRAM round trip per tiny accumulate task, which no real
NDP unit with a cache/scratchpad does.

The model is a set-associative LRU tag array; only hit/miss behaviour is
tracked (contents live in the application's Python objects).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List

from ..config import SystemConfig

#: SRAM hit latency in core cycles.
HIT_LATENCY = 2


class L1Cache:
    """Set-associative LRU tag store."""

    def __init__(self, capacity_bytes: int, ways: int, line_bytes: int = 64):
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        self.line_bytes = line_bytes
        self.ways = ways
        total_lines = max(ways, capacity_bytes // line_bytes)
        self.num_sets = max(1, total_lines // ways)
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_config(cls, config: SystemConfig) -> "L1Cache":
        return cls(config.sram.l1d_kb * 1024, ways=4)

    def access(self, addr: int) -> bool:
        """Probe (and fill) the line holding ``addr``; True on a hit."""
        line = addr // self.line_bytes
        s = self._sets[line % self.num_sets]
        if line in s:
            s.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(s) >= self.ways:
            s.popitem(last=False)
        s[line] = True
        return False

    def invalidate(self, addr: int) -> None:
        """Drop the line holding ``addr`` (block migrated away)."""
        line = addr // self.line_bytes
        self._sets[line % self.num_sets].pop(line, None)

    def invalidate_range(self, base: int, nbytes: int) -> None:
        for addr in range(base, base + nbytes, self.line_bytes):
            self.invalidate(addr)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
