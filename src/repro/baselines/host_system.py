"""Design H: host-only execution without NDP (Section VII, Baselines).

The same task-based applications run on a simulated 16-core out-of-order
host (2.6 GHz, shared memory, two DDR4-2400 channels).  Because memory is
shared, any core can execute any task and work stealing is free: we model
a single global task queue all cores pull from.  Task latency is the NDP
execution cost scaled down by the host core's speed advantage, plus a
memory access serialized on the shared-bandwidth roofline.

The facade mirrors :class:`~repro.runtime.system.NDPSystem` closely enough
that applications run unmodified (``partition``, ``registry``, ``spawn``,
``seed_task``, ``run``).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List

from ..config import SystemConfig, validate_config
from ..dram.address import AddressMap
from ..links import Link
from ..runtime.partition import PartitionMap
from ..runtime.program import TaskContext, TaskRegistry
from ..runtime.task import Task
from ..runtime.tracker import RunTracker
from ..sim import DeterministicRNG, SimulationError, Simulator, StatsRegistry


class _HostCore:
    __slots__ = ("core_id", "busy", "busy_cycles", "finish_time")

    def __init__(self, core_id: int):
        self.core_id = core_id
        self.busy = False
        self.busy_cycles = 0
        self.finish_time = 0


class HostSystem:
    """Shared-memory multicore running the task programming model."""

    def __init__(self, config: SystemConfig):
        validate_config(config.replace(design=config.design))
        self.config = config
        self.sim = Simulator(max_cycles=config.max_cycles)
        self.stats = StatsRegistry()
        self.rng = DeterministicRNG(config.seed)
        self.addr_map = AddressMap(config)
        self.partition = PartitionMap(self.addr_map)
        self.registry = TaskRegistry()
        self.tracker = RunTracker()
        host = config.host
        self.cores = [_HostCore(i) for i in range(host.cores)]
        # Shared memory bandwidth roofline in bytes per NDP cycle.
        mem_bpc = host.mem_bandwidth_gb_s * config.cycle_ns / 1.0
        self.mem_link = Link(self.sim, self.stats, "host_mem", mem_bpc)
        self.queue: Deque[Task] = deque()
        self.future: Dict[int, List[Task]] = {}
        self._speedup = host.speedup_vs_ndp_core
        # Writers to the same cacheline serialize (atomic updates /
        # coherence ping-pong): per-line busy horizon.
        self._line_busy: Dict[int, int] = {}
        self.tracker.on_epoch_advance(self._on_epoch_advance)
        self._ran = False
        self.tasks_executed = 0

    # -- NDPSystem-compatible facade -----------------------------------------
    @property
    def units(self):  # apps sometimes size work by unit count
        return self.cores

    def spawn(self, src_unit: int, task: Task) -> None:
        self.tracker.task_created(task.ts)
        self._enqueue(task)

    def seed_task(self, task: Task) -> None:
        self.tracker.task_created(task.ts)
        self._enqueue(task)

    def _enqueue(self, task: Task) -> None:
        if task.ts > self.tracker.epoch:
            self.future.setdefault(task.ts, []).append(task)
            return
        self.queue.append(task)
        self._dispatch()

    def _on_epoch_advance(self, epoch: int) -> None:
        for task in self.future.pop(epoch, []):
            self.queue.append(task)
        self._dispatch()

    # -- execution ---------------------------------------------------------
    def _dispatch(self) -> None:
        for core in self.cores:
            if not self.queue:
                return
            if core.busy:
                continue
            task = self.queue.popleft()
            self._execute(core, task)

    def _execute(self, core: _HostCore, task: Task) -> None:
        core.busy = True
        host = self.config.host
        cost = self.registry.dispatch_cost(task)
        compute = max(1, math.ceil(cost / self._speedup))
        data_bytes = task.data_bytes
        mem_finish = self.mem_link.transfer(self.sim.now, data_bytes)
        # Beyond bandwidth, each task's working set costs one uncached
        # access latency, overlapped across the core's in-flight misses.
        latency_floor = max(
            1, host.mem_latency_cycles // host.mem_level_parallelism
        )
        duration = max(compute, mem_finish - self.sim.now, latency_floor)
        if not task.read_only:
            # Serialize the update's critical section on the cacheline.
            line = task.data_addr // 64
            start = max(self.sim.now, self._line_busy.get(line, 0))
            critical = max(duration, latency_floor)
            self._line_busy[line] = start + critical
            duration = (start - self.sim.now) + critical
        self.sim.schedule(
            duration, lambda: self._complete(core, task, duration)
        )

    def _complete(self, core: _HostCore, task: Task, duration: int) -> None:
        ctx = TaskContext(
            unit_id=core.core_id, now=self.sim.now, epoch=self.tracker.epoch
        )
        fn = self.registry.lookup(task.func)
        fn(ctx, task)
        core.busy_cycles += duration
        core.finish_time = self.sim.now
        core.busy = False
        self.tasks_executed += 1
        for child in ctx.spawned():
            self.tracker.task_created(child.ts)
            self._enqueue(child)
        self.tracker.task_completed(task.ts)
        if not self.tracker.finished:
            self._dispatch()

    def run(self) -> "HostSystem":
        if self._ran:
            raise RuntimeError("system already ran; build a fresh one")
        self._ran = True
        self.tracker.check_progress()
        self.sim.run(stop_condition=lambda: self.tracker.finished)
        if not self.tracker.finished:
            raise SimulationError("host run stalled with work outstanding")
        return self

    # -- result views --------------------------------------------------------
    @property
    def makespan(self) -> int:
        return max((c.finish_time for c in self.cores), default=0)

    @property
    def total_tasks_executed(self) -> int:
        return self.tasks_executed
