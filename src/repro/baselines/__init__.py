"""Baseline system models (Table II plus H and R)."""

from .host_system import HostSystem

__all__ = ["HostSystem"]
