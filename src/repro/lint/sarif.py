"""SARIF 2.1.0 emission, shared by simlint and simflow.

SARIF (Static Analysis Results Interchange Format) is the exchange
format CI systems use to annotate findings inline on pull requests.
``sarif_report`` converts a list of :class:`~repro.lint.checker.Diagnostic`
plus the producing tool's rule table into one SARIF run; the CLIs expose
it behind ``--format sarif`` (the human ``file:line`` format stays the
default).  stdlib only -- the report is a plain dict for ``json.dumps``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
    "master/Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule: Any) -> Dict[str, Any]:
    name = getattr(rule, "name", "") or rule.code
    description = getattr(rule, "description", "") or name
    return {
        "id": rule.code,
        "name": name,
        "shortDescription": {"text": name},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": "error"},
    }


def sarif_report(
    diagnostics: Iterable[Any],
    rules: Sequence[Any],
    tool_name: str,
    tool_version: str = "1.0.0",
) -> Dict[str, Any]:
    """One SARIF run for ``tool_name`` over the given diagnostics.

    ``rules`` supplies the rule descriptors (objects with ``code``,
    ``name``, ``description``); diagnostics whose rule is not listed
    (e.g. the SL000/FL000 syntax-error pseudo-rules) are still emitted,
    just without a ``ruleIndex`` back-reference.
    """
    descriptors = [_rule_descriptor(rule) for rule in rules]
    index = {rule.code: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for diag in diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diag.rule,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(diag.path).as_posix(),
                        },
                        "region": {
                            "startLine": max(1, diag.line),
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": max(1, diag.col + 1),
                        },
                    }
                }
            ],
        }
        if diag.rule in index:
            result["ruleIndex"] = index[diag.rule]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
