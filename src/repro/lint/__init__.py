"""simlint -- determinism & simulator-invariant static analysis.

The simulation engine promises bit-identical cycle counts for identical
seeds (see :mod:`repro.sim.engine`), and the result cache
(:mod:`repro.exec.cache`) happily serves any number that was ever
computed -- so a single code path that lets wall-clock time, unseeded
randomness, or hash iteration order leak into event ordering silently
corrupts every figure downstream.  simlint walks the source tree with
:mod:`ast` (stdlib only, no third-party deps) and mechanically enforces
the invariants that are otherwise protected only by convention:

=======  ==============================================================
rule     invariant
=======  ==============================================================
SL001    no wall-clock reads (``time.time``, ``datetime.now``, ...)
         outside ``benchmarks/`` and ``scripts/``
SL002    no global/unseeded ``random`` or ``numpy.random`` outside the
         sanctioned ``repro/sim/rng.py``
SL003    no iteration over ``set``/``frozenset`` in modules that call
         ``schedule*`` -- hash order must never feed event order
SL004    no float arithmetic assigned to cycle/time-named variables in
         ``sim/``, ``bridge/``, ``links/`` -- simulated time is integral
SL005    no mutable default arguments on methods of ``Component``
         subclasses
SL006    ``schedule*()`` lambda callbacks must not close over loop
         variables (late-binding hazard)
SL007    no builtin ``hash()`` -- salted per process
         (``PYTHONHASHSEED``), so exec workers disagree
SL008    no builtin ``id()`` in sort keys or comparisons inside
         ``sim/``/``bridge/`` -- allocation addresses differ across
         processes and runs
=======  ==============================================================

Findings can be suppressed per line with ``# simlint: ignore[SL003]``
(comma-separate multiple rules; bare ``# simlint: ignore`` silences the
line entirely) or sanctioned centrally in
:mod:`repro.lint.allowlist`, where every entry must carry a written
justification.

Run it as ``python -m repro.lint [paths...]`` (defaults to ``src/``).
"""

from .checker import (
    Diagnostic,
    is_suppressed,
    lint_file,
    lint_paths,
    lint_source,
    module_path_of,
    suppressed_lines,
)
from .rules import RULES, Rule
from .allowlist import ALLOWLIST, AllowlistEntry
from .sarif import sarif_report

__all__ = [
    "ALLOWLIST",
    "AllowlistEntry",
    "Diagnostic",
    "RULES",
    "Rule",
    "is_suppressed",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_path_of",
    "sarif_report",
    "suppressed_lines",
]
