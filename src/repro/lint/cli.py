"""``python -m repro.lint`` -- the simlint command line.

Exit status 0 when clean, 1 when any diagnostic survives suppression
and the allowlist, 2 on usage errors.  Output is one ``path:line:col:
RULE message`` line per finding, grep- and editor-friendly.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .allowlist import ALLOWLIST
from .checker import iter_python_files, lint_file
from .rules import RULES


def _list_rules() -> str:
    lines = ["simlint rules:"]
    for rule in RULES:
        lines.append(f"  {rule.code}  {rule.name}")
        lines.append(f"         {rule.description}")
    lines.append("")
    lines.append("allowlisted modules:")
    for entry in ALLOWLIST:
        lines.append(
            f"  {entry.rule}  {entry.module}: {entry.justification}"
        )
    lines.append("")
    lines.append(
        "suppress a single line with `# simlint: ignore[SL001]` "
        "(comma-separate codes; bare `# simlint: ignore` silences all)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "simlint: determinism & simulator-invariant static analysis"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and allowlist, then exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    files = iter_python_files(args.paths)
    if not files:
        parser.error(f"no python files found under {args.paths!r}")

    total = 0
    for path in files:
        for diag in lint_file(path):
            print(diag.format())
            total += 1
    if not args.quiet:
        if total:
            print(
                f"simlint: {total} finding(s) in {len(files)} file(s) "
                f"({len(RULES)} rules)"
            )
        else:
            print(
                f"simlint: clean -- {len(files)} file(s), "
                f"{len(RULES)} rules"
            )
    return 1 if total else 0
