"""simlint orchestration: parse, run rules, apply suppressions.

Suppression syntax (per line, same line as the finding)::

    x = time.time()          # simlint: ignore[SL001] host-side timer
    for b in banks: ...      # simlint: ignore            (all rules)

Module-wide sanctioned sites live in :mod:`repro.lint.allowlist`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Union

from .allowlist import is_allowlisted
from .rules import RULES, ModuleContext

#: Sentinel rule set meaning "every rule" for a bare `# <tool>: ignore`.
_ALL_RULES: FrozenSet[str] = frozenset({"*"})


def suppression_pattern(tool: str) -> "re.Pattern[str]":
    """The per-line suppression regex for ``tool`` (simlint, simflow, ...)."""
    return re.compile(
        rf"#\s*{re.escape(tool)}:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?"
    )


_SUPPRESS_RE = suppression_pattern("simlint")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def __str__(self) -> str:
        return self.format()


def suppressed_lines(
    source: str, tool: str = "simlint"
) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rules suppressed on that line for ``tool``.

    simflow reuses this with ``tool="simflow"``; the syntax is identical
    (``# simflow: ignore[FL003]``, bare ``ignore`` silences the line).
    """
    pattern = _SUPPRESS_RE if tool == "simlint" else suppression_pattern(tool)
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = pattern.search(text)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            out[lineno] = _ALL_RULES
        else:
            out[lineno] = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    return out


#: Back-compat alias (pre-simflow name).
_suppressions = suppressed_lines


def is_suppressed(
    suppressed: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    """Is rule ``code`` suppressed on ``line`` of a parsed suppression map?"""
    rules_here = suppressed.get(line)
    return rules_here is not None and (
        rules_here is _ALL_RULES or "*" in rules_here or code in rules_here
    )


def module_path_of(path: Path) -> str:
    """Path relative to the package root, e.g. 'repro/sim/engine.py'.

    Files outside a ``repro`` package keep their name, which means
    path-scoped rules simply do not fire on them.
    """
    parts = path.as_posix().split("/")
    for i, part in enumerate(parts):
        if part == "repro":
            return "/".join(parts[i:])
    return path.name


#: Back-compat alias (pre-simflow name).
_module_path_of = module_path_of


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    module_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one module's source text.

    ``module_path`` overrides the package-relative path used for rule
    scoping and the allowlist (tests use this to place fixture snippets
    in a virtual location like ``repro/bridge/fixture.py``).
    """
    path = Path(path)
    if module_path is None:
        module_path = module_path_of(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="SL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        tree=tree,
        module_path=module_path,
        fs_parts=tuple(Path(path).parts),
    )
    suppressed = suppressed_lines(source)
    diagnostics: List[Diagnostic] = []
    for rule in RULES:
        if is_allowlisted(rule.code, module_path):
            continue
        for line, col, message in rule.check(ctx):
            if is_suppressed(suppressed, line, rule.code):
                continue
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=line,
                    col=col,
                    rule=rule.code,
                    message=message,
                )
            )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diagnostics


def lint_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of .py files."""
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    # De-duplicate while keeping deterministic order.
    seen = set()
    unique: List[Path] = []
    for f in files:
        key = f.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def lint_paths(paths: Sequence[Union[str, Path]]) -> List[Diagnostic]:
    """Lint every .py file under ``paths`` (dirs recursed, sorted)."""
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        diagnostics.extend(lint_file(path))
    return diagnostics
