"""The simlint rule set.

Each rule is a small AST pass over one module.  Rules receive a
:class:`ModuleContext` (parsed tree + path information) and yield
``(line, col, message)`` findings; suppression and allowlisting are
handled by :mod:`repro.lint.checker`, so rules stay pure detectors.

All path scoping uses the *module path* -- the file's path relative to
the package root, e.g. ``repro/sim/engine.py`` -- which the checker
derives from the real filesystem path (tests override it to exercise
path-scoped rules on fixture snippets).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

Finding = Tuple[int, int, str]


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module."""

    tree: ast.Module
    #: Logical path relative to the package root ("repro/sim/engine.py").
    module_path: str
    #: Real filesystem path parts (used for benchmarks/scripts exemption).
    fs_parts: Tuple[str, ...] = ()
    _aliases: "Optional[Tuple[Dict[str, str], Dict[str, str]]]" = field(
        default=None, repr=False
    )

    def aliases(self) -> Tuple[Dict[str, str], Dict[str, str]]:
        """``(modules, members)`` import maps, computed once.

        ``modules`` maps local names to module dotted paths
        (``import time as t`` -> ``{"t": "time"}``); ``members`` maps
        names bound by ``from m import n as a`` to ``m.n``.
        """
        if self._aliases is None:
            modules: Dict[str, str] = {}
            members: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname:
                            modules[alias.asname] = alias.name
                        else:
                            root = alias.name.split(".")[0]
                            modules[root] = root
                elif isinstance(node, ast.ImportFrom):
                    if node.module and node.level == 0:
                        for alias in node.names:
                            members[alias.asname or alias.name] = (
                                f"{node.module}.{alias.name}"
                            )
            self._aliases = (modules, members)
        return self._aliases


def resolve_dotted(node: ast.AST, ctx: ModuleContext) -> Optional[str]:
    """Best-effort dotted name of an expression, import-aware.

    ``pc()`` after ``from time import perf_counter as pc`` resolves to
    ``time.perf_counter``; unresolvable shapes (subscripts, calls in the
    chain) return ``None``.
    """
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.reverse()
    modules, members = ctx.aliases()
    base = cur.id
    if base in members:
        return ".".join([members[base], *parts])
    if base in modules:
        return ".".join([modules[base], *parts])
    return ".".join([base, *parts])


class Rule:
    """Base class: subclasses set ``code``/``name`` and implement check()."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code} {self.name}>"


# ----------------------------------------------------------------------
# SL001 -- wall-clock reads
# ----------------------------------------------------------------------
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Top-level directories where wall-clock reads are legitimate (timing
#: harnesses measure the host, not the simulation).
_WALL_CLOCK_EXEMPT_DIRS = frozenset({"benchmarks", "scripts"})


class NoWallClock(Rule):
    code = "SL001"
    name = "no-wall-clock"
    description = (
        "simulated time is the only clock; wall-clock reads make runs "
        "irreproducible and poison the result cache"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _WALL_CLOCK_EXEMPT_DIRS.intersection(ctx.fs_parts):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, ctx)
            if dotted in _WALL_CLOCK:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read `{dotted}()` -- simulation code must "
                    f"only observe simulated time",
                )


# ----------------------------------------------------------------------
# SL002 -- global / unseeded randomness
# ----------------------------------------------------------------------
class NoGlobalRandom(Rule):
    code = "SL002"
    name = "no-global-random"
    description = (
        "all stochastic choices must flow through DeterministicRNG "
        "(repro/sim/rng.py); the global `random` module and "
        "`numpy.random` carry hidden process-wide state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"import of `{alias.name}` -- use "
                            f"repro.sim.rng.DeterministicRNG instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue
                mod = node.module or ""
                if mod == "random" or mod.startswith("numpy.random"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"import from `{mod}` -- use "
                        f"repro.sim.rng.DeterministicRNG instead",
                    )
                elif mod == "numpy" and any(
                    a.name == "random" for a in node.names
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "import of `numpy.random` -- use "
                        "repro.sim.rng.DeterministicRNG instead",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = resolve_dotted(node, ctx)
                if dotted is not None and (
                    dotted == "numpy.random"
                    or dotted.startswith("numpy.random.")
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"use of `{dotted}` -- numpy's global RNG is "
                        f"process-wide mutable state",
                    )


# ----------------------------------------------------------------------
# SL003 -- hash-ordered iteration in scheduling modules
# ----------------------------------------------------------------------
_SCHEDULE_NAMES = frozenset(
    {
        "schedule",
        "schedule_at",
        "schedule_cancellable",
        "schedule_cancellable_at",
    }
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _callee_terminal(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _module_schedules(ctx: ModuleContext) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            if _callee_terminal(node.func) in _SCHEDULE_NAMES:
                return True
    return False


def _is_set_annotation(annotation: ast.expr) -> bool:
    """True for ``Set[...]``/``set[...]``/``FrozenSet[...]`` annotations."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = _callee_terminal(target)
    return name in ("Set", "set", "FrozenSet", "frozenset", "AbstractSet")


def _set_bound_names(tree: ast.Module) -> Set[str]:
    """Names bound to set expressions anywhere in the module (coarse).

    Tracks both plain names (``live = set()``) and attribute names
    (``self._parked = set()`` records ``_parked``), plus names whose
    annotation is ``Set[...]``.  Attribute tracking is name-based, not
    object-based, which errs on the side of flagging.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value, ()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
        elif isinstance(node, ast.AnnAssign) and _is_set_annotation(
            node.annotation
        ):
            name = _callee_terminal(node.target)
            if name is not None:
                names.add(name)
        elif isinstance(node, ast.arg) and node.annotation is not None:
            if _is_set_annotation(node.annotation):
                names.add(node.arg)
    return names


def _is_set_expr(node: ast.expr, set_names: "Set[str] | Tuple[()]") -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = _callee_terminal(node.func)
        if isinstance(node.func, ast.Name) and callee in (
            "set",
            "frozenset",
        ):
            return True
        if isinstance(node.func, ast.Attribute) and callee in _SET_METHODS:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Attribute) and node.attr in set_names:
        return True
    return False


class NoHashOrderIteration(Rule):
    code = "SL003"
    name = "no-hash-order-iteration"
    description = (
        "modules that schedule events must never iterate sets directly: "
        "hash order would feed event order; wrap in sorted() or keep an "
        "explicit list"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _module_schedules(ctx):
            return
        set_names = _set_bound_names(ctx.tree)
        iterables: List[ast.expr] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iterables.extend(gen.iter for gen in node.generators)
        for it in iterables:
            if _is_set_expr(it, set_names):
                yield (
                    it.lineno,
                    it.col_offset,
                    "iteration over a set in a scheduling module -- hash "
                    "order must never influence event order; use sorted() "
                    "or an insertion-ordered structure",
                )


# ----------------------------------------------------------------------
# SL004 -- float arithmetic on time-named variables
# ----------------------------------------------------------------------
_TIME_NAME = re.compile(
    r"(?:^|_)(?:now|time|cycles?|delay|latency|deadline|until)$"
)
#: Names that *mention* time units but hold ratios/bandwidths, not times.
_TIME_NAME_EXCLUDE = re.compile(
    r"(?:^|_)per(?:_|$)|frac|ratio|rate|util|avg|mean|weight"
)

#: Calls that launder their arguments back to int.
_INT_LAUNDER = frozenset(
    {"int", "floor", "ceil", "round", "trunc", "len", "index"}
)

_SL004_DIRS = ("repro/sim/", "repro/bridge/", "repro/links/")


def _is_time_name(name: str) -> bool:
    return bool(_TIME_NAME.search(name)) and not _TIME_NAME_EXCLUDE.search(
        name
    )


def _has_float_arith(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        if _callee_terminal(node.func) in _INT_LAUNDER:
            return False
        return any(_has_float_arith(a) for a in node.args)
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _has_float_arith(node.left) or _has_float_arith(node.right)
    if isinstance(node, ast.UnaryOp):
        return _has_float_arith(node.operand)
    if isinstance(node, ast.IfExp):
        return _has_float_arith(node.body) or _has_float_arith(node.orelse)
    return False


class NoFloatTime(Rule):
    code = "SL004"
    name = "no-float-time"
    description = (
        "simulated time is integer cycles; float arithmetic on "
        "cycle/time-named variables accumulates rounding drift that "
        "breaks bit-identical replays"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(_SL004_DIRS):
            return
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr]
            value: Optional[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.op, ast.Div):
                    targets, value = [node.target], None
                    for target in targets:
                        name = self._target_name(target)
                        if name and _is_time_name(name):
                            yield (
                                node.lineno,
                                node.col_offset,
                                f"true division into time-named "
                                f"`{name}` -- simulated time must stay "
                                f"integral (use //)",
                            )
                    continue
                targets, value = [node.target], node.value
            else:
                continue
            if value is None or not _has_float_arith(value):
                continue
            for target in targets:
                name = self._target_name(target)
                if name and _is_time_name(name):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"float arithmetic assigned to time-named "
                        f"`{name}` -- simulated time must stay integral "
                        f"(wrap in int()/math.ceil())",
                    )

    @staticmethod
    def _target_name(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None


# ----------------------------------------------------------------------
# SL005 -- mutable default args in Component subclasses
# ----------------------------------------------------------------------
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "bytearray", "Counter"}
)


def _is_component_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        terminal = _callee_terminal(base)
        if terminal is not None and terminal.endswith("Component"):
            return True
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        return _callee_terminal(node.func) in _MUTABLE_CALLS
    return False


class NoMutableComponentDefaults(Rule):
    code = "SL005"
    name = "no-mutable-component-defaults"
    description = (
        "a mutable default on a Component method is shared across every "
        "instance of that component -- cross-bank state bleeds between "
        "units and ruins run isolation"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_component_class(node):
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                defaults = list(item.args.defaults) + [
                    d for d in item.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield (
                            default.lineno,
                            default.col_offset,
                            f"mutable default argument on "
                            f"`{node.name}.{item.name}` -- shared across "
                            f"all instances; default to None and "
                            f"allocate inside",
                        )


# ----------------------------------------------------------------------
# SL006 -- schedule lambdas closing over loop variables
# ----------------------------------------------------------------------
def _loop_target_names(target: ast.expr) -> Set[str]:
    return {
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    }


def _lambda_free_names(node: ast.Lambda) -> Set[str]:
    params = {a.arg for a in node.args.args}
    params.update(a.arg for a in node.args.posonlyargs)
    params.update(a.arg for a in node.args.kwonlyargs)
    if node.args.vararg:
        params.add(node.args.vararg.arg)
    if node.args.kwarg:
        params.add(node.args.kwarg.arg)
    loads = {
        n.id
        for n in ast.walk(node.body)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }
    return loads - params


class _LoopLambdaVisitor(ast.NodeVisitor):
    def __init__(self) -> None:
        self.loop_stack: List[Set[str]] = []
        self.findings: List[Finding] = []

    def visit_For(self, node: ast.For) -> None:
        self.loop_stack.append(_loop_target_names(node.target))
        for child in node.body:
            self.visit(child)
        self.loop_stack.pop()
        for child in node.orelse:
            self.visit(child)

    def _visit_comp(self, node: ast.expr, elts: List[ast.expr]) -> None:
        names: Set[str] = set()
        for gen in node.generators:  # type: ignore[attr-defined]
            self.visit(gen.iter)
            names |= _loop_target_names(gen.target)
        self.loop_stack.append(names)
        for e in elts:
            self.visit(e)
        self.loop_stack.pop()

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, [node.elt])

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, [node.elt])

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, [node.elt])

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, [node.key, node.value])

    def visit_Call(self, node: ast.Call) -> None:
        if self.loop_stack and (
            _callee_terminal(node.func) in _SCHEDULE_NAMES
        ):
            active: Set[str] = set()
            for names in self.loop_stack:
                active |= names
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if not isinstance(arg, ast.Lambda):
                    continue
                captured = _lambda_free_names(arg) & active
                if captured:
                    names_str = ", ".join(sorted(captured))
                    self.findings.append(
                        (
                            arg.lineno,
                            arg.col_offset,
                            f"schedule callback closes over loop "
                            f"variable(s) {names_str} -- lambdas bind "
                            f"late, so every callback would see the "
                            f"final iteration's value; bind by default "
                            f"arg (lambda {names_str}={names_str}: ...)",
                        )
                    )
        self.generic_visit(node)


class NoLateBindingCallback(Rule):
    code = "SL006"
    name = "no-late-binding-callback"
    description = (
        "a lambda scheduled inside a loop that reads the loop variable "
        "runs after the loop finished -- every callback sees the last "
        "value, silently corrupting per-iteration work"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        visitor = _LoopLambdaVisitor()
        visitor.visit(ctx.tree)
        yield from visitor.findings


# ----------------------------------------------------------------------
# SL007 -- builtin hash() feeding order- or key-sensitive code
# ----------------------------------------------------------------------
class NoBuiltinHash(Rule):
    code = "SL007"
    name = "no-builtin-hash"
    description = (
        "builtin hash() on str/bytes is salted per process "
        "(PYTHONHASHSEED); the exec runner fans cells out to worker "
        "processes, so hash()-derived values diverge between runs -- "
        "use hashlib or repro.sim.rng derivation instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "builtin hash() is salted per process -- derive keys "
                    "with hashlib (see repro.sim.rng._derive) so workers "
                    "and cache hits agree",
                )


# ----------------------------------------------------------------------
# SL008 -- builtin id() in sort keys or comparisons
# ----------------------------------------------------------------------
_SL008_DIRS = ("repro/sim/", "repro/bridge/")
_SORT_CALLEES = frozenset({"sorted", "min", "max", "sort"})


def _id_calls(node: ast.AST) -> Iterator[ast.Call]:
    for n in ast.walk(node):
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "id"
        ):
            yield n


class NoIdOrdering(Rule):
    code = "SL008"
    name = "no-id-ordering"
    description = (
        "builtin id() is an allocation address: it differs across "
        "processes and runs, so an id()-based sort key or comparison "
        "lets memory layout feed ordering decisions (same family as "
        "SL007 hash()); use explicit sequence numbers or stable fields"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(_SL008_DIRS):
            return
        seen: Set[Tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _callee_terminal(node.func) in _SORT_CALLEES
            ):
                for kw in node.keywords:
                    if kw.arg != "key":
                        continue
                    for call in _id_calls(kw.value):
                        where = (call.lineno, call.col_offset)
                        if where in seen:
                            continue
                        seen.add(where)
                        yield (
                            call.lineno,
                            call.col_offset,
                            "id() in a sort key -- object addresses "
                            "differ across processes/runs, so the order "
                            "is irreproducible; sort by a sequence "
                            "number or stable field",
                        )
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                # Only *ordering* comparisons: identity/membership tests
                # (==, is, in) on id() are address-stable within a run.
                for operand in [node.left, *node.comparators]:
                    for call in _id_calls(operand):
                        where = (call.lineno, call.col_offset)
                        if where in seen:
                            continue
                        seen.add(where)
                        yield (
                            call.lineno,
                            call.col_offset,
                            "id() in a comparison -- object addresses "
                            "differ across processes/runs; compare "
                            "sequence numbers or stable fields instead",
                        )


RULES: Tuple[Rule, ...] = (
    NoWallClock(),
    NoGlobalRandom(),
    NoHashOrderIteration(),
    NoFloatTime(),
    NoMutableComponentDefaults(),
    NoLateBindingCallback(),
    NoBuiltinHash(),
    NoIdOrdering(),
)

RULE_CODES: frozenset = frozenset(rule.code for rule in RULES)
