"""Sanctioned exceptions to the simlint rules.

Every entry names one (rule, module) pair and must carry a written
justification -- the checker refuses empty ones at import time.  Prefer a
per-line ``# simlint: ignore[RULE]`` for one-off sites; the allowlist is
for modules whose *purpose* is the exception (e.g. the RNG facade is the
one place allowed to import ``random``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .rules import RULE_CODES


@dataclass(frozen=True)
class AllowlistEntry:
    """One sanctioned (rule, module) pair."""

    rule: str
    #: Module path relative to the package root, e.g. "repro/sim/rng.py".
    module: str
    justification: str


ALLOWLIST: Tuple[AllowlistEntry, ...] = (
    AllowlistEntry(
        rule="SL002",
        module="repro/sim/rng.py",
        justification=(
            "the sanctioned randomness facade: wraps random.Random behind "
            "seeded, named DeterministicRNG streams; every other module "
            "must go through it"
        ),
    ),
)


def _validate() -> None:
    seen = set()
    for entry in ALLOWLIST:
        if entry.rule not in RULE_CODES:
            raise ValueError(
                f"allowlist names unknown rule {entry.rule!r}"
            )
        if not entry.justification.strip():
            raise ValueError(
                f"allowlist entry ({entry.rule}, {entry.module}) has no "
                f"justification -- every sanctioned site must say why"
            )
        key = (entry.rule, entry.module)
        if key in seen:
            raise ValueError(f"duplicate allowlist entry {key}")
        seen.add(key)


_validate()


def is_allowlisted(rule: str, module_path: str) -> bool:
    """True if ``rule`` is sanctioned for the module at ``module_path``."""
    return any(
        entry.rule == rule and entry.module == module_path
        for entry in ALLOWLIST
    )
