"""``python -m repro.race`` -- the simrace command line.

Static mode follows the ``repro.lint`` / ``repro.flow`` / ``repro.state``
conventions: exit 0 when clean, 1 when findings survive suppression, 2
on usage errors; ``--format sarif`` emits SARIF 2.1.0 for CI
annotation.  ``--fuzz APP`` switches to the runtime race detector: a
seeded interleaving fuzz of one (app, design, shards) cell, exiting 1
if any interleaving changes the per-shard state digests (CI runs this
as the race-detector smoke).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from ..lint.sarif import sarif_report
from .checker import analyze_paths
from .rules import RACE_RULES


def _list_rules() -> str:
    lines = ["simrace rules:"]
    for rule in RACE_RULES:
        lines.append(f"  {rule.code}  {rule.name}")
        lines.append(f"         {rule.description}")
    lines.append("")
    lines.append(
        "suppress a single line with `# simrace: ignore[RC001]` "
        "(comma-separate codes; bare `# simrace: ignore` silences all)"
    )
    return "\n".join(lines)


def _run_fuzz(args: argparse.Namespace) -> int:
    from ..config import Design
    from ..config.presets import scaled_config
    from .detector import RaceError, detect_races

    config = scaled_config(args.units, design=Design(args.design.upper()))
    try:
        report = detect_races(
            args.fuzz, config, shards=args.shards,
            seeds=tuple(range(1, args.seeds + 1)), scale=args.scale,
            seed=args.seed, parallel_also=args.forked,
        )
    except RaceError as exc:  # pragma: no cover - detect_races reports
        print(f"simrace: {exc}")
        return 1
    print(
        f"simrace fuzz: {args.fuzz} x {args.design.upper()} "
        f"shards={args.shards} seeds={report.seeds} runs={report.runs}"
    )
    for shard_id, digest in enumerate(report.canonical_digests):
        print(f"  shard {shard_id}: {digest[:16]}")
    if report.ok:
        print("simrace fuzz: bit-identical across every interleaving")
        return 0
    for mismatch in report.mismatches:
        print(f"simrace fuzz: {mismatch}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.race",
        description=(
            "simrace: shard-isolation static analysis (RC001-RC005) and "
            "the deterministic interleaving race detector for the "
            "sharded engine"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table, then exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    fuzz = parser.add_argument_group("runtime race detector")
    fuzz.add_argument(
        "--fuzz",
        metavar="APP",
        default=None,
        help="fuzz interleavings of APP instead of static analysis",
    )
    fuzz.add_argument(
        "--design", default="O", help="design letter (default: O)"
    )
    fuzz.add_argument(
        "--units", type=int, default=128,
        help="total NDP units (default: 128)",
    )
    fuzz.add_argument(
        "--shards", type=int, default=2, help="shard count (default: 2)"
    )
    fuzz.add_argument(
        "--seeds", type=int, default=3,
        help="number of interleaving seeds (default: 3)",
    )
    fuzz.add_argument(
        "--scale", type=float, default=0.1,
        help="workload scale (default: 0.1)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=7, help="workload seed (default: 7)"
    )
    fuzz.add_argument(
        "--forked",
        action="store_true",
        help="also compare one forked-parallel run against canonical",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.fuzz is not None:
        return _run_fuzz(args)

    diagnostics = analyze_paths(args.paths)

    if args.format == "sarif":
        text = json.dumps(
            sarif_report(diagnostics, RACE_RULES, "simrace"), indent=2
        )
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 1 if diagnostics else 0

    body = "\n".join(diag.format() for diag in diagnostics)
    if args.output:
        Path(args.output).write_text(
            body + ("\n" if body else ""), encoding="utf-8"
        )
    elif body:
        print(body)
    if not args.quiet:
        total = len(diagnostics)
        if total:
            print(
                f"simrace: {total} finding(s) ({len(RACE_RULES)} rules)"
            )
        else:
            print(f"simrace: clean -- {len(RACE_RULES)} rules")
    return 1 if diagnostics else 0
