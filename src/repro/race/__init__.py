"""simrace -- shard-isolation static analysis + deterministic race
detection for the sharded engine.

Two halves:

* **Static** (``python -m repro.race src``): rules RC001--RC005 over the
  tree (:mod:`repro.race.rules`), sharing simlint's finding model,
  suppression syntax (``# simrace: ignore[RC001]``), justified allowlist
  (:mod:`repro.race.allowlist`), and SARIF output.  The env-knob
  registry the rules enforce lives in :mod:`repro.race.fingerprints`.
* **Runtime** (:mod:`repro.race.detector`, imported lazily -- it pulls
  in the whole NDP model): a seeded interleaving fuzzer proving
  bit-identical state digests against canonical execution order, plus
  the :mod:`repro.race.ledger` boundary hash ledger that
  ``ForkTransport`` engages under ``NDPBRIDGE_SANITIZE=1``.
"""

from .checker import analyze_paths, race_file, race_source
from .fingerprints import ENV_REGISTRY, EnvKnob
from .rules import RACE_RULE_CODES, RACE_RULES

__all__ = [
    "ENV_REGISTRY",
    "EnvKnob",
    "RACE_RULES",
    "RACE_RULE_CODES",
    "analyze_paths",
    "race_file",
    "race_source",
]
