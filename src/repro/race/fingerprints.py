"""The declared environment-knob registry (RC003's source of truth).

PR 6 shipped a real cache-poisoning hazard: ``NDPBRIDGE_SHARDS`` could
route a cell onto the sharded engine while the cache key still described
a serial run.  The fix pinned the knob into the cell key -- but nothing
stopped the *next* knob from repeating the mistake.  This registry turns
that one-off fix into an enforced invariant:

* every ``os.environ`` / ``os.getenv`` read in the tree must name a knob
  declared here (simrace rule RC003 fails the build otherwise), and
* every knob declared ``fingerprinted`` must map to a field of the cache
  key -- :mod:`repro.exec.cache` cross-checks the mapping at import time,
  so the registry and the key can never drift apart.

A knob is ``fingerprinted`` when its value can change simulation
*results* (it must be part of the cache key) and ``execution_only`` when
it can only change *how* the same results are computed (worker counts,
cache location, audit modes); execution-only entries carry a written
justification, same contract as the analyzer allowlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "ENV_REGISTRY",
    "EnvKnob",
    "fingerprint_field_of",
    "fingerprinted_knobs",
    "is_registered",
    "registered_names",
]


@dataclass(frozen=True)
class EnvKnob:
    """One declared environment knob."""

    name: str
    #: "fingerprinted" (result-affecting; must be in the cache key) or
    #: "execution_only" (cannot change results; justification required).
    kind: str
    #: The cache-key field that carries the knob's effect
    #: (fingerprinted knobs only; validated against
    #: :data:`repro.exec.cache.CELL_KEY_FIELDS` at import time there).
    field: str = ""
    justification: str = ""


ENV_REGISTRY: Tuple[EnvKnob, ...] = (
    EnvKnob(
        name="NDPBRIDGE_SHARDS",
        kind="fingerprinted",
        field="shards",
        justification=(
            "an N-shard run simulates a different machine (N host-bridged "
            "domains); the cell key carries the resolved shard count and "
            "the partition plan hash, so env-routed sharded runs can "
            "never alias serial cache entries (the PR 6 hazard)"
        ),
    ),
    EnvKnob(
        name="NDPBRIDGE_JOBS",
        kind="execution_only",
        justification=(
            "worker-pool width only: cells are independent deterministic "
            "simulations, so fan-out changes wall-clock, never payloads "
            "(test_exec asserts serial == pooled bit-for-bit)"
        ),
    ),
    EnvKnob(
        name="NDPBRIDGE_CACHE",
        kind="execution_only",
        justification=(
            "enables/disables the result cache; a hit replays the exact "
            "JSON payload the fresh run produced (round-trip asserted), "
            "so presence of the cache cannot change any result"
        ),
    ),
    EnvKnob(
        name="NDPBRIDGE_CACHE_DIR",
        kind="execution_only",
        justification=(
            "relocates the cache directory; contents are keyed by the "
            "full result fingerprint, so the location carries no "
            "result-affecting information"
        ),
    ),
    EnvKnob(
        name="NDPBRIDGE_SANITIZE",
        kind="execution_only",
        justification=(
            "audit-only mode: conservation ledgers, dispatch-order "
            "checks, and the boundary hash ledger observe the run and "
            "raise on violation; a run that completes is bit-identical "
            "with the sanitizer on or off (CI runs the suite both ways)"
        ),
    ),
)


def _validate() -> None:
    seen = set()
    for knob in ENV_REGISTRY:
        if knob.kind not in ("fingerprinted", "execution_only"):
            raise ValueError(
                f"env registry entry {knob.name}: unknown kind {knob.kind!r}"
            )
        if knob.kind == "fingerprinted" and not knob.field:
            raise ValueError(
                f"env registry entry {knob.name}: fingerprinted knobs must "
                f"name the cache-key field that carries them"
            )
        if not knob.justification.strip():
            raise ValueError(
                f"env registry entry {knob.name} has no justification -- "
                f"every declared knob must say why its kind is safe"
            )
        if knob.name in seen:
            raise ValueError(f"duplicate env registry entry {knob.name}")
        seen.add(knob.name)


_validate()


def registered_names() -> Tuple[str, ...]:
    """Every declared knob name, in registry order."""
    return tuple(knob.name for knob in ENV_REGISTRY)


def is_registered(name: str) -> bool:
    return any(knob.name == name for knob in ENV_REGISTRY)


def fingerprinted_knobs() -> Tuple[EnvKnob, ...]:
    """The result-affecting knobs (each must map to a cache-key field)."""
    return tuple(k for k in ENV_REGISTRY if k.kind == "fingerprinted")


def fingerprint_field_of() -> Dict[str, str]:
    """``{knob name: cache-key field}`` for the fingerprinted knobs."""
    return {k.name: k.field for k in fingerprinted_knobs()}
