"""simrace orchestration: parse, run RC rules, apply suppressions.

Reuses simlint's :class:`~repro.lint.checker.Diagnostic` and suppression
machinery with ``tool="simrace"``::

    from ..exec.shardpool import X   # simrace: ignore[RC001] why...

Module-wide sanctioned sites live in :mod:`repro.race.allowlist`.
Unlike simflow/simstate, the RC rules are per-module passes (like
simlint), so the checker is a straight file loop.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..lint.checker import (
    Diagnostic,
    is_suppressed,
    iter_python_files,
    module_path_of,
    suppressed_lines,
)
from ..lint.rules import ModuleContext
from .allowlist import is_allowlisted
from .rules import RACE_RULES

__all__ = ["analyze_paths", "race_file", "race_source"]


def race_source(
    source: str,
    path: Union[str, Path] = "<string>",
    module_path: Optional[str] = None,
) -> List[Diagnostic]:
    """Analyse one module's source text with the RC rules.

    ``module_path`` overrides the package-relative path used for rule
    scoping and the allowlist (tests use this to place fixture snippets
    in a virtual location like ``repro/sim/partition.py``).
    """
    path = Path(path)
    if module_path is None:
        module_path = module_path_of(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="RC000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        tree=tree,
        module_path=module_path,
        fs_parts=tuple(Path(path).parts),
    )
    suppressed = suppressed_lines(source, tool="simrace")
    diagnostics: List[Diagnostic] = []
    for rule in RACE_RULES:
        if is_allowlisted(rule.code, module_path):
            continue
        for line, col, message in rule.check(ctx):
            if is_suppressed(suppressed, line, rule.code):
                continue
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=line,
                    col=col,
                    rule=rule.code,
                    message=message,
                )
            )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diagnostics


def race_file(path: Union[str, Path]) -> List[Diagnostic]:
    """Analyse one file on disk."""
    path = Path(path)
    return race_source(path.read_text(encoding="utf-8"), path)


def analyze_paths(paths: Sequence[Union[str, Path]]) -> List[Diagnostic]:
    """Analyse every .py file under ``paths`` (dirs recursed, sorted)."""
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        diagnostics.extend(race_file(path))
    return diagnostics
