"""Boundary-crossing hash ledger for the fork transport.

Under ``NDPBRIDGE_SANITIZE=1`` each end of a shard worker's pipe keeps
two running sha256 digests -- everything it sent and everything it
received, hashed over a canonical encoding of each command/reply tuple.
At worker shutdown the worker ships its digests back and the parent
cross-checks::

    parent.sent     == worker.received
    parent.received == worker.sent

A match *proves* both sides observed identical payload streams, in
identical order, with identical contents -- any corruption, reordering,
or out-of-band traffic on the pipe surfaces as a
:class:`LedgerMismatch` instead of a silently diverged simulation.

The encoding is canonical JSON (sorted keys, dataclasses by field,
sets sorted, everything else by ``repr``) rather than raw pickle bytes:
pickle's memo stream depends on object *identity* -- two equal strings
pickle differently depending on whether they are the same object, and
CPython interns small strings during unpickling -- so the sender's
bytes and the receiver's re-pickled bytes can legitimately differ for
equal values.  The canonical form hashes values, not identities, and is
therefore stable across the pipe round-trip.  Stdlib-only on purpose:
the fork transport imports this lazily without pulling in the model.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Tuple

__all__ = ["BoundaryLedger", "LedgerMismatch", "check_ledgers"]


def _encode(obj: object) -> object:
    """``json.dumps`` fallback: identity-free forms for non-JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(x) for x in obj)
    if isinstance(obj, (bytes, bytearray)):
        return obj.hex()
    return repr(obj)


def canonical_blob(obj: object) -> bytes:
    """Deterministic, identity-free serialization of one message."""
    return json.dumps(obj, sort_keys=True, default=_encode).encode()


class LedgerMismatch(RuntimeError):
    """The two ends of a shard pipe observed different payload streams."""


class BoundaryLedger:
    """Running digests of one pipe end's sent/received streams."""

    def __init__(self) -> None:
        self._sent = hashlib.sha256()
        self._received = hashlib.sha256()
        self.sent_count = 0
        self.received_count = 0

    def note_sent(self, obj: object) -> None:
        self._sent.update(canonical_blob(obj))
        self.sent_count += 1

    def note_received(self, obj: object) -> None:
        self._received.update(canonical_blob(obj))
        self.received_count += 1

    def digests(self) -> Tuple[str, str, int, int]:
        """(sent digest, received digest, sent count, received count)."""
        return (
            self._sent.hexdigest(),
            self._received.hexdigest(),
            self.sent_count,
            self.received_count,
        )


def check_ledgers(
    shard_id: int,
    parent: Tuple[str, str, int, int],
    worker: Tuple[str, str, int, int],
) -> None:
    """Cross-check the two ends of one shard pipe; raise on mismatch.

    ``parent``/``worker`` are :meth:`BoundaryLedger.digests` tuples.
    """
    p_sent, p_recv, p_ns, p_nr = parent
    w_sent, w_recv, w_ns, w_nr = worker
    problems = []
    if (p_sent, p_ns) != (w_recv, w_nr):
        problems.append(
            f"parent sent {p_ns} message(s) [{p_sent[:16]}] but worker "
            f"received {w_nr} [{w_recv[:16]}]"
        )
    if (p_recv, p_nr) != (w_sent, w_ns):
        problems.append(
            f"worker sent {w_ns} message(s) [{w_sent[:16]}] but parent "
            f"received {p_nr} [{p_recv[:16]}]"
        )
    if problems:
        raise LedgerMismatch(
            f"shard {shard_id} boundary ledger mismatch -- the two pipe "
            f"ends observed different payload streams: "
            + "; ".join(problems)
        )
