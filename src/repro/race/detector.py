"""Deterministic race detector: seeded interleaving fuzzing of the
sharded engine.

The conservative-window engine promises that per-shard execution order
within a window is *free*: shards only interact through boundary
messages, and barrier delivery imposes a total order
(``(deliver_time, src_shard, seq)``), so any interleaving the engine is
allowed to choose must produce bit-identical results.  This module
turns that promise into a checked property:

1. run the shard set in canonical order and digest every shard's final
   state (:func:`repro.state.snapshot` ``manifest_digest`` for NDP
   runtimes, a canonical payload hash for toys);
2. re-run under a :class:`FuzzedInlineTransport` that -- driven by a
   seeded :class:`~repro.sim.rng.DeterministicRNG` -- permutes the
   per-shard execution order of every barrier broadcast and shuffles
   each report's outbox accumulation order (the delivery-jitter axis:
   the engine must re-impose its total order, never inherit one);
3. assert the digests, payloads, and merged metrics are bit-identical.

Both fuzz axes are *provably* behaviour-preserving for a correctly
isolated model, so any divergence is a real race: hidden cross-shard
state, order-dependent accumulation, or a non-total delivery sort.  A
mismatch raises :class:`RaceError` naming the diverging shards.

The fuzzer drives real runs, so it lives behind explicit entry points
(``python -m repro.race --fuzz APP``, the sanitize-gated CI smoke, and
the property tests) rather than inside the simulation fast path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, \
    Tuple

from ..sim.rng import DeterministicRNG
from ..sim.sharded import (
    ControlDecision,
    Policy,
    ShardReport,
    ShardRuntime,
    ShardedResult,
    ShardedSimulator,
    _InlineTransport,
)

if TYPE_CHECKING:
    from ..config import SystemConfig
    from ..sim.sharded import BoundaryMessage

__all__ = [
    "DigestingBuilder",
    "FuzzedInlineTransport",
    "RaceCheckReport",
    "RaceError",
    "assert_no_races",
    "detect_races",
    "fuzz_run",
    "run_with_digests",
]


class RaceError(RuntimeError):
    """An interleaving changed results: the shard set hides a race."""


# ----------------------------------------------------------------------
# State digests
# ----------------------------------------------------------------------
def _payload_digest(payload: Dict[str, object]) -> str:
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


class DigestingRuntime(ShardRuntime):
    """Wraps any shard runtime, stamping a state digest into finalize.

    NDP runtimes (anything with a ``.system``) are digested through the
    snapshot manifest -- the same symbolic state fingerprint the
    checkpoint subsystem proves bit-identity with.  Toys without a
    system digest their own finalize payload instead.
    """

    def __init__(self, inner: ShardRuntime) -> None:
        self.inner = inner
        self.shard_id = inner.shard_id

    def begin(self) -> ShardReport:
        return self.inner.begin()

    def run_window(
        self, until: int, inbox: "Sequence[BoundaryMessage]"
    ) -> ShardReport:
        return self.inner.run_window(until, inbox)

    def apply_control(self, decision: ControlDecision) -> ShardReport:
        return self.inner.apply_control(decision)

    def run_complete(self) -> None:
        self.inner.run_complete()

    def finalize(self) -> Dict[str, object]:
        digest: Optional[str] = None
        system = getattr(self.inner, "system", None)
        if system is not None:
            from ..state.snapshot import snapshot

            # Digest *before* finalize: the manifest captures the live
            # end-of-run state (queues drained, counters final) at the
            # same point in every execution.
            digest = snapshot(
                system, getattr(self.inner, "app", None)
            ).manifest_digest()
        payload = self.inner.finalize()
        if digest is None:
            digest = _payload_digest(payload)
        payload["state_digest"] = digest
        return payload


@dataclass(frozen=True)
class DigestingBuilder:
    """Picklable digesting wrapper around any shard builder."""

    inner: Callable[[], ShardRuntime]

    def __call__(self) -> DigestingRuntime:
        return DigestingRuntime(self.inner())


# ----------------------------------------------------------------------
# The fuzzed transport
# ----------------------------------------------------------------------
class FuzzedInlineTransport(_InlineTransport):
    """Inline transport that permutes every legal scheduling freedom.

    Per barrier broadcast it executes the shards in a seeded random
    order, and it shuffles each report's outbox tuple before handing it
    to the engine.  Reports stay in shard-index *positions* (the engine
    indexes them by shard), only the execution interleaving and the
    outbox accumulation order change -- exactly the freedoms the
    conservative-window proof says are unobservable.
    """

    def __init__(
        self,
        builders: Sequence[Callable[[], ShardRuntime]],
        fuzz_seed: int,
    ) -> None:
        super().__init__(builders)
        self._rng = DeterministicRNG(fuzz_seed, "race/interleave")

    def _order(self, n: int) -> List[int]:
        order = list(range(n))
        self._rng.shuffle(order)
        return order

    def _jitter(self, report: ShardReport) -> ShardReport:
        if len(report.outbox) < 2:
            return report
        outbox = list(report.outbox)
        self._rng.shuffle(outbox)
        return replace(report, outbox=tuple(outbox))

    def _permuted(
        self, calls: List[Callable[[], ShardReport]]
    ) -> List[ShardReport]:
        out: List[Optional[ShardReport]] = [None] * len(calls)
        for i in self._order(len(calls)):
            out[i] = calls[i]()
        return [self._jitter(r) for r in out if r is not None]

    def begin_all(self) -> List[ShardReport]:
        return self._permuted([rt.begin for rt in self._runtimes])

    def window_all(
        self, until: int, inboxes: "Sequence[Sequence[BoundaryMessage]]"
    ) -> List[ShardReport]:
        import functools

        return self._permuted(
            [
                functools.partial(rt.run_window, until, inbox)
                for rt, inbox in zip(self._runtimes, inboxes)
            ]
        )

    def control_all(self, decision: ControlDecision) -> List[ShardReport]:
        import functools

        return self._permuted(
            [
                functools.partial(rt.apply_control, decision)
                for rt in self._runtimes
            ]
        )

    def run_complete_all(self) -> None:
        for i in self._order(len(self._runtimes)):
            self._runtimes[i].run_complete()

    def finalize_all(self) -> List[Dict[str, object]]:
        out: List[Optional[Dict[str, object]]] = [None] * len(self._runtimes)
        for i in self._order(len(self._runtimes)):
            out[i] = self._runtimes[i].finalize()
        return [p for p in out if p is not None]


# ----------------------------------------------------------------------
# Runs
# ----------------------------------------------------------------------
def run_with_digests(
    builders: Sequence[Callable[[], ShardRuntime]],
    plan: object,
    *,
    fuzz_seed: Optional[int] = None,
    parallel: bool = False,
    policy: Optional[Policy] = None,
) -> Tuple[ShardedResult, List[str]]:
    """Run a shard set and return per-shard state digests.

    ``fuzz_seed`` switches to the interleaving-fuzzed transport
    (inline only -- the fuzz axes are scheduling freedoms of the
    single-process transport; the forked transport exercises the real
    process interleaving instead).
    """
    if fuzz_seed is not None and parallel:
        raise ValueError("fuzzing permutes the inline transport; "
                         "parallel runs exercise real process order")
    wrapped = [DigestingBuilder(b) for b in builders]
    factory: Optional[
        Callable[[Sequence[Callable[[], ShardRuntime]]], _InlineTransport]
    ] = None
    if fuzz_seed is not None:
        seed = int(fuzz_seed)

        def factory(
            bs: Sequence[Callable[[], ShardRuntime]]
        ) -> _InlineTransport:
            return FuzzedInlineTransport(bs, seed)

    engine = ShardedSimulator(
        wrapped, plan, parallel=parallel, policy=policy,
        transport_factory=factory,
    )
    result = engine.run()
    digests = [str(p["state_digest"]) for p in result.payloads]
    return result, digests


def fuzz_run(
    app: str,
    config: "SystemConfig",
    *,
    shards: int,
    scale: float = 0.1,
    seed: int = 7,
    fuzz_seed: Optional[int] = None,
    parallel: bool = False,
) -> Tuple[object, List[str]]:
    """One digested sharded run of a real NDP app; returns
    ``(RunResult, per-shard digests)``."""
    from ..runtime.shards import (
        NDPShardBuilder,
        finish_sharded_run,
        resolve_shards,
    )
    from ..sim.partition import plan_partition

    plan = plan_partition(config, resolve_shards(config, shards))
    builders = [
        NDPShardBuilder(
            app=app, scale=scale, seed=seed, config=config, plan=plan,
            shard_id=shard_id, verify=False,
        )
        for shard_id in range(plan.shards)
    ]
    result, digests = run_with_digests(
        builders, plan, fuzz_seed=fuzz_seed, parallel=parallel
    )
    run = finish_sharded_run(
        app, config, plan, result, scale=scale, seed=seed
    )
    return run, digests


# ----------------------------------------------------------------------
# Detection
# ----------------------------------------------------------------------
@dataclass
class RaceCheckReport:
    """Outcome of one race-detection sweep over fuzz seeds."""

    app: str
    shards: int
    seeds: Tuple[int, ...]
    canonical_digests: List[str]
    runs: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def _compare(
    label: str,
    canonical_digests: Sequence[str],
    canonical_metrics: Dict[str, object],
    digests: Sequence[str],
    metrics: Dict[str, object],
    mismatches: List[str],
) -> None:
    for shard_id, (want, got) in enumerate(
        zip(canonical_digests, digests)
    ):
        if want != got:
            mismatches.append(
                f"{label}: shard {shard_id} state digest diverged "
                f"({want[:16]} != {got[:16]})"
            )
    if metrics != canonical_metrics:
        keys = sorted(
            k
            for k in set(metrics) | set(canonical_metrics)
            if metrics.get(k) != canonical_metrics.get(k)
        )
        mismatches.append(f"{label}: merged metrics diverged on {keys}")


def detect_races(
    app: str,
    config: "SystemConfig",
    *,
    shards: int,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 0.1,
    seed: int = 7,
    parallel_also: bool = False,
) -> RaceCheckReport:
    """Fuzz one (app, config, shards) cell across interleaving seeds.

    Runs the canonical inline order once, then one fuzzed run per seed
    (and optionally one forked-parallel run), comparing per-shard state
    digests and the merged metrics payload against the canonical run.
    """
    from ..exec.cache import metrics_to_payload

    canonical, canon_digests = fuzz_run(
        app, config, shards=shards, scale=scale, seed=seed
    )
    canon_metrics = metrics_to_payload(canonical.metrics)  # type: ignore[attr-defined]
    report = RaceCheckReport(
        app=app,
        shards=shards,
        seeds=tuple(int(s) for s in seeds),
        canonical_digests=list(canon_digests),
        runs=1,
    )
    for fuzz_seed in report.seeds:
        fuzzed, digests = fuzz_run(
            app, config, shards=shards, scale=scale, seed=seed,
            fuzz_seed=fuzz_seed,
        )
        report.runs += 1
        _compare(
            f"fuzz seed {fuzz_seed}", canon_digests, canon_metrics,
            digests, metrics_to_payload(fuzzed.metrics),  # type: ignore[attr-defined]
            report.mismatches,
        )
    if parallel_also:
        forked, digests = fuzz_run(
            app, config, shards=shards, scale=scale, seed=seed,
            parallel=True,
        )
        report.runs += 1
        _compare(
            "forked transport", canon_digests, canon_metrics,
            digests, metrics_to_payload(forked.metrics),  # type: ignore[attr-defined]
            report.mismatches,
        )
    return report


def assert_no_races(
    app: str,
    config: "SystemConfig",
    *,
    shards: int,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 0.1,
    seed: int = 7,
    parallel_also: bool = False,
) -> RaceCheckReport:
    """:func:`detect_races`, raising :class:`RaceError` on divergence."""
    report = detect_races(
        app, config, shards=shards, seeds=seeds, scale=scale, seed=seed,
        parallel_also=parallel_also,
    )
    if not report.ok:
        raise RaceError(
            f"{app} x {config.design.value} with {report.shards} shards "
            f"is interleaving-dependent:\n  "
            + "\n  ".join(report.mismatches)
        )
    return report
