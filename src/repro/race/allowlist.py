"""Sanctioned exceptions to the simrace rules.

Same contract as the simlint/simstate allowlists: every entry names one
(rule, module) pair and must carry a written justification -- the
checker refuses empty ones at import time.  Prefer a per-line
``# simrace: ignore[RULE]`` for one-off sites; the allowlist is for
modules whose *purpose* is the exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .rules import RACE_RULE_CODES


@dataclass(frozen=True)
class AllowlistEntry:
    """One sanctioned (rule, module) pair."""

    rule: str
    #: Module path relative to the package root, e.g. "repro/sim/sharded.py".
    module: str
    justification: str


ALLOWLIST: Tuple[AllowlistEntry, ...] = (
    AllowlistEntry(
        rule="RC001",
        module="repro/sim/sharded.py",
        justification=(
            "the conservative-window coordinator itself: it owns the "
            "transport seam and is the one module allowed to construct "
            "ForkTransport next to its inline twin -- shard *models* "
            "never see either transport, only the ShardRuntime protocol "
            "the coordinator drives"
        ),
    ),
)


_VALID_CODES = RACE_RULE_CODES | {"RC000"}


def _validate() -> None:
    seen = set()
    for entry in ALLOWLIST:
        if entry.rule not in _VALID_CODES:
            raise ValueError(f"allowlist names unknown rule {entry.rule!r}")
        if not entry.justification.strip():
            raise ValueError(
                f"allowlist entry ({entry.rule}, {entry.module}) has no "
                f"justification -- every sanctioned site must say why"
            )
        key = (entry.rule, entry.module)
        if key in seen:
            raise ValueError(f"duplicate allowlist entry {key}")
        seen.add(key)


_validate()


def is_allowlisted(rule: str, module_path: str) -> bool:
    """True if ``rule`` is sanctioned for the module at ``module_path``."""
    return any(
        entry.rule == rule and entry.module == module_path
        for entry in ALLOWLIST
    )
