"""The simrace rule set: static race/isolation analysis.

The sharded engine's correctness argument has four legs -- shard
isolation, a picklable process boundary, a complete cache fingerprint,
and a sound lookahead.  Each leg is a *convention* today; these rules
make every leg a build failure instead:

* **RC001** shard isolation -- simulation modules may not reach
  cross-shard state except via the declared boundary APIs,
* **RC002** process-boundary payload safety -- nothing unpicklable may
  statically reach ``ForkTransport`` / ``ProcessPoolExecutor``,
* **RC003** cache-fingerprint completeness -- every environment read
  must name a knob declared in :mod:`repro.race.fingerprints`,
* **RC004** lookahead soundness -- the window lookahead must be derived
  from (and never shrink below) the link-latency model,
* **RC005** worker-context independence -- worker-executed modules may
  not observe pid/cwd/start-method/host identity.

Rules reuse simlint's :class:`~repro.lint.rules.ModuleContext` and yield
``(line, col, message)`` findings; suppression (``# simrace:
ignore[RC001]``) and the allowlist are applied by
:mod:`repro.race.checker`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..lint.rules import Finding, ModuleContext, Rule, resolve_dotted
from .fingerprints import is_registered

__all__ = [
    "RACE_RULES",
    "RACE_RULE_CODES",
    "absolute_import_module",
]


def absolute_import_module(
    node: ast.ImportFrom, ctx: ModuleContext
) -> Optional[str]:
    """The absolute dotted module an ``ImportFrom`` targets.

    Unlike :meth:`ModuleContext.aliases`, this resolves *relative*
    imports against the module path (``from ..exec.shardpool import X``
    inside ``repro/sim/sharded.py`` -> ``repro.exec.shardpool``), which
    is exactly the form boundary-crossing imports take in this tree.
    """
    if node.level == 0:
        return node.module
    if not ctx.module_path.endswith(".py"):
        return node.module
    pieces = ctx.module_path[:-3].split("/")
    # The package of the importing module: its directory (for
    # __init__.py, the directory *is* the package).
    pieces = pieces[:-1] if pieces[-1] != "__init__" else pieces[:-1]
    drop = node.level - 1
    if drop >= len(pieces):
        pieces = []
    elif drop:
        pieces = pieces[:-drop]
    base = ".".join(pieces)
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base or None


def _module_is(dotted: Optional[str], tail: Tuple[str, ...]) -> bool:
    """Does ``dotted`` end in the package-qualified ``tail``?"""
    if not dotted:
        return False
    return tuple(dotted.split(".")[-len(tail):]) == tail


def _terminal_name(func: ast.AST) -> Optional[str]:
    """Last identifier of a call target (``a.b.C(...)`` -> ``C``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


# ----------------------------------------------------------------------
# RC001 -- shard isolation
# ----------------------------------------------------------------------
#: Simulation-model packages: everything here runs *inside* one shard
#: and must stay ignorant of sibling shards and the transport layer.
_RC001_SCOPE = (
    "repro/sim/",
    "repro/bridge/",
    "repro/ndp/",
    "repro/balance/",
)
_SHARDPOOL = ("exec", "shardpool")
_SHARDED = ("sim", "sharded")


class ShardIsolation(Rule):
    code = "RC001"
    name = "shard-isolation"
    description = (
        "simulation modules must not reach cross-shard state except via "
        "the declared boundary APIs (ShardAddressMap, the transport's "
        "broadcast protocol); importing exec.shardpool or private "
        "sim.sharded internals from model code collapses the isolation "
        "the conservative-window proof rests on"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(_RC001_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if _module_is(alias.name, _SHARDPOOL):
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"import of transport internals "
                            f"`{alias.name}` from simulation module "
                            f"{ctx.module_path} -- only the coordinator "
                            f"may touch the fork transport",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = absolute_import_module(node, ctx)
                if _module_is(target, _SHARDPOOL):
                    names = ", ".join(a.name for a in node.names)
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"import of `{names}` from transport module "
                        f"`{target}` in simulation module "
                        f"{ctx.module_path} -- cross-shard state is only "
                        f"reachable via the declared boundary APIs",
                    )
                elif _module_is(target, _SHARDED):
                    private = [
                        a.name
                        for a in node.names
                        if a.name == "*" or a.name.startswith("_")
                    ]
                    if private:
                        yield (
                            node.lineno,
                            node.col_offset,
                            f"import of coordinator internals "
                            f"`{', '.join(private)}` from `{target}` -- "
                            f"simulation modules may only use the public "
                            f"shard protocol (ShardRuntime, "
                            f"BoundaryMessage, ...)",
                        )


# ----------------------------------------------------------------------
# RC002 -- process-boundary payload safety
# ----------------------------------------------------------------------
_BOUNDARY_CONSTRUCTORS = frozenset({"ForkTransport", "ProcessPoolExecutor"})
_POOL_METHODS = frozenset({"submit", "map"})
_PROCESS_KEYWORDS = frozenset({"target", "args"})


class PayloadSafety(Rule):
    code = "RC002"
    name = "boundary-payload-safety"
    description = (
        "objects crossing a process boundary (ForkTransport builders, "
        "ProcessPoolExecutor.submit/map arguments, Process targets) must "
        "be picklable, snapshot-clean data -- lambdas, closures, "
        "generators, and open file handles either fail to pickle or "
        "silently capture per-process state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._scan_scope(ctx.tree.body, {}, {}, ctx)

    # -- scope walking -------------------------------------------------
    def _scan_scope(
        self,
        body: Sequence[ast.stmt],
        bindings: Dict[str, str],
        pools: Dict[str, bool],
        ctx: ModuleContext,
        in_function: bool = False,
    ) -> Iterator[Finding]:
        """Walk one lexical scope, tracking unsafe name bindings and
        pool objects, then recurse into nested function scopes with the
        enclosing bindings (closures can reference them)."""
        bindings = dict(bindings)
        pools = dict(pools)
        nested: List[ast.AST] = []
        scope_nodes: List[ast.AST] = []
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                nested.append(stmt)
                continue
            scope_nodes.extend(self._walk_scope(stmt, nested))
        if in_function:
            # A def nested inside a function is a closure candidate;
            # register the name before scanning so forward references
            # inside the same frame are caught too.
            for fn in nested:
                if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    bindings[fn.name] = (
                        f"locally-defined function `{fn.name}` (a closure "
                        f"over the enclosing frame)"
                    )
        for node in scope_nodes:
            self._note_bindings(node, bindings, pools, ctx)
            if isinstance(node, ast.Call):
                yield from self._check_call(node, bindings, pools, ctx)
        for fn in nested:
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan_scope(
                    fn.body, bindings, pools, ctx, in_function=True
                )
            elif isinstance(fn, ast.Lambda):
                # A call inside a lambda body is still a boundary call.
                wrapper = ast.Expr(value=fn.body)
                ast.copy_location(wrapper, fn)
                yield from self._scan_scope(
                    [wrapper], bindings, pools, ctx, in_function=True
                )

    @classmethod
    def _walk_scope(
        cls, node: ast.AST, nested: List[ast.AST]
    ) -> Iterator[ast.AST]:
        """Pre-order, source-order nodes of this scope only; nested
        callables are collected, not entered (they are separate frames)."""
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                nested.append(child)
            else:
                yield from cls._walk_scope(child, nested)

    def _note_bindings(
        self,
        node: ast.AST,
        bindings: Dict[str, str],
        pools: Dict[str, bool],
        ctx: ModuleContext,
    ) -> None:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                reason = self._value_reason(node.value, ctx)
                if reason is not None:
                    bindings[target.id] = reason
                else:
                    bindings.pop(target.id, None)
                if self._is_pool_ctor(node.value, ctx):
                    pools[target.id] = True
                else:
                    pools.pop(target.id, None)
        elif isinstance(node, ast.withitem):
            if isinstance(node.optional_vars, ast.Name):
                name = node.optional_vars.id
                reason = self._value_reason(node.context_expr, ctx)
                if reason is not None:
                    bindings[name] = reason
                if self._is_pool_ctor(node.context_expr, ctx):
                    pools[name] = True

    def _value_reason(
        self, value: ast.AST, ctx: ModuleContext
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            dotted = resolve_dotted(value.func, ctx)
            if dotted in ("open", "io.open", "builtins.open"):
                return "an open file handle"
        return None

    def _is_pool_ctor(self, value: ast.AST, ctx: ModuleContext) -> bool:
        return (
            isinstance(value, ast.Call)
            and _terminal_name(value.func) == "ProcessPoolExecutor"
        )

    # -- boundary-call checking ----------------------------------------
    def _check_call(
        self,
        call: ast.Call,
        bindings: Dict[str, str],
        pools: Dict[str, bool],
        ctx: ModuleContext,
    ) -> Iterator[Finding]:
        label = self._boundary_label(call, pools)
        if label is None:
            return
        exprs: List[ast.AST] = list(call.args)
        for kw in call.keywords:
            if label != "Process(...)" or kw.arg in _PROCESS_KEYWORDS:
                exprs.append(kw.value)
        for expr in exprs:
            for site, reason in self._unsafe(expr, bindings):
                yield (
                    site.lineno,
                    site.col_offset,
                    f"{reason} crosses the process boundary via {label} "
                    f"-- boundary payloads must be picklable plain data "
                    f"(module-level callables, frozen dataclasses)",
                )

    def _boundary_label(
        self, call: ast.Call, pools: Dict[str, bool]
    ) -> Optional[str]:
        terminal = _terminal_name(call.func)
        if terminal in _BOUNDARY_CONSTRUCTORS:
            return f"{terminal}(...)"
        if terminal == "Process":
            return "Process(...)"
        if terminal in _POOL_METHODS and isinstance(call.func, ast.Attribute):
            owner = call.func.value
            if isinstance(owner, ast.Name) and pools.get(owner.id):
                return f"{owner.id}.{terminal}(...)"
            if (
                isinstance(owner, ast.Call)
                and _terminal_name(owner.func) == "ProcessPoolExecutor"
            ):
                return f"ProcessPoolExecutor(...).{terminal}(...)"
        return None

    def _unsafe(
        self, expr: ast.AST, bindings: Dict[str, str]
    ) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(expr, ast.Lambda):
            yield expr, "a lambda"
        elif isinstance(expr, ast.GeneratorExp):
            yield expr, "a generator expression"
        elif isinstance(expr, ast.Name) and expr.id in bindings:
            yield expr, bindings[expr.id]
        elif isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for elt in expr.elts:
                yield from self._unsafe(elt, bindings)
        elif isinstance(expr, ast.ListComp):
            yield from self._unsafe(expr.elt, bindings)
        elif isinstance(expr, ast.Starred):
            yield from self._unsafe(expr.value, bindings)


# ----------------------------------------------------------------------
# RC003 -- cache-fingerprint completeness
# ----------------------------------------------------------------------
_ENV_EXEMPT_DIRS = frozenset({"benchmarks", "scripts", "tests"})


class FingerprintCompleteness(Rule):
    code = "RC003"
    name = "fingerprint-completeness"
    description = (
        "every os.environ/os.getenv read that can influence simulation "
        "results must name a knob declared in repro.race.fingerprints; "
        "the registry maps result-affecting knobs onto cache-key fields "
        "(enforced by repro.exec.cache at import), so an undeclared knob "
        "is a latent cache-poisoning hazard"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _ENV_EXEMPT_DIRS.intersection(ctx.fs_parts):
            return
        if not ctx.module_path.startswith("repro/"):
            return
        for node in ast.walk(ctx.tree):
            name_expr = self._env_read(node, ctx)
            if name_expr is None:
                continue
            if not (
                isinstance(name_expr, ast.Constant)
                and isinstance(name_expr.value, str)
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "environment variable name must be a string literal "
                    "so the fingerprint registry can be checked "
                    "statically",
                )
                continue
            if not is_registered(name_expr.value):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"read of undeclared environment knob "
                    f"{name_expr.value!r} -- declare it in "
                    f"repro/race/fingerprints.py as fingerprinted (cache-"
                    f"key field) or execution_only (with justification)",
                )

    @staticmethod
    def _env_read(node: ast.AST, ctx: ModuleContext) -> Optional[ast.AST]:
        """The env-name expression of an environment read, if any."""
        if isinstance(node, ast.Call):
            dotted = resolve_dotted(node.func, ctx)
            if dotted in ("os.getenv", "os.environ.get") and node.args:
                return node.args[0]
        elif isinstance(node, ast.Subscript):
            if resolve_dotted(node.value, ctx) == "os.environ":
                return node.slice
        return None


# ----------------------------------------------------------------------
# RC004 -- lookahead soundness
# ----------------------------------------------------------------------
#: The modules where lookahead/horizon expressions live.
_RC004_MODULES = ("repro/sim/partition.py", "repro/sim/sharded.py")
#: The latency model in repro/links/link.py: the only sound origins for
#: a lookahead value.
_LATENCY_FUNCS = frozenset({"min_message_latency", "transfer_cycles_for"})


class LookaheadSoundness(Rule):
    code = "RC004"
    name = "lookahead-soundness"
    description = (
        "the conservative-window lookahead must be derived from the "
        "link-latency constants in links/link.py through non-shrinking "
        "arithmetic (+, * by a positive constant, max), and horizon() "
        "must add the full lookahead -- a lookahead that exceeds the "
        "true minimum latency silently desynchronizes shards"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module_path not in _RC004_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "horizon":
                    yield from self._check_horizon(node)
                else:
                    yield from self._check_assignments(node)

    # -- lookahead derivation ------------------------------------------
    def _check_assignments(self, fn: ast.AST) -> Iterator[Finding]:
        derived: set = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if self._is_latency(node.value, derived) and not (
                    self._shrinks(node.value, derived)
                ):
                    derived.add(target.id)
                if target.id == "lookahead":
                    yield from self._judge(node.value, derived, node)
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "lookahead":
                        yield from self._judge(kw.value, derived, kw.value)

    def _judge(
        self, value: ast.AST, derived: set, site: ast.AST
    ) -> Iterator[Finding]:
        lineno = getattr(site, "lineno", 1)
        col = getattr(site, "col_offset", 0)
        if self._shrinks(value, derived):
            yield (
                lineno,
                col,
                "lookahead expression shrinks a latency-derived term "
                "(subtraction/division/min) -- the lookahead may never "
                "undercut the links/link.py bound",
            )
        elif not self._is_latency(value, derived):
            yield (
                lineno,
                col,
                "lookahead is not derived from the link-latency model "
                "(min_message_latency / transfer_cycles_for in "
                "links/link.py) -- a free constant here voids the "
                "conservative-window proof",
            )

    def _is_latency(self, expr: ast.AST, derived: set) -> bool:
        if isinstance(expr, ast.Call):
            terminal = _terminal_name(expr.func)
            if terminal in _LATENCY_FUNCS:
                return True
            if terminal == "max":
                return any(self._is_latency(a, derived) for a in expr.args)
            return False
        if isinstance(expr, ast.Name):
            return expr.id in derived
        if isinstance(expr, ast.Attribute):
            return expr.attr in derived
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Add):
                return self._is_latency(
                    expr.left, derived
                ) or self._is_latency(expr.right, derived)
            if isinstance(expr.op, ast.Mult):
                if self._is_latency(expr.left, derived):
                    return self._grows(expr.right)
                if self._is_latency(expr.right, derived):
                    return self._grows(expr.left)
        return False

    @staticmethod
    def _grows(scale: ast.AST) -> bool:
        """A multiplier provably >= 1 (constant propagation)."""
        return (
            isinstance(scale, ast.Constant)
            and isinstance(scale.value, (int, float))
            and scale.value >= 1
        )

    def _shrinks(self, expr: ast.AST, derived: set) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Sub, ast.Div, ast.FloorDiv, ast.Mod, ast.RShift)
            ):
                if self._is_latency(node.left, derived) or self._is_latency(
                    node.right, derived
                ):
                    return True
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Mult
            ):
                lat_l = self._is_latency(node.left, derived)
                lat_r = self._is_latency(node.right, derived)
                if lat_l and not lat_r and not self._grows(node.right):
                    if isinstance(node.right, ast.Constant):
                        return True
                if lat_r and not lat_l and not self._grows(node.left):
                    if isinstance(node.left, ast.Constant):
                        return True
            elif isinstance(node, ast.Call):
                if _terminal_name(node.func) == "min" and any(
                    self._is_latency(a, derived) for a in node.args
                ):
                    return True
        return False

    # -- horizon bound --------------------------------------------------
    def _check_horizon(self, fn: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if not self._mentions_lookahead(node.value):
                yield (
                    node.lineno,
                    node.col_offset,
                    "horizon() return does not add the declared lookahead "
                    "-- every horizon bound must include the full minimum "
                    "cross-shard latency",
                )
            elif self._shrinks(node.value, {"lookahead"}):
                yield (
                    node.lineno,
                    node.col_offset,
                    "horizon() shrinks the lookahead term -- the window "
                    "bound may never undercut the declared lookahead",
                )

    @staticmethod
    def _mentions_lookahead(expr: ast.AST) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and node.attr == "lookahead":
                return True
            if isinstance(node, ast.Name) and node.id == "lookahead":
                return True
        return False


# ----------------------------------------------------------------------
# RC005 -- worker-context independence
# ----------------------------------------------------------------------
#: Worker-executed packages: everything that can run inside a forked
#: shard worker (the same scope simstate audits for snapshottability).
_RC005_SCOPE = (
    "repro/sim/",
    "repro/bridge/",
    "repro/ndp/",
    "repro/runtime/",
    "repro/balance/",
    "repro/links/",
    "repro/dram/",
    "repro/messages/",
)
_CONTEXT_READS = frozenset(
    {
        "os.getpid",
        "os.getppid",
        "os.getcwd",
        "os.getcwdb",
        "os.uname",
        "os.urandom",
        "os.getlogin",
        "pathlib.Path.cwd",
        "multiprocessing.current_process",
        "multiprocessing.get_start_method",
        "multiprocessing.parent_process",
        "threading.get_ident",
        "threading.get_native_id",
        "threading.current_thread",
        "threading.main_thread",
        "socket.gethostname",
        "socket.getfqdn",
        "platform.node",
        "platform.uname",
        "uuid.uuid1",
        "uuid.uuid4",
        "id",
    }
)


class WorkerContextIndependence(Rule):
    code = "RC005"
    name = "worker-context-independence"
    description = (
        "worker-executed modules must not observe process identity "
        "(pid, cwd, start method, thread ids, hostname, object "
        "addresses) -- any such read makes inline and forked shards "
        "diverge, breaking the bit-identity contract"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module_path.startswith(_RC005_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, ctx)
            if dotted in _CONTEXT_READS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"process-context read `{dotted}()` in worker-executed "
                    f"module {ctx.module_path} -- inline and forked shards "
                    f"would observe different values and desynchronize",
                )


RACE_RULES: Tuple[Rule, ...] = (
    ShardIsolation(),
    PayloadSafety(),
    FingerprintCompleteness(),
    LookaheadSoundness(),
    WorkerContextIndependence(),
)

RACE_RULE_CODES = frozenset(rule.code for rule in RACE_RULES)
