"""Runtime message-lifecycle conservation auditing.

The static half of simflow proves properties of the *code*; this module
proves the matching property of a *run*: every message the system ever
creates is accounted for at exit,

    created == delivered + dropped + in_flight

per message type, where ``in_flight`` messages must be physically
resident in some container (mailbox, backlog, scatter/up/backup buffer,
level-2 down buffer) or carried by a still-pending simulator event.  A
message that is neither -- created, never delivered, nowhere to be
found with the event queue drained -- is a **leak**; a message delivered
twice is a **double delivery**; a delivery of an id that was never sent
is a **phantom**; a container rejection the stats never saw is a
**bookkeeping hole**.

The auditor follows the sanitizer pattern of :mod:`repro.sim.engine`:
``NDPBRIDGE_SANITIZE=1`` turns it on, and every hook is installed by
shadowing methods on *instances*, so the class fast paths are untouched
and a non-sanitized run pays zero overhead.  Auditing is observation
only -- wrapped methods call straight through -- so sanitized runs stay
bit-identical to plain runs (asserted by tests/test_flow_auditor.py).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..messages.types import Message


class FlowAuditError(RuntimeError):
    """A message-lifecycle conservation violation."""


def _mtype(msg: Message) -> str:
    return msg.mtype.value


class MessageAuditor:
    """Tags every message id and proves conservation at run() exit."""

    def __init__(self) -> None:
        self._created: Dict[int, str] = {}       # msg_id -> mtype
        self._delivered: Dict[int, int] = {}     # msg_id -> delivery count
        self._dropped: Dict[int, str] = {}       # msg_id -> mtype (terminal)
        self.created_by_type: Dict[str, int] = {}
        self.delivered_by_type: Dict[str, int] = {}
        self.dropped_by_type: Dict[str, int] = {}
        #: enqueue/push admissions per bridge level (0 = unit mailbox,
        #: 1 = level-1 buffers, 2 = level-2 down buffers).
        self.enqueued_by_level: Dict[int, int] = {}
        #: backpressure rejections observed per wrapped container.
        self.rejected_by_container: Dict[str, int] = {}
        self.last_report: Optional[Dict[str, Any]] = None
        #: (name, container) pairs whose dropped_messages we cross-check.
        self._wrapped_containers: List[Tuple[str, Any]] = []

    # ------------------------------------------------------------------
    # observation hooks
    # ------------------------------------------------------------------
    def on_created(self, msg: Message) -> None:
        if msg.msg_id in self._created:
            raise FlowAuditError(
                f"duplicate send: {_mtype(msg)} message "
                f"{msg.msg_id} entered the fabric twice"
            )
        self._created[msg.msg_id] = _mtype(msg)
        self.created_by_type[_mtype(msg)] = (
            self.created_by_type.get(_mtype(msg), 0) + 1
        )

    def on_delivered(self, msg: Message, unit_id: int) -> None:
        if msg.msg_id not in self._created:
            raise FlowAuditError(
                f"phantom delivery: {_mtype(msg)} message {msg.msg_id} "
                f"delivered to unit {unit_id} but was never sent"
            )
        count = self._delivered.get(msg.msg_id, 0)
        if count >= 1:
            raise FlowAuditError(
                f"double delivery: {_mtype(msg)} message {msg.msg_id} "
                f"delivered {count + 1} times (last to unit {unit_id})"
            )
        self._delivered[msg.msg_id] = count + 1
        self.delivered_by_type[_mtype(msg)] = (
            self.delivered_by_type.get(_mtype(msg), 0) + 1
        )

    def on_dropped(self, msg: Message) -> None:
        """An intentional terminal drop (no current caller in src;
        exercised by tests and kept for policy experiments)."""
        if msg.msg_id in self._dropped:
            raise FlowAuditError(
                f"message {msg.msg_id} dropped twice"
            )
        self._dropped[msg.msg_id] = _mtype(msg)
        self.dropped_by_type[_mtype(msg)] = (
            self.dropped_by_type.get(_mtype(msg), 0) + 1
        )

    def on_enqueued(self, msg: Message, level: int) -> None:
        self.enqueued_by_level[level] = (
            self.enqueued_by_level.get(level, 0) + 1
        )

    def on_rejected(self, msg: Message, container: str) -> None:
        self.rejected_by_container[container] = (
            self.rejected_by_container.get(container, 0) + 1
        )

    # ------------------------------------------------------------------
    # instance-level hook installation (sanitizer pattern)
    # ------------------------------------------------------------------
    def attach(self, system: Any) -> None:
        """Install observation wrappers on every unit and bridge."""
        for unit in system.units:
            self._wrap_unit(unit)
        fabric = system.fabric
        for bridge in getattr(fabric, "rank_bridges", None) or ():
            self._wrap_level1(bridge)
        level2 = getattr(fabric, "level2", None)
        if level2 is not None:
            self._wrap_level2(level2)

    def _wrap_unit(self, unit: Any) -> None:
        auditor = self

        def send(msg: Message, _orig=unit._send) -> None:
            auditor.on_created(msg)
            return _orig(msg)

        unit._send = send

        def deliver_task(
            msg: Message,
            _orig=unit.deliver_task_message,
            _uid=unit.unit_id,
        ) -> None:
            auditor.on_delivered(msg, _uid)
            return _orig(msg)

        unit.deliver_task_message = deliver_task

        def deliver_data(
            msg: Message,
            _orig=unit.deliver_data_message,
            _uid=unit.unit_id,
        ) -> None:
            auditor.on_delivered(msg, _uid)
            return _orig(msg)

        unit.deliver_data_message = deliver_data
        self._wrap_container(
            unit.mailbox, f"unit{unit.unit_id}.mailbox", 0, "enqueue"
        )

    def _wrap_container(
        self, container: Any, name: str, level: int, method: str
    ) -> None:
        auditor = self
        orig = getattr(container, method)

        def wrapped(
            msg: Message, _orig=orig, _name=name, _level=level
        ) -> bool:
            admitted = _orig(msg)
            if admitted:
                auditor.on_enqueued(msg, _level)
            else:
                auditor.on_rejected(msg, _name)
            return admitted

        setattr(container, method, wrapped)
        self._wrapped_containers.append((name, container))

    def _wrap_level1(self, bridge: Any) -> None:
        auditor = self
        rank = bridge.global_rank
        self._wrap_container(
            bridge.up_mailbox, f"bridge{rank}.up_mailbox", 1, "push"
        )
        for uid in sorted(bridge.scatter_buffers):
            self._wrap_container(
                bridge.scatter_buffers[uid],
                f"bridge{rank}.scatter{uid}",
                1,
                "push",
            )

        def overflow(
            msg: Message, route_key: int, _orig=bridge._overflow
        ) -> None:
            _orig(msg, route_key)
            auditor.on_enqueued(msg, 1)

        bridge._overflow = overflow

    def _wrap_level2(self, level2: Any) -> None:
        auditor = self
        for rank, buf in enumerate(level2.down_buffers):
            self._wrap_container(
                buf, f"level2.down{rank}", 2, "push"
            )

            def force(
                msg: Message, _orig=buf.force_push, _rank=rank
            ) -> None:
                _orig(msg)
                auditor.on_enqueued(msg, 2)

            buf.force_push = force

    # ------------------------------------------------------------------
    # end-of-run verification
    # ------------------------------------------------------------------
    def _iter_resident(
        self, system: Any
    ) -> Iterator[Tuple[str, Tuple[Message, ...]]]:
        """Every message physically resident in a container right now."""
        for unit in system.units:
            yield (
                f"unit{unit.unit_id}.mailbox",
                unit.mailbox.pending_messages(),
            )
            yield (f"unit{unit.unit_id}.backlog", tuple(unit._backlog))
        fabric = system.fabric
        for bridge in getattr(fabric, "rank_bridges", None) or ():
            rank = bridge.global_rank
            yield (
                f"bridge{rank}.up_mailbox",
                bridge.up_mailbox.pending_messages(),
            )
            for uid in sorted(bridge.scatter_buffers):
                yield (
                    f"bridge{rank}.scatter{uid}",
                    bridge.scatter_buffers[uid].pending_messages(),
                )
            yield (f"bridge{rank}.backup", bridge.backup_messages())
        level2 = getattr(fabric, "level2", None)
        if level2 is not None:
            for rank, buf in enumerate(level2.down_buffers):
                yield (f"level2.down{rank}", buf.pending_messages())

    def finish(self, system: Any) -> Dict[str, Any]:
        """Verify conservation at run() exit; raises FlowAuditError."""
        resident = list(self._iter_resident(system))
        container_dropped = sum(
            container.dropped_messages
            for _, container in self._wrapped_containers
        )
        return self.verify(
            resident, system.sim.pending_events, container_dropped
        )

    def verify(
        self,
        resident: List[Tuple[str, Tuple[Message, ...]]],
        pending_events: int,
        container_dropped: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Prove ``created == delivered + dropped + in_flight``.

        ``resident`` is a ``(container_name, messages)`` snapshot;
        ``pending_events`` is the simulator's live event count (messages
        may legitimately ride in scheduled delivery callbacks, so
        unlocated in-flight ids are a leak only once the queue is
        empty).  ``container_dropped`` cross-checks the containers' own
        rejection counters against what the auditor observed.
        """
        # -- internal bookkeeping must recount exactly -------------------
        recount: Dict[str, int] = {}
        for mtype in self._created.values():
            recount[mtype] = recount.get(mtype, 0) + 1
        if recount != self.created_by_type:
            raise FlowAuditError(
                f"creation bookkeeping corrupt: per-id tags recount to "
                f"{recount} but counters say {self.created_by_type}"
            )

        # -- double accounting -------------------------------------------
        for msg_id, mtype in self._dropped.items():
            if self._delivered.get(msg_id):
                raise FlowAuditError(
                    f"{mtype} message {msg_id} both delivered and "
                    f"recorded dropped"
                )

        # -- locate every outstanding id ---------------------------------
        outstanding = {
            msg_id: mtype
            for msg_id, mtype in self._created.items()
            if not self._delivered.get(msg_id)
            and msg_id not in self._dropped
        }
        resident_ids: Dict[int, str] = {}
        resident_by_container: Dict[str, int] = {}
        for name, msgs in resident:
            if msgs:
                resident_by_container[name] = len(msgs)
            for msg in msgs:
                if msg.msg_id not in self._created:
                    raise FlowAuditError(
                        f"container {name} holds {_mtype(msg)} message "
                        f"{msg.msg_id} that was never sent"
                    )
                if (
                    self._delivered.get(msg.msg_id)
                    or msg.msg_id in self._dropped
                ):
                    raise FlowAuditError(
                        f"container {name} still holds message "
                        f"{msg.msg_id} that was already "
                        f"delivered/dropped"
                    )
                resident_ids[msg.msg_id] = name

        unlocated = sorted(
            msg_id
            for msg_id in outstanding
            if msg_id not in resident_ids
        )
        if unlocated and pending_events == 0:
            detail = ", ".join(
                f"{msg_id}({outstanding[msg_id]})"
                for msg_id in unlocated[:8]
            )
            raise FlowAuditError(
                f"message leak: {len(unlocated)} message(s) created but "
                f"neither delivered, dropped, nor resident in any "
                f"container with the event queue drained: {detail}"
            )

        # -- rejection accounting ----------------------------------------
        rejected_seen = sum(self.rejected_by_container.values())
        if (
            container_dropped is not None
            and container_dropped != rejected_seen
        ):
            raise FlowAuditError(
                f"drops not recorded in stats: containers count "
                f"{container_dropped} rejection(s) but the auditor "
                f"observed {rejected_seen}"
            )

        # -- the conservation equation, per type -------------------------
        in_flight_by_type: Dict[str, int] = {}
        for msg_id, mtype in outstanding.items():
            in_flight_by_type[mtype] = in_flight_by_type.get(mtype, 0) + 1
        for mtype in sorted(
            set(self.created_by_type)
            | set(self.delivered_by_type)
            | set(self.dropped_by_type)
        ):
            created = self.created_by_type.get(mtype, 0)
            delivered = self.delivered_by_type.get(mtype, 0)
            dropped = self.dropped_by_type.get(mtype, 0)
            in_flight = in_flight_by_type.get(mtype, 0)
            if created != delivered + dropped + in_flight:
                raise FlowAuditError(
                    f"conservation violated for {mtype}: "
                    f"created={created} != delivered={delivered} + "
                    f"dropped={dropped} + in_flight={in_flight}"
                )

        report: Dict[str, Any] = {
            "created_by_type": dict(self.created_by_type),
            "delivered_by_type": dict(self.delivered_by_type),
            "dropped_by_type": dict(self.dropped_by_type),
            "in_flight_by_type": in_flight_by_type,
            "resident_by_container": resident_by_container,
            "enqueued_by_level": dict(self.enqueued_by_level),
            "rejected_by_container": dict(self.rejected_by_container),
            "pending_events": pending_events,
        }
        self.last_report = report
        return report
