"""simflow orchestration: parse, build the protocol graph, run rules.

Reuses simlint's :class:`~repro.lint.checker.Diagnostic` and suppression
machinery, but analyses the *whole tree at once* -- protocol rules are
cross-module, so per-file linting cannot express them.  Per-line
suppression uses ``# simflow: ignore[FL002]`` (bare ``ignore`` silences
the line for every rule).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..lint.checker import (
    Diagnostic,
    is_suppressed,
    iter_python_files,
    module_path_of,
    suppressed_lines,
)
from .graph import build_protocol_graph
from .rules import FLOW_RULES

#: simflow only analyses the protocol layers; the rest of the tree
#: (engine, runtime, benchmarks, ...) neither creates nor handles
#: messages and is out of scope by construction.
FLOW_SCOPE_PREFIXES: Tuple[str, ...] = (
    "repro/messages/",
    "repro/bridge/",
    "repro/ndp/",
)


def in_flow_scope(module_path: str) -> bool:
    return module_path.startswith(FLOW_SCOPE_PREFIXES)


def analyze_sources(
    modules: Sequence[Tuple[Union[str, Path], str, str]]
) -> List[Diagnostic]:
    """Analyse ``(path, module_path, source)`` triples as one tree.

    Out-of-scope modules are ignored; modules that fail to parse yield
    an FL000 diagnostic and are dropped from the graph (the rules then
    run on whatever parsed).
    """
    diagnostics: List[Diagnostic] = []
    parsed: List[Tuple[str, ast.Module]] = []
    path_of: Dict[str, str] = {}
    suppress_of: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for path, module_path, source in modules:
        if not in_flow_scope(module_path):
            continue
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="FL000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        parsed.append((module_path, tree))
        path_of[module_path] = str(path)
        suppress_of[module_path] = suppressed_lines(source, tool="simflow")

    graph = build_protocol_graph(sorted(parsed, key=lambda mt: mt[0]))
    for rule in FLOW_RULES:
        for module_path, line, col, message in rule.check(graph):
            suppressed = suppress_of.get(module_path, {})
            if is_suppressed(suppressed, line, rule.code):
                continue
            diagnostics.append(
                Diagnostic(
                    path=path_of.get(module_path, module_path),
                    line=line,
                    col=col,
                    rule=rule.code,
                    message=message,
                )
            )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diagnostics


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    module_path_override: Optional[Dict[str, str]] = None,
) -> List[Diagnostic]:
    """Analyse every .py file under ``paths`` as one protocol tree."""
    triples: List[Tuple[Union[str, Path], str, str]] = []
    for path in iter_python_files(paths):
        module_path = (module_path_override or {}).get(
            str(path), module_path_of(path)
        )
        triples.append(
            (path, module_path, path.read_text(encoding="utf-8"))
        )
    return analyze_sources(triples)
