"""The static send->handle graph over the message protocol.

simflow's rules need to know, for the whole tree at once, *who creates
which message type* and *who can consume it* -- a cross-module property
that per-file linting (simlint) cannot see.  This module extracts both
sides from the AST:

* **producers** -- every ``TaskMessage(...)`` / ``DataMessage(...)`` /
  ``StateMessage(...)`` construction site;
* **handlers** -- every function that plausibly consumes a message
  type, detected either from a ``deliver*``/``handle*`` name with an
  annotated ``Message`` parameter, or an ``isinstance(x, XxxMessage)``
  dispatch in the body.

Reachability is scoped per *design* (C/B/W/O/H/R from
:mod:`repro.runtime.config`): design C never loads ``bridge/level1.py``,
so a handler that only exists there does not count as consumption for C.
The design->module mapping below mirrors ``bridge.fabric.build_fabric``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

#: Message class name -> protocol type tag (matches MessageType values).
MESSAGE_CLASSES: Dict[str, str] = {
    "TaskMessage": "task",
    "DataMessage": "data",
    "StateMessage": "state",
}

#: The six fabric designs from the paper (runtime.config.Design).
DESIGNS: Tuple[str, ...] = ("C", "B", "W", "O", "H", "R")

# Which module-path prefixes each design actually imports at runtime.
# Mirrors bridge.fabric.build_fabric: C = host forwarding only, R = host
# forwarding + rowclone shortcut, B/W/O = the bridge hierarchy, H =
# host-only execution (a separate model that loads no message code, so
# every protocol obligation is vacuous under H).
_BRIDGE_COMMON: Tuple[str, ...] = ("repro/ndp/", "repro/messages/")
_DESIGN_INCLUDE: Dict[str, Tuple[str, ...]] = {
    "C": _BRIDGE_COMMON + ("repro/bridge/host_path.py",),
    "R": _BRIDGE_COMMON
    + ("repro/bridge/host_path.py", "repro/bridge/rowclone.py"),
    "B": _BRIDGE_COMMON + ("repro/bridge/",),
    "W": _BRIDGE_COMMON + ("repro/bridge/",),
    "O": _BRIDGE_COMMON + ("repro/bridge/",),
    "H": (),
}
_DESIGN_EXCLUDE: Dict[str, Tuple[str, ...]] = {
    "B": ("repro/bridge/host_path.py", "repro/bridge/rowclone.py"),
    "W": ("repro/bridge/host_path.py", "repro/bridge/rowclone.py"),
    "O": ("repro/bridge/host_path.py", "repro/bridge/rowclone.py"),
}


def design_active(design: str, module_path: str) -> bool:
    """Is ``module_path`` part of ``design``'s runtime module set?"""
    include = _DESIGN_INCLUDE.get(design, ())
    if not any(module_path.startswith(p) for p in include):
        return False
    exclude = _DESIGN_EXCLUDE.get(design, ())
    return not any(module_path.startswith(p) for p in exclude)


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@dataclass(frozen=True)
class ProducerSite:
    """One ``XxxMessage(...)`` construction site."""

    module_path: str
    line: int
    col: int
    mtype: str  # "task" | "data" | "state"
    cls_name: str


@dataclass(frozen=True)
class HandlerSite:
    """One function that consumes at least one message type."""

    module_path: str
    line: int
    name: str
    mtypes: Tuple[str, ...]


@dataclass
class ModuleGraph:
    """Producers and handlers extracted from one module."""

    module_path: str
    tree: ast.Module
    producers: List[ProducerSite] = field(default_factory=list)
    handlers: List[HandlerSite] = field(default_factory=list)


def _annotation_mtype(annotation: Optional[ast.AST]) -> Optional[str]:
    """Message type named by a parameter annotation, if any."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        name: Optional[str] = annotation.value.rsplit(".", 1)[-1]
    else:
        name = terminal_name(annotation)
    if name is None:
        return None
    return MESSAGE_CLASSES.get(name)


def _isinstance_mtypes(func: ast.AST) -> Set[str]:
    """Message types dispatched via ``isinstance(x, XxxMessage)``."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "isinstance"
            and len(node.args) == 2
        ):
            continue
        classes = node.args[1]
        candidates: List[ast.AST] = (
            list(classes.elts)
            if isinstance(classes, ast.Tuple)
            else [classes]
        )
        for cand in candidates:
            name = terminal_name(cand)
            if name in MESSAGE_CLASSES:
                out.add(MESSAGE_CLASSES[name])
    return out


_HANDLER_NAME_HINTS = ("deliver", "handle")


def _handler_mtypes(func: ast.AST) -> Tuple[str, ...]:
    """Which message types ``func`` consumes, or empty if it is no handler."""
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    mtypes: Set[str] = set()
    if any(hint in func.name for hint in _HANDLER_NAME_HINTS):
        args = list(func.args.posonlyargs) + list(func.args.args)
        for arg in args:
            mtype = _annotation_mtype(arg.annotation)
            if mtype is not None:
                mtypes.add(mtype)
        mtypes.update(_isinstance_mtypes(func))
    return tuple(sorted(mtypes))


def build_module_graph(module_path: str, tree: ast.Module) -> ModuleGraph:
    """Extract producers and handlers from one parsed module."""
    graph = ModuleGraph(module_path=module_path, tree=tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = terminal_name(node.func)
            if name in MESSAGE_CLASSES:
                graph.producers.append(
                    ProducerSite(
                        module_path=module_path,
                        line=node.lineno,
                        col=node.col_offset,
                        mtype=MESSAGE_CLASSES[name],
                        cls_name=name,
                    )
                )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mtypes = _handler_mtypes(node)
            if mtypes:
                graph.handlers.append(
                    HandlerSite(
                        module_path=module_path,
                        line=node.lineno,
                        name=node.name,
                        mtypes=mtypes,
                    )
                )
    return graph


class ProtocolGraph:
    """The whole-tree send->handle graph the flow rules consume."""

    def __init__(self, modules: Dict[str, ModuleGraph]) -> None:
        self._modules = modules

    def module_paths(self) -> List[str]:
        return sorted(self._modules)

    def modules(self) -> Iterator[ModuleGraph]:
        for path in self.module_paths():
            yield self._modules[path]

    def get(self, module_path: str) -> Optional[ModuleGraph]:
        return self._modules.get(module_path)

    def producers(self) -> Iterator[ProducerSite]:
        for module in self.modules():
            yield from module.producers

    def producers_by_type(
        self, design: Optional[str] = None
    ) -> Dict[str, List[ProducerSite]]:
        """Producer sites grouped by message type, optionally per design."""
        out: Dict[str, List[ProducerSite]] = {}
        for module in self.modules():
            if design is not None and not design_active(
                design, module.module_path
            ):
                continue
            for site in module.producers:
                out.setdefault(site.mtype, []).append(site)
        return out

    def handled_types(self, design: Optional[str] = None) -> Set[str]:
        """Message types with at least one reachable handler."""
        out: Set[str] = set()
        for module in self.modules():
            if design is not None and not design_active(
                design, module.module_path
            ):
                continue
            for handler in module.handlers:
                out.update(handler.mtypes)
        return out


def build_protocol_graph(
    modules: Iterable[Tuple[str, ast.Module]]
) -> ProtocolGraph:
    """Assemble the graph from ``(module_path, tree)`` pairs."""
    by_path: Dict[str, ModuleGraph] = {}
    for module_path, tree in modules:
        by_path[module_path] = build_module_graph(module_path, tree)
    return ProtocolGraph(by_path)
