"""``python -m repro.flow`` -- the simflow command line.

Same conventions as ``python -m repro.lint``: exit 0 when clean, 1 when
findings survive suppression, 2 on usage errors; default output is
``path:line:col: RULE message``, ``--format sarif`` emits SARIF 2.1.0
(optionally into ``--output FILE``) for CI annotation.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from ..lint.sarif import sarif_report
from .checker import analyze_paths
from .rules import FLOW_RULES


def _list_rules() -> str:
    lines = ["simflow rules:"]
    for rule in FLOW_RULES:
        lines.append(f"  {rule.code}  {rule.name}")
        lines.append(f"         {rule.description}")
    lines.append("")
    lines.append(
        "suppress a single line with `# simflow: ignore[FL002]` "
        "(comma-separate codes; bare `# simflow: ignore` silences all)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flow",
        description=(
            "simflow: message-protocol static analysis "
            "(send->handle graph, backpressure, deadlock bounds)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table, then exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    diagnostics = analyze_paths(args.paths)

    if args.format == "sarif":
        text = json.dumps(
            sarif_report(diagnostics, FLOW_RULES, "simflow"), indent=2
        )
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 1 if diagnostics else 0

    body = "\n".join(diag.format() for diag in diagnostics)
    if args.output:
        Path(args.output).write_text(
            body + ("\n" if body else ""), encoding="utf-8"
        )
    elif body:
        print(body)
    if not args.quiet:
        total = len(diagnostics)
        if total:
            print(
                f"simflow: {total} finding(s) "
                f"({len(FLOW_RULES)} rules)"
            )
        else:
            print(f"simflow: clean -- {len(FLOW_RULES)} rules")
    return 1 if diagnostics else 0
