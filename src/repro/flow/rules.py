"""The simflow protocol rules (FL001-FL004).

Unlike simlint rules, which each see one module at a time, flow rules
see the :class:`~repro.flow.graph.ProtocolGraph` for the whole tree --
the properties they check (orphaned message types, unhandled
backpressure, blocking-wait deadlock bounds, metadata discipline) are
cross-module by nature.

Each rule yields ``(module_path, line, col, message)`` findings; the
checker maps them back onto files and applies per-line
``# simflow: ignore[FLxxx]`` suppressions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from .graph import DESIGNS, ModuleGraph, ProtocolGraph, terminal_name

#: (module_path, line, col, message)
Finding = Tuple[str, int, int, str]


class FlowRule:
    """Base class: whole-graph check yielding findings."""

    code: str = "FL000"
    name: str = "base"
    description: str = ""

    def check(self, graph: ProtocolGraph) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


# ---------------------------------------------------------------------------
# FL001 -- every produced message type is consumed on every design


class OrphanMessageType(FlowRule):
    code = "FL001"
    name = "orphan-message-type"
    description = (
        "a message type constructed in a module reachable under some "
        "fabric design (C/B/W/O/H/R) has no reachable handler for that "
        "design -- the message would be created and then silently "
        "undeliverable"
    )

    def check(self, graph: ProtocolGraph) -> Iterator[Finding]:
        # Accumulate the missing designs per producer site, then emit one
        # finding per site listing every design it is orphaned under.
        missing: Dict[Tuple[str, int, int], List[str]] = {}
        sites: Dict[Tuple[str, int, int], str] = {}
        for design in DESIGNS:
            handled = graph.handled_types(design)
            for mtype, producers in graph.producers_by_type(design).items():
                if mtype in handled:
                    continue
                for site in producers:
                    key = (site.module_path, site.line, site.col)
                    missing.setdefault(key, []).append(design)
                    sites[key] = site.cls_name
        for key in sorted(missing):
            module_path, line, col = key
            designs = ",".join(missing[key])
            yield (
                module_path,
                line,
                col,
                f"{sites[key]} is produced here but has no reachable "
                f"handler under design(s) {designs} -- every message "
                f"type must be consumed on every design it can be "
                f"created on",
            )


# ---------------------------------------------------------------------------
# FL002 -- every bounded enqueue/push handles the False (backpressure) path

_BOUNDED_CALLS = frozenset({"enqueue", "push"})


class UnhandledBackpressure(FlowRule):
    code = "FL002"
    name = "unhandled-backpressure"
    description = (
        "Mailbox.enqueue() / MessageBuffer.push() return False when the "
        "container is full; a call site that discards the return value "
        "silently drops the message on backpressure"
    )

    def check(self, graph: ProtocolGraph) -> Iterator[Finding]:
        for module in graph.modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Expr):
                    continue
                call = node.value
                if not (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _BOUNDED_CALLS
                ):
                    continue
                yield (
                    module.module_path,
                    node.lineno,
                    node.col_offset,
                    f".{call.func.attr}() returns False on backpressure "
                    f"but the result is discarded -- the message is "
                    f"silently dropped when the container is full "
                    f"(check the return value, or use enqueue_or_raise "
                    f"/ force_push to make the policy explicit)",
                )


# ---------------------------------------------------------------------------
# FL003 -- rejection paths must escape, not block-wait
#
# The static deadlock bound: with the default geometry one gather round
# can burst 64 banks x 8 chunks x 256 B = 128 KiB of DATA through a
# level-1 bridge whose backup store holds 64 KiB.  If any rejection
# branch *waits* for space instead of escaping (raise / spill to an
# unbounded store / return False to the caller), the waiters can form a
# cycle among bridge buffers that exceeds backup_capacity and the
# simulation deadlocks.  We therefore require every ``if not x.push(...)``
# / ``if x.enqueue(...) ... else`` failure branch to provably escape.

_ESCAPE_CALL_ATTRS = frozenset(
    {"append", "appendleft", "extend", "force_push", "enqueue_or_raise"}
)


def _local_sinks(tree: ast.Module) -> Set[str]:
    """Functions in this module that escape (raise or spill unbounded)."""
    sinks: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(node):
            if isinstance(inner, ast.Raise):
                sinks.add(node.name)
                break
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr in _ESCAPE_CALL_ATTRS
            ):
                sinks.add(node.name)
                break
    return sinks


def _rejection_calls(
    test: ast.AST,
) -> Tuple[List[ast.Call], List[ast.Call]]:
    """Bounded enqueue/push calls in an ``if`` test.

    Returns ``(negated, positive)``: negated calls (``not x.push(m)``)
    mean the *body* is the failure branch; positive calls mean the
    *orelse* is.
    """
    negated: List[ast.Call] = []
    positive: List[ast.Call] = []

    def visit(node: ast.AST, under_not: bool) -> None:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            visit(node.operand, not under_not)
        elif isinstance(node, ast.BoolOp):
            for value in node.values:
                visit(value, under_not)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _BOUNDED_CALLS
        ):
            (negated if under_not else positive).append(node)

    visit(test, False)
    return negated, positive


def _branch_escapes(
    stmts: List[ast.stmt], local_sinks: Set[str]
) -> bool:
    """Does this failure branch provably escape the full container?"""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Constant)
                and node.value.value is False
            ):
                return True
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ESCAPE_CALL_ATTRS
                ):
                    return True
                callee = terminal_name(node.func)
                if callee is not None and callee in local_sinks:
                    return True
    return False


class BlockingWaitCycle(FlowRule):
    code = "FL003"
    name = "blocking-wait-cycle"
    description = (
        "a rejection branch of a bounded enqueue/push neither raises "
        "nor spills to an unbounded store -- under the default geometry "
        "one gather round bursts 64 banks x 8 chunks x 256 B = 128 KiB "
        "through a 64 KiB backup store, so blocking-wait rejection "
        "paths can deadlock the bridge buffer cycle"
    )

    def check(self, graph: ProtocolGraph) -> Iterator[Finding]:
        for module in graph.modules():
            sinks = _local_sinks(module.tree)
            # While-loop drains (`while q and buf.push(q[0])`) retry with
            # bounded work per event and are the sanctioned pattern.
            while_lines: Set[int] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.While):
                    for inner in ast.walk(node.test):
                        while_lines.add(getattr(inner, "lineno", -1))
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.If):
                    continue
                negated, positive = _rejection_calls(node.test)
                for call in negated:
                    if call.lineno in while_lines:
                        continue
                    if not _branch_escapes(node.body, sinks):
                        yield self._finding(module, call)
                for call in positive:
                    if call.lineno in while_lines:
                        continue
                    if not node.orelse or not _branch_escapes(
                        node.orelse, sinks
                    ):
                        yield self._finding(module, call)

    def _finding(self, module: ModuleGraph, call: ast.Call) -> Finding:
        attr = call.func.attr  # type: ignore[attr-defined]
        return (
            module.module_path,
            call.lineno,
            call.col_offset,
            f"rejection path of .{attr}() does not provably escape "
            f"(raise, return False, or spill to an unbounded store); "
            f"one gather burst (64 banks x 8 chunks x 256 B = 128 KiB) "
            f"exceeds the 64 KiB backup bound, so a blocking wait here "
            f"can deadlock the bridge-buffer cycle",
        )


# ---------------------------------------------------------------------------
# FL004 -- balance metadata is mutated only through balance/metadata.py

_BALANCE_OWNERS = frozenset({"islent", "borrowed", "is_lent", "data_borrowed"})
_BALANCE_MODULE = "repro/balance/metadata.py"


class BalanceMetadataBypass(FlowRule):
    code = "FL004"
    name = "balance-metadata-bypass"
    description = (
        "isLent/dataBorrowed balance metadata must be read and mutated "
        "only through the public API of balance/metadata.py -- touching "
        "its private state from a message handler breaks the "
        "lend/return conservation the tracker audits"
    )

    def check(self, graph: ProtocolGraph) -> Iterator[Finding]:
        for module in graph.modules():
            if module.module_path == _BALANCE_MODULE:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if not node.attr.startswith("_"):
                    continue
                owner = terminal_name(node.value)
                if owner is None or owner.lower() not in _BALANCE_OWNERS:
                    continue
                yield (
                    module.module_path,
                    node.lineno,
                    node.col_offset,
                    f"private balance-metadata member "
                    f"{owner}.{node.attr} accessed outside "
                    f"balance/metadata.py -- use the public "
                    f"set_lent/clear_lent/borrow/return API so the "
                    f"lend/return balance stays auditable",
                )


FLOW_RULES: Tuple[FlowRule, ...] = (
    OrphanMessageType(),
    UnhandledBackpressure(),
    BlockingWaitCycle(),
    BalanceMetadataBypass(),
)

FLOW_RULE_CODES: Tuple[str, ...] = tuple(rule.code for rule in FLOW_RULES)
