"""simflow -- message-protocol static analysis + lifecycle auditing.

simlint (:mod:`repro.lint`) checks per-file determinism invariants;
simflow checks the *protocol*: the cross-module send->handle graph of
TASK/DATA/STATE messages through the bridge hierarchy, plus a runtime
conservation audit of every message a sanitized run creates.

Static rules (``python -m repro.flow src``):

=======  ==============================================================
rule     invariant
=======  ==============================================================
FL001    every produced message type has a reachable handler under
         every fabric design (C/B/W/O/H/R) it can be created on
FL002    every bounded ``Mailbox.enqueue()`` / ``MessageBuffer.push()``
         call site handles the False backpressure return
FL003    rejection branches provably escape (raise / return False /
         spill unbounded) -- a blocking wait can deadlock the bridge
         buffer cycle (one gather burst of 128 KiB > 64 KiB backup)
FL004    isLent/dataBorrowed balance metadata is touched only through
         the public API of balance/metadata.py
=======  ==============================================================

Suppress per line with ``# simflow: ignore[FL002]`` (bare ``ignore``
silences the line).  Both CLIs share ``--format sarif`` for CI
annotation.

Runtime half: ``NDPBRIDGE_SANITIZE=1`` attaches a
:class:`~repro.flow.auditor.MessageAuditor` that tags every message id
and proves ``created == delivered + dropped + in_flight`` at run()
exit, flagging leaks, double deliveries, and rejections the stats
never recorded.
"""

from .auditor import FlowAuditError, MessageAuditor
from .checker import FLOW_SCOPE_PREFIXES, analyze_paths, analyze_sources
from .graph import (
    DESIGNS,
    MESSAGE_CLASSES,
    ProtocolGraph,
    build_protocol_graph,
    design_active,
)
from .rules import FLOW_RULE_CODES, FLOW_RULES, FlowRule

__all__ = [
    "DESIGNS",
    "FLOW_RULES",
    "FLOW_RULE_CODES",
    "FLOW_SCOPE_PREFIXES",
    "FlowAuditError",
    "FlowRule",
    "MESSAGE_CLASSES",
    "MessageAuditor",
    "ProtocolGraph",
    "analyze_paths",
    "analyze_sources",
    "build_protocol_graph",
    "design_active",
]
