"""The task abstraction of the programming model (Section IV).

A task is the unit of scheduling: the operations on one data element.  It
carries a function selector, a bulk-synchronization timestamp, the physical
address of its data element, an (optionally inaccurate) workload estimate,
and extra arguments -- exactly the attribute list of Section IV.

``actual_cycles`` is the ground-truth execution cost used by the core
model; applications may set it differently from ``workload`` to exercise
the paper's claim that estimates "can be inaccurate or even unspecified".
When ``workload`` is ``None`` the runtime substitutes a default estimate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

_task_ids = itertools.count()

#: Wire format sizing (Fig. 5): type/index/function/timestamp header plus
#: the 64-bit data address, workload byte, and 8 bytes per argument.
TASK_HEADER_BYTES = 13
ARG_BYTES = 8


@dataclass
class Task:
    """One data-centric task."""

    func: str
    ts: int
    data_addr: int
    workload: Optional[int] = None
    args: Tuple = ()
    actual_cycles: Optional[int] = None
    #: Read-only tasks on the same element can run concurrently on a
    #: shared-memory host; writers serialize on the element's cacheline
    #: (atomic update / coherence ping-pong).  NDP execution is unaffected
    #: (one core per bank serializes either way).
    read_only: bool = False
    #: Bytes of the data element the task touches (sizing its DRAM/cache
    #: access and its share of host memory bandwidth).
    data_bytes: int = 64
    task_id: int = field(default_factory=lambda: next(_task_ids))

    DEFAULT_WORKLOAD = 16

    @property
    def workload_estimate(self) -> int:
        """The estimate the scheduler sees (Section VI uses this)."""
        if self.workload is None:
            return self.DEFAULT_WORKLOAD
        return max(1, int(self.workload))

    @property
    def execution_cycles(self) -> int:
        """The true cycles the core spends executing this task."""
        if self.actual_cycles is not None:
            return max(1, int(self.actual_cycles))
        return self.workload_estimate

    @property
    def size_bytes(self) -> int:
        """Serialized size (before 64 B framing)."""
        return TASK_HEADER_BYTES + 8 + 1 + ARG_BYTES * len(self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task({self.func}, ts={self.ts}, addr={self.data_addr:#x}, "
            f"w={self.workload_estimate})"
        )
