"""High-level entry point: run one application on one configuration.

``run_app`` is the one-call API used by examples, tests and benchmarks:
it builds the right system model for the configured design (the NDP
machine, or the host multicore for design H), attaches the application,
seeds it, runs to completion, verifies the result, and returns the
paper-style metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..analysis.metrics import RunMetrics, collect_metrics
from ..config import Design, SystemConfig
from .system import NDPSystem

if TYPE_CHECKING:  # avoid a circular import; apps build on the runtime
    from ..apps.base import NDPApplication


class VerificationError(AssertionError):
    """The distributed execution produced a wrong answer."""


@dataclass
class RunResult:
    """An application run: the finished system, its metrics, and the app."""

    app: "NDPApplication"
    system: object
    metrics: RunMetrics


def build_system(config: SystemConfig):
    """The system model matching the configured design."""
    if config.design is Design.H:
        from ..baselines.host_system import HostSystem

        return HostSystem(config)
    return NDPSystem(config)


def run_app(
    app: "NDPApplication",
    config: SystemConfig,
    verify: bool = True,
    shards: Optional[int] = None,
) -> RunResult:
    """Execute ``app`` on a fresh system built from ``config``.

    ``shards`` opts into the sharded engine (``docs/ARCHITECTURE.md``,
    "Sharded engine"): ``None`` (the default) consults
    ``NDPBRIDGE_SHARDS`` best-effort -- serial when the knob is unset or
    the design/topology cannot shard -- while an explicit integer is
    strict (``1`` forces the serial engine, ``> 1`` the sharded one,
    raising on an unshardable topology).  A sharded run replicates
    ``app`` per shard from its pre-attachment state, returns a
    ``RunResult`` whose ``system`` is a
    :class:`~repro.runtime.shards.ShardedRunInfo`, and defers
    verification to the sharded engine's conservation checks.
    """
    if shards is None and config.design is not Design.H:
        from .shards import resolve_shards

        shards = resolve_shards(config)
    if shards is not None and shards > 1:
        return run_app_sharded(
            app, config, seed=getattr(app, "seed", 1), shards=shards,
            verify=verify,
        )
    system = build_system(config)
    app.attach(system)
    app.seed_tasks(system)
    system.run()
    if verify and not app.verify():
        raise VerificationError(
            f"{app.name} on design {config.design.value}: "
            "distributed result does not match the reference"
        )
    metrics = collect_metrics(system, app.name)
    return RunResult(app=app, system=system, metrics=metrics)


# The sharded twin lives in .shards (which imports this module lazily);
# re-exported here so callers have one entry-point module.
from .shards import run_app_sharded  # noqa: E402

__all__ = [
    "RunResult",
    "VerificationError",
    "build_system",
    "run_app",
    "run_app_sharded",
]
