"""High-level entry point: run one application on one configuration.

``run_app`` is the one-call API used by examples, tests and benchmarks:
it builds the right system model for the configured design (the NDP
machine, or the host multicore for design H), attaches the application,
seeds it, runs to completion, verifies the result, and returns the
paper-style metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.metrics import RunMetrics, collect_metrics
from ..config import Design, SystemConfig
from .system import NDPSystem

if TYPE_CHECKING:  # avoid a circular import; apps build on the runtime
    from ..apps.base import NDPApplication


class VerificationError(AssertionError):
    """The distributed execution produced a wrong answer."""


@dataclass
class RunResult:
    """An application run: the finished system, its metrics, and the app."""

    app: "NDPApplication"
    system: object
    metrics: RunMetrics


def build_system(config: SystemConfig):
    """The system model matching the configured design."""
    if config.design is Design.H:
        from ..baselines.host_system import HostSystem

        return HostSystem(config)
    return NDPSystem(config)


def run_app(
    app: "NDPApplication",
    config: SystemConfig,
    verify: bool = True,
) -> RunResult:
    """Execute ``app`` on a fresh system built from ``config``."""
    system = build_system(config)
    app.attach(system)
    app.seed_tasks(system)
    system.run()
    if verify and not app.verify():
        raise VerificationError(
            f"{app.name} on design {config.design.value}: "
            "distributed result does not match the reference"
        )
    metrics = collect_metrics(system, app.name)
    return RunResult(app=app, system=system, metrics=metrics)
