"""NDP binding of the sharded conservative-window engine.

The partitioned model (see :mod:`repro.sim.partition`) treats each shard
as a complete sub-machine: its own units, level-1 bridges, level-2
domain, tracker and statistics, built from a sub-topology carved out of
the global config.  Three adapters bind it to the generic engine of
:mod:`repro.sim.sharded`:

* :class:`ShardNDPSystem` -- an :class:`~repro.runtime.system.NDPSystem`
  whose units carry *global* ids (via :class:`_UnitView` and
  :class:`~repro.dram.address.ShardAddressMap`) and whose ``spawn`` /
  ``seed_task`` divert work homed in another shard to a
  :class:`ShardBoundary` port instead of the local fabric;
* :class:`NDPShardRuntime` -- the per-shard driver: builds the system,
  replicates the application deterministically (same name/scale/seed
  per shard, so every shard computes the identical data layout), and
  implements the window protocol;
* :func:`run_app_sharded` -- the ``run_app`` twin: partitions, runs the
  shards (inline or in forked workers), checks cross-shard conservation,
  and merges per-shard payloads into one exact
  :class:`~repro.analysis.metrics.RunMetrics`.

Cross-shard traffic is exclusively *tasks*, intercepted at spawn time --
before any fabric :class:`~repro.messages.types.Message` exists -- so the
per-shard :class:`~repro.flow.auditor.MessageAuditor` accounting stays
closed, and the engine's exported==injected merge closes the boundary
ledger.  Exported tasks are re-materialized at the destination (fresh
``task_id``; ids are only ever compared within one shard, where both
executions allocate them in the same order), cross the host hop with the
latency/poll-round model of the
:class:`~repro.sim.partition.PartitionPlan`, and are counted as created
in the destination shard's tracker at delivery.

Bit-identity contract (asserted by ``tests/test_sharded.py``): a
``shards=1`` run is exactly ``run_app`` (the runtime is a passthrough to
``system.run()``), and an N-shard run is bit-identical between inline and
forked-parallel execution.  An N-shard run is *not* claimed identical to
the serial run -- it simulates a different machine (N host-bridged
domains instead of one level-2 domain).
"""

from __future__ import annotations

import copy
import math
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, \
    Tuple

from ..analysis.metrics import RunMetrics
from ..config import ConfigError, Design, SystemConfig, validate_shardable
from ..dram.address import AddressMap, ShardAddressMap
from ..energy import account_energy
from ..ndp.unit import NDPUnit
from ..sim import SimulationError, StatsRegistry
from ..sim.partition import PartitionPlan, plan_partition, shards_from_env
from ..sim.sharded import (
    BoundaryMessage,
    ControlDecision,
    ShardedSimulator,
    ShardReport,
    ShardRuntime,
)
from .partition import PartitionMap
from .system import NDPSystem
from .task import Task
from .tracker import RunTracker, ShardTracker

if TYPE_CHECKING:  # avoid a circular import; apps build on the runtime
    from ..apps.base import NDPApplication

__all__ = [
    "NDPShardBuilder",
    "NDPShardRuntime",
    "ShardNDPSystem",
    "ShardedRunInfo",
    "finish_sharded_run",
    "merge_shard_payloads",
    "resolve_shards",
    "run_app_sharded",
]


class _UnitView(SequenceABC):
    """One shard's units, indexed by *global* unit id.

    Every ``system.units[...]`` access in the model uses global ids
    (units forward to homes, bridges scatter to owners), so the view
    rebases lookups onto the local list.  Indexing a unit outside the
    shard is always a partitioning bug and raises ``IndexError`` loudly.
    Iteration and ``len`` cover the local units only (metrics, auditing).
    """

    # The wrapped list's only holder once _wrap_units returns the view.
    _snapshot_owns_ = ("_units",)

    def __init__(self, units: List[NDPUnit], base_unit: int) -> None:
        self._units = units
        self.base_unit = base_unit

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self):
        return iter(self._units)

    def __getitem__(self, unit_id: int) -> NDPUnit:
        local = unit_id - self.base_unit
        if not 0 <= local < len(self._units):
            raise IndexError(
                f"unit {unit_id} is outside this shard "
                f"[{self.base_unit}, {self.base_unit + len(self._units)})"
            )
        return self._units[local]


class ShardBoundary:
    """The shard's boundary port: cross-shard task exports and imports.

    Exports accumulate between barriers (:meth:`drain` hands them to the
    engine); both directions are counted per peer shard so the merge can
    prove conservation against the engine's own ledger.
    """

    def __init__(self, plan: PartitionPlan, shard_id: int) -> None:
        self.plan = plan
        self.shard_id = shard_id
        self._seq = 0
        self._outbox: List[BoundaryMessage] = []
        self.exported_by_dst: Dict[int, int] = {}
        self.imported_by_src: Dict[int, int] = {}
        #: Channel bytes the exports consumed (framed, up + down hop),
        #: charged to link energy at the merge.
        self.link_bytes = 0
        self.seeds_skipped = 0

    def export(self, now: int, task: Task, dst_shard: int) -> None:
        payload = (
            task.func, task.ts, task.data_addr, task.workload,
            tuple(task.args), task.actual_cycles, task.read_only,
            task.data_bytes,
        )
        nbytes = task.size_bytes
        mb = self.plan.message_bytes
        framed = max(mb, ((nbytes + mb - 1) // mb) * mb)
        self._outbox.append(BoundaryMessage(
            src_shard=self.shard_id,
            dst_shard=dst_shard,
            send_time=now,
            deliver_time=self.plan.deliver_time(now, nbytes),
            seq=self._seq,
            kind="task",
            payload=payload,
        ))
        self._seq += 1
        self.exported_by_dst[dst_shard] = (
            self.exported_by_dst.get(dst_shard, 0) + 1
        )
        self.link_bytes += 2 * framed

    def note_import(self, src_shard: int) -> None:
        self.imported_by_src[src_shard] = (
            self.imported_by_src.get(src_shard, 0) + 1
        )

    def drain(self) -> Tuple[BoundaryMessage, ...]:
        out = tuple(self._outbox)
        self._outbox.clear()
        return out


def task_from_payload(payload: Tuple[object, ...]) -> Task:
    """Re-materialize an exported task (fresh local ``task_id``)."""
    func, ts, data_addr, workload, args, actual_cycles, read_only, \
        data_bytes = payload
    return Task(
        func=func, ts=ts, data_addr=data_addr, workload=workload,
        args=tuple(args), actual_cycles=actual_cycles,
        read_only=read_only, data_bytes=data_bytes,
    )


class ShardNDPSystem(NDPSystem):
    """One shard's sub-machine with global unit ids and a boundary port."""

    def __init__(
        self,
        sub_config: SystemConfig,
        global_config: SystemConfig,
        plan: PartitionPlan,
        shard_id: int,
    ) -> None:
        # Construction hooks below run inside super().__init__, so the
        # shard geometry must be in place first.
        self.global_config = global_config
        self.plan = plan
        self.shard_id = shard_id
        self.base_unit = plan.base_unit(shard_id)
        self.boundary = ShardBoundary(plan, shard_id)
        super().__init__(sub_config)

    # -- construction hooks ---------------------------------------------
    def _build_addr_map(self, config: SystemConfig) -> AddressMap:
        return ShardAddressMap(config, self.global_config, self.base_unit)

    def _build_partition(self) -> PartitionMap:
        # Applications replicate identically on every shard, so data
        # placement must be computed over the *global* machine.
        return PartitionMap(AddressMap(self.global_config))

    def _build_tracker(self) -> RunTracker:
        # A single shard is the whole machine: the ordinary self-driving
        # barrier applies (and makes shards=1 exactly the serial run).
        if self.plan.shards == 1:
            return RunTracker()
        return ShardTracker()

    def _unit_ids(self, config: SystemConfig) -> Iterable[int]:
        lo, hi = self.plan.unit_range(self.shard_id)
        return range(lo, hi)

    def _wrap_units(self, units: List[NDPUnit]) -> Sequence[NDPUnit]:
        return _UnitView(units, self.base_unit)

    # -- boundary interception -------------------------------------------
    def spawn(self, src_unit: int, task: Task) -> None:
        home = self.addr_map.unit_of_addr(task.data_addr)
        dst_shard = self.plan.shard_of_unit(home)
        if dst_shard != self.shard_id:
            # Counted as created in the destination's tracker at delivery;
            # the engine's exported==injected ledger covers the transit.
            self.boundary.export(self.sim.now, task, dst_shard)
            return
        self.tracker.task_created(task.ts)
        self.units[src_unit].accept_task(task)

    def seed_task(self, task: Task) -> None:
        home = self.addr_map.unit_of_addr(task.data_addr)
        if self.plan.shard_of_unit(home) != self.shard_id:
            # The home shard's replica seeds it; only counted for audit.
            self.boundary.seeds_skipped += 1
            return
        self.tracker.task_created(task.ts)
        self.units[home].accept_task(task)

    def schedule_import(self, msg: BoundaryMessage) -> None:
        """Schedule an inbound boundary task's arrival at its home unit."""
        def _arrive() -> None:
            task = task_from_payload(msg.payload)
            self.boundary.note_import(msg.src_shard)
            self.tracker.task_created(task.ts)
            home = self.addr_map.unit_of_addr(task.data_addr)
            self.units[home].accept_task(task)

        self.sim.schedule_at(msg.deliver_time, _arrive)


@dataclass(frozen=True)
class NDPShardBuilder:
    """Picklable factory for one shard's runtime (crosses fork/pipe).

    ``app`` is either an application name (each shard rebuilds it via
    ``make_app(app, scale, seed)``) or an *unattached*
    :class:`~repro.apps.base.NDPApplication` prototype, deep-copied per
    shard so every replica starts from exactly the same state.
    """

    app: "str | NDPApplication"
    scale: float
    seed: int
    config: SystemConfig
    plan: PartitionPlan
    shard_id: int
    verify: bool = True

    def __call__(self) -> "NDPShardRuntime":
        return NDPShardRuntime(self)


def _sub_config(config: SystemConfig, plan: PartitionPlan) -> SystemConfig:
    """The per-shard sub-topology carved from the global config."""
    topo = config.topology
    sub_topo = replace(
        topo,
        channels=plan.sub_channels,
        ranks_per_channel=plan.sub_ranks_per_channel,
        dimms_per_channel=math.gcd(
            topo.dimms_per_channel, plan.sub_ranks_per_channel
        ),
    )
    return config.replace(topology=sub_topo)


class NDPShardRuntime(ShardRuntime):
    """Window-protocol driver for one shard of an NDP machine."""

    def __init__(self, builder: NDPShardBuilder) -> None:
        self.shard_id = builder.shard_id
        self.system = ShardNDPSystem(
            _sub_config(builder.config, builder.plan),
            builder.config, builder.plan, builder.shard_id,
        )
        if isinstance(builder.app, str):
            from ..apps import make_app

            self.app = make_app(
                builder.app, scale=builder.scale, seed=builder.seed
            )
        else:
            self.app = copy.deepcopy(builder.app)
        self.app.attach(self.system)
        self.app.seed_tasks(self.system)
        self.do_verify = builder.verify
        self._completed = False
        self._verified: Optional[bool] = None

    # -- protocol --------------------------------------------------------
    def begin(self) -> ShardReport:
        if self.system.plan.shards > 1:
            # shards=1 runs through run_complete -> system.run(), which
            # starts the fabric itself.
            self.system.fabric.start()
        return self._report()

    def run_window(
        self, until: int, inbox: Sequence[BoundaryMessage]
    ) -> ShardReport:
        for msg in inbox:
            self.system.schedule_import(msg)
        self.system.sim.run(until=until)
        return self._report()

    def apply_control(self, decision: ControlDecision) -> ShardReport:
        tracker = self.system.tracker
        if not isinstance(tracker, ShardTracker):
            raise SimulationError(
                "control decisions require a ShardTracker (shards > 1)"
            )
        if decision.kind == "advance":
            tracker.force_advance()
        elif decision.kind == "finish":
            tracker.force_finish()
        else:
            raise SimulationError(
                f"unknown control decision {decision.kind!r}"
            )
        return self._report()

    def run_complete(self) -> None:
        self.system.run()
        self._completed = True
        if self.do_verify:
            self._verified = self.app.verify()
            if not self._verified:
                from .runner import VerificationError

                raise VerificationError(
                    f"{self.app.name} on design "
                    f"{self.system.config.design.value} (sharded, 1 shard): "
                    "distributed result does not match the reference"
                )

    def finalize(self) -> Dict[str, object]:
        system = self.system
        if system.auditor is not None and not self._completed:
            # The windowed path never goes through system.run(); close the
            # per-shard message-lifecycle audit here instead.
            system.auditor.finish(system)
        units = list(system.units)
        finish = [u.finish_time for u in units]
        busy = [u.busy_cycles for u in units]
        makespan = max(finish) if finish else 0
        if makespan > 0:
            critical = max(range(len(units)), key=lambda i: finish[i])
            busy_critical = busy[critical]
        else:
            busy_critical = 0
        stats = system.stats
        boundary = system.boundary
        # App-specific per-shard results (open-loop latency samples);
        # None for closed-loop apps keeps the payload format unchanged.
        app_extra = self.app.shard_payload()
        payload: Dict[str, object] = {
            "shard": self.shard_id,
            "n_units": len(units),
            "makespan": makespan,
            "busy_total": sum(busy),
            "busy_critical": busy_critical,
            "tasks_executed": system.total_tasks_executed,
            "task_messages": stats.sum_counters(".tasks_forwarded"),
            "data_messages": (
                stats.sum_counters(".blocks_lent")
                + stats.sum_counters(".blocks_returned")
            ),
            "sram_accesses": stats.sum_counters(".sram_accesses"),
            "local_words_64bit": stats.sum_counters(".local_words_64bit"),
            "comm_words_64bit": stats.sum_counters(".comm_words_64bit"),
            "link_bytes": stats.sum_counters(".bytes"),
            "boundary_link_bytes": boundary.link_bytes,
            "events_processed": system.sim.events_processed,
            "tasks_created": system.tracker.total_created,
            "tasks_completed": system.tracker.total_completed,
            "epoch": system.tracker.epoch,
            "exported": {
                str(k): v
                for k, v in sorted(boundary.exported_by_dst.items())
            },
            "imported": {
                str(k): v
                for k, v in sorted(boundary.imported_by_src.items())
            },
            "seeds_skipped": boundary.seeds_skipped,
            "verified": self._verified,
        }
        if app_extra is not None:
            payload["app_extra"] = app_extra
        return payload

    # -- internals -------------------------------------------------------
    def _report(self) -> ShardReport:
        sim = self.system.sim
        tracker = self.system.tracker
        return ShardReport(
            shard_id=self.shard_id,
            now=sim.now,
            next_event_time=sim.peek_time(),
            events_processed=sim.events_processed,
            quiescent=tracker.epoch_quiescent,
            future_work=tracker.has_future_work,
            finished=tracker.finished,
            outbox=self.system.boundary.drain(),
        )


class MergedStats(StatsRegistry):
    """A registry facade over summed per-shard counter totals.

    :func:`~repro.energy.account_energy` only reads ``sum_counters``;
    integer sums are associative, so feeding it the cross-shard totals
    reproduces the serial arithmetic bit-for-bit.
    """

    def __init__(self, sums: Dict[str, int]) -> None:
        super().__init__()
        self._suffix_sums = dict(sums)

    def sum_counters(self, suffix: str) -> int:
        return self._suffix_sums.get(suffix, 0)


@dataclass
class ShardedRunInfo:
    """Run record standing in for the ``system`` of a sharded RunResult."""

    config: SystemConfig
    plan: PartitionPlan
    payloads: List[Dict[str, object]]
    windows: int
    barriers: int
    boundary_messages: int
    exported: Dict[Tuple[int, int], int]
    injected: Dict[Tuple[int, int], int]

    @property
    def events_processed(self) -> int:
        return sum(int(p["events_processed"]) for p in self.payloads)  # type: ignore[call-overload]


def merge_shard_payloads(
    config: SystemConfig,
    app_name: str,
    payloads: Sequence[Dict[str, object]],
    shards: int,
    windows: int,
    boundary_tasks: int,
) -> RunMetrics:
    """Merge per-shard payloads into the exact global :class:`RunMetrics`.

    Every metric is derived from integer sums plus the global makespan,
    so the merge is exact: with one shard it reproduces
    :func:`~repro.analysis.metrics.collect_metrics` bit-for-bit.  The
    critical (wait-time) unit is the serial tie-break -- the first unit
    with the maximum finish time, i.e. the lowest shard id holding the
    global makespan.
    """
    def total(key: str) -> int:
        return sum(int(p[key]) for p in payloads)  # type: ignore[call-overload]

    n_units = total("n_units")
    busy_total = total("busy_total")
    makespan = max((int(p["makespan"]) for p in payloads), default=0)  # type: ignore[call-overload]
    avg_time = busy_total / n_units if n_units else 0.0
    if makespan > 0:
        busy_critical = next(
            int(p["busy_critical"]) for p in payloads  # type: ignore[call-overload]
            if int(p["makespan"]) == makespan  # type: ignore[call-overload]
        )
        wait_fraction = max(0.0, 1.0 - busy_critical / makespan)
    else:
        wait_fraction = 0.0

    sums = {
        ".sram_accesses": total("sram_accesses"),
        ".local_words_64bit": total("local_words_64bit"),
        ".comm_words_64bit": total("comm_words_64bit"),
        ".bytes": total("link_bytes") + total("boundary_link_bytes"),
    }
    energy = account_energy(config, MergedStats(sums), makespan, busy_total)

    return RunMetrics(
        design=config.design.value,
        app=app_name,
        makespan=makespan,
        avg_unit_time=avg_time,
        max_unit_time=makespan,
        wait_fraction=wait_fraction,
        total_busy_cycles=busy_total,
        tasks_executed=total("tasks_executed"),
        task_messages=total("task_messages"),
        data_messages=total("data_messages"),
        energy=energy,
        extra={
            "shards": shards,
            "windows": windows,
            "boundary_tasks": boundary_tasks,
        },
    )


def resolve_shards(config: SystemConfig, shards: Optional[int] = None) -> int:
    """Decide the shard count for one run.

    An explicit ``shards`` argument is strict (an unshardable topology
    raises).  ``None`` consults ``NDPBRIDGE_SHARDS``: ``auto`` means one
    shard per level-1 subtree, and a numeric value is best-effort -- the
    environment knob applies to whole suites spanning many topologies,
    so infeasible requests fall back to the largest feasible split (down
    to 1) instead of erroring.
    """
    if shards is not None:
        return shards
    requested = shards_from_env(default=1)
    if requested is None:  # auto
        requested = config.topology.ranks
    if requested <= 1:
        return 1
    for candidate in range(min(requested, config.topology.ranks), 1, -1):
        try:
            validate_shardable(config, candidate)
            return candidate
        except ConfigError:
            continue
    return 1


def run_app_sharded(
    app: "str | NDPApplication",
    config: SystemConfig,
    *,
    scale: float = 1.0,
    seed: int = 1,
    shards: Optional[int] = None,
    verify: bool = True,
    parallel: Optional[bool] = None,
    barrier_hook=None,
):
    """Sharded twin of :func:`repro.runtime.runner.run_app`.

    Splits the machine into shards (see :func:`resolve_shards`), runs
    them under the conservative-window engine, and returns a
    ``RunResult`` whose ``system`` is a :class:`ShardedRunInfo`.

    ``app`` is an application name (``scale``/``seed`` size each shard's
    replica) or an unattached application instance used as the prototype
    every shard deep-copies (``scale`` is then ignored).

    Result verification runs in-shard only for ``shards=1`` (with more
    shards every replica holds just its partition of the final state);
    multi-shard correctness is covered by the bit-identity and
    conservation checks instead.

    ``barrier_hook`` is forwarded to the
    :class:`~repro.sim.sharded.ShardedSimulator` barrier loop -- the
    snapshot layer uses it to capture barrier-aligned checkpoints
    without perturbing the run.
    """
    if config.design is Design.H:
        raise ConfigError(
            "design H runs on the host model; sharded execution requires "
            "an NDP design"
        )
    plan = plan_partition(config, resolve_shards(config, shards))
    builders = [
        NDPShardBuilder(
            app=app, scale=scale, seed=seed, config=config, plan=plan,
            shard_id=shard_id, verify=verify,
        )
        for shard_id in range(plan.shards)
    ]
    engine = ShardedSimulator(
        builders, plan, parallel=parallel, barrier_hook=barrier_hook
    )
    result = engine.run()
    return finish_sharded_run(
        app, config, plan, result, scale=scale, seed=seed
    )


def finish_sharded_run(
    app: "str | NDPApplication",
    config: SystemConfig,
    plan: PartitionPlan,
    result,
    *,
    scale: float = 1.0,
    seed: int = 1,
):
    """Turn a :class:`~repro.sim.sharded.ShardedResult` into a RunResult.

    The conservation merge + metrics merge tail of
    :func:`run_app_sharded`, shared with the snapshot layer's
    :func:`~repro.state.snapshot.resume_app_sharded` so a resumed run
    closes out through exactly the same checks and arithmetic.
    """
    from .runner import RunResult

    payloads = sorted(result.payloads, key=lambda p: int(p["shard"]))  # type: ignore[call-overload]

    # Cross-shard conservation merge: the shards' own ledgers must agree
    # with the engine's (exports picked up == imports delivered, per peer).
    for payload in payloads:
        src = int(payload["shard"])  # type: ignore[call-overload]
        for dst_str, count in payload["exported"].items():  # type: ignore[union-attr]
            if result.exported.get((src, int(dst_str)), 0) != count:
                raise SimulationError(
                    f"sharded: shard {src} recorded {count} exports to "
                    f"{dst_str} but the engine saw "
                    f"{result.exported.get((src, int(dst_str)), 0)}"
                )
        for src_str, count in payload["imported"].items():  # type: ignore[union-attr]
            injected = result.injected.get((int(src_str), src), 0)
            if injected != count:
                raise SimulationError(
                    f"sharded: shard {src} recorded {count} imports from "
                    f"{src_str} but the engine injected {injected}"
                )

    metrics = merge_shard_payloads(
        config, app if isinstance(app, str) else app.name, payloads,
        shards=plan.shards, windows=result.windows,
        boundary_tasks=result.boundary_messages,
    )
    if isinstance(app, str):
        from ..apps import make_app

        result_app = make_app(app, scale=scale, seed=seed)
    else:
        result_app = app
    info = ShardedRunInfo(
        config=config, plan=plan, payloads=list(payloads),
        windows=result.windows, barriers=result.barriers,
        boundary_messages=result.boundary_messages,
        exported=result.exported, injected=result.injected,
    )
    return RunResult(
        app=result_app,
        system=info,
        metrics=metrics,
    )
