"""Data partitioning across NDP units (Section II-B).

DRAM-bank NDP requires each unit to hold a contiguous range of the data it
computes on; UPMEM's SDK does this with a transposition procedure and
HBM-PIM with a BLAS-layout rearrangement.  We assume the same facility: the
:class:`PartitionMap` places logical arrays into the per-bank physical
address space, with either a *blocked* layout (contiguous element ranges
per unit -- the default, matching coarse-grained interleaving) or a
*striped* layout (round-robin).

Addresses returned here are the physical addresses tasks carry
(Section IV notes NDP systems work on large contiguous ranges or physical
addresses directly).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..dram.address import AddressMap


class AllocationError(RuntimeError):
    """A data array does not fit in the per-bank data region."""


@dataclass(frozen=True)
class DataArray:
    """A logical array partitioned across all units."""

    name: str
    n_elements: int
    element_size: int
    layout: str                   # "blocked" | "striped"
    per_unit: int                 # elements placed in each unit
    unit_offsets: Tuple[int, ...]  # byte offset of this array in each bank

    def bytes_per_unit(self) -> int:
        return self.per_unit * self.element_size


class PartitionMap:
    """Allocates arrays into banks and resolves element <-> address."""

    def __init__(self, addr_map: AddressMap):
        self.addr_map = addr_map
        self.units = addr_map.total_units
        self.bank_bytes = addr_map.bank_bytes
        self._arrays: Dict[str, DataArray] = {}
        # Bump allocator per unit; all units allocate in lockstep so a
        # single cursor suffices.
        self._next_offset = 0

    def allocate(
        self, name: str, n_elements: int, element_size: int,
        layout: str = "blocked",
    ) -> DataArray:
        """Place a new array across all banks."""
        if name in self._arrays:
            raise AllocationError(f"array {name!r} already allocated")
        if n_elements <= 0 or element_size <= 0:
            raise AllocationError("array must have positive size")
        if layout not in ("blocked", "striped"):
            raise AllocationError(f"unknown layout {layout!r}")
        per_unit = math.ceil(n_elements / self.units)
        nbytes = per_unit * element_size
        if self._next_offset + nbytes > self.bank_bytes:
            raise AllocationError(
                f"array {name!r} ({nbytes} B/bank) overflows the bank "
                f"({self._next_offset}/{self.bank_bytes} B used)"
            )
        offsets = tuple(self._next_offset for _ in range(self.units))
        arr = DataArray(
            name=name, n_elements=n_elements, element_size=element_size,
            layout=layout, per_unit=per_unit, unit_offsets=offsets,
        )
        self._next_offset += nbytes
        self._arrays[name] = arr
        return arr

    def array(self, name: str) -> DataArray:
        return self._arrays[name]

    # -- element <-> placement ---------------------------------------------
    def placement(self, arr: DataArray, index: int) -> Tuple[int, int]:
        """``(unit_id, slot)`` of element ``index``."""
        if not 0 <= index < arr.n_elements:
            raise IndexError(f"{arr.name}[{index}] out of range")
        if arr.layout == "blocked":
            return index // arr.per_unit, index % arr.per_unit
        return index % self.units, index // self.units

    def addr_of(self, arr: DataArray, index: int) -> int:
        unit, slot = self.placement(arr, index)
        return (
            unit * self.bank_bytes
            + arr.unit_offsets[unit]
            + slot * arr.element_size
        )

    def home_unit(self, arr: DataArray, index: int) -> int:
        return self.placement(arr, index)[0]

    def index_of(self, arr: DataArray, addr: int) -> int:
        """Inverse of :meth:`addr_of` (used by task functions)."""
        unit = addr // self.bank_bytes
        offset = addr % self.bank_bytes - arr.unit_offsets[unit]
        if offset < 0 or offset % arr.element_size != 0:
            raise ValueError(f"address {addr:#x} not in array {arr.name!r}")
        slot = offset // arr.element_size
        if slot >= arr.per_unit:
            raise ValueError(f"address {addr:#x} not in array {arr.name!r}")
        if arr.layout == "blocked":
            index = unit * arr.per_unit + slot
        else:
            index = slot * self.units + unit
        if not 0 <= index < arr.n_elements:
            raise ValueError(f"address {addr:#x} beyond array {arr.name!r}")
        return index

    def elements_of_unit(self, arr: DataArray, unit_id: int) -> List[int]:
        """All element indices homed in ``unit_id``."""
        if arr.layout == "blocked":
            lo = unit_id * arr.per_unit
            hi = min(arr.n_elements, lo + arr.per_unit)
            return list(range(lo, hi))
        return list(range(unit_id, arr.n_elements, self.units))

    @property
    def bytes_used_per_bank(self) -> int:
        return self._next_offset
