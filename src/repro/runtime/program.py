"""Task-based message-passing programming model (Section IV).

Applications register *task functions* and spawn child tasks through the
``enqueue_task`` API::

    task_id enqueue_task(function, timestamp, data_addr, workload, args...)

A task function receives a :class:`TaskContext` and its :class:`Task`;
whatever child tasks it enqueues are routed by the runtime to the unit
holding the target data element (data-local execution) or wherever that
element has been lent by the load balancer.  Tasks with the same timestamp
run in the same bulk-synchronous epoch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .task import Task

TaskFunction = Callable[["TaskContext", Task], None]


class TaskRegistry:
    """Maps function names (the wire-format task type) to callables.

    A task type may also register a *dynamic cost function* evaluated when
    the task is dispatched: real execution cost is data-dependent (e.g. a
    stale label-propagation update costs a compare-and-drop, not a full
    neighbor push), and a cycle-accurate simulator would observe exactly
    that.  Without a cost function the task's ``actual_cycles``/estimate
    is charged.
    """

    def __init__(self):
        self._functions: Dict[str, TaskFunction] = {}
        self._costs: Dict[str, Callable[["Task"], int]] = {}

    def register(
        self,
        name: str,
        fn: TaskFunction,
        cost: Optional[Callable[["Task"], int]] = None,
    ) -> None:
        if name in self._functions:
            raise ValueError(f"task function {name!r} already registered")
        self._functions[name] = fn
        if cost is not None:
            self._costs[name] = cost

    def lookup(self, name: str) -> TaskFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no task function registered as {name!r}") from None

    def dispatch_cost(self, task: "Task") -> int:
        """Cycles this task will take, evaluated at dispatch time."""
        cost_fn = self._costs.get(task.func)
        if cost_fn is None:
            return task.execution_cycles
        return max(1, int(cost_fn(task)))

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)


class TaskContext:
    """Execution context handed to a task function.

    The context is the *only* interface application code has to the
    machine: it can enqueue child tasks and observe which unit and cycle it
    runs at.  Data accesses happen on the Python objects of the application
    itself -- their cost is modelled by the task's ``workload``/data sizes,
    not traced.
    """

    __slots__ = ("unit_id", "now", "epoch", "_spawned")

    def __init__(self, unit_id: int, now: int, epoch: int):
        self.unit_id = unit_id
        self.now = now
        self.epoch = epoch
        self._spawned: List[Task] = []

    def enqueue_task(
        self,
        func: str,
        ts: int,
        data_addr: int,
        workload: Optional[int] = None,
        args: Tuple = (),
        actual_cycles: Optional[int] = None,
        read_only: bool = False,
    ) -> Task:
        """Spawn a child task (the paper's ``enqueue_task`` API)."""
        if ts < self.epoch:
            raise ValueError(
                f"child timestamp {ts} precedes current epoch {self.epoch}"
            )
        task = Task(
            func=func, ts=ts, data_addr=data_addr, workload=workload,
            args=args, actual_cycles=actual_cycles, read_only=read_only,
        )
        self._spawned.append(task)
        return task

    def spawned(self) -> List[Task]:
        return self._spawned
