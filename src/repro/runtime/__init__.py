"""Task-based programming model and runtime (Section IV)."""

from .partition import AllocationError, DataArray, PartitionMap
from .program import TaskContext, TaskRegistry
from .runner import RunResult, VerificationError, build_system, run_app
from .system import NDPSystem
from .task import Task
from .tracker import RunTracker

__all__ = [
    "AllocationError",
    "DataArray",
    "PartitionMap",
    "TaskContext",
    "TaskRegistry",
    "RunResult",
    "VerificationError",
    "build_system",
    "run_app",
    "NDPSystem",
    "Task",
    "RunTracker",
]
