"""The assembled NDP system: units + fabric + tracker + partition map.

:class:`NDPSystem` is the facade applications and benchmarks interact
with: build it from a :class:`~repro.config.SystemConfig`, let the
application allocate arrays and register task functions, seed the initial
tasks, then :meth:`run` to completion.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..bridge.fabric import build_fabric
from ..config import SystemConfig, validate_config
from ..dram.address import AddressMap
from ..ndp.unit import NDPUnit
from ..sim import DeterministicRNG, SimulationError, Simulator, StatsRegistry
from .partition import PartitionMap
from .program import TaskRegistry
from .task import Task
from .tracker import RunTracker


class NDPSystem:
    """One simulated DRAM-bank NDP machine.

    Subclasses (the sharded engine's per-shard systems) customize
    construction through the ``_build_*`` hooks below rather than by
    re-running ``__init__``; each hook has exactly one serial behavior
    so the plain system is unaffected.
    """

    def __init__(self, config: SystemConfig):
        validate_config(config)
        self.config = config
        self.sim = Simulator(max_cycles=config.max_cycles)
        self.stats = StatsRegistry()
        self.rng = DeterministicRNG(config.seed)
        self.addr_map = self._build_addr_map(config)
        self.partition = self._build_partition()
        self.registry = TaskRegistry()
        self.tracker = self._build_tracker()
        self.units: Sequence[NDPUnit] = self._wrap_units([
            NDPUnit(
                self.sim, config, self.stats, unit_id, self,
                self.rng.substream(f"unit{unit_id}"),
            )
            for unit_id in self._unit_ids(config)
        ])
        self.fabric = build_fabric(
            self.sim, config, self.stats, self, self.rng.substream("fabric")
        )
        # Sanitizer mode implies message-lifecycle auditing: observation-
        # only instance wrappers, so plain runs pay zero overhead and
        # sanitized runs stay bit-identical (tests/test_flow_auditor.py).
        self.auditor = None
        if self.sim.sanitize:
            from ..flow.auditor import MessageAuditor

            self.auditor = MessageAuditor()
            self.auditor.attach(self)
        self.tracker.on_epoch_advance(self._on_epoch_advance)
        self._ran = False

    # -- construction hooks (overridden by sharded subclasses) ----------
    def _build_addr_map(self, config: SystemConfig) -> AddressMap:
        return AddressMap(config)

    def _build_partition(self) -> PartitionMap:
        return PartitionMap(self.addr_map)

    def _build_tracker(self) -> RunTracker:
        return RunTracker()

    def _unit_ids(self, config: SystemConfig) -> Iterable[int]:
        return range(config.topology.total_units)

    def _wrap_units(self, units: List[NDPUnit]) -> Sequence[NDPUnit]:
        return units

    # ------------------------------------------------------------------
    @property
    def has_level2(self) -> bool:
        return getattr(self.fabric, "level2", None) is not None

    def spawn(self, src_unit: int, task: Task) -> None:
        """A task function on ``src_unit`` spawned a child task."""
        self.tracker.task_created(task.ts)
        self.units[src_unit].accept_task(task)

    def seed_task(self, task: Task) -> None:
        """Inject an initial task at its data element's home unit.

        Seeding models the input distribution step that precedes NDP
        execution (queries/roots scattered to their home banks); it incurs
        no simulated communication, identically for every design.
        """
        self.tracker.task_created(task.ts)
        home = self.addr_map.unit_of_addr(task.data_addr)
        self.units[home].accept_task(task)

    # ------------------------------------------------------------------
    def run(self) -> "NDPSystem":
        """Run the simulation until all tasks drain.

        Raises :class:`SimulationError` when the event queue empties while
        work is still outstanding (a lost task/message -- a model bug) or
        when ``max_cycles`` is exceeded.

        Equivalent to :meth:`start` followed by :meth:`finish`; the
        snapshot driver (:mod:`repro.state.snapshot`) uses the split
        form with :meth:`advance` in between to pause at a cycle.
        """
        return self.start().finish()

    def start(self) -> "NDPSystem":
        """Begin execution without draining any events.

        Starts the fabric and runs the initial progress check; the event
        queue is untouched, so a subsequent :meth:`advance`/:meth:`finish`
        continues exactly where an uninterrupted :meth:`run` would have
        started.
        """
        if self._ran:
            raise RuntimeError("system already ran; build a fresh one")
        self._ran = True
        self.fabric.start()
        self.tracker.check_progress()  # empty workload finishes immediately
        return self

    def advance(self, until: int) -> "NDPSystem":
        """Run events up to cycle ``until`` (inclusive), then pause.

        The pause point is a clean batch boundary: the engine dispatches
        whole same-cycle batches, so no cycle is ever half-executed.
        Requires :meth:`start` first.
        """
        if not self._ran:
            raise RuntimeError("call start() before advance()")
        if not self.tracker.finished:
            self.sim.run(
                until=until,
                stop_condition=lambda: self.tracker.finished,
            )
        return self

    def finish(self) -> "NDPSystem":
        """Drain the remaining events and close out the run."""
        if not self._ran:
            raise RuntimeError("call start() before finish()")
        if not self.tracker.finished:
            self.sim.run(stop_condition=lambda: self.tracker.finished)
        if not self.tracker.finished:
            raise SimulationError(
                "event queue drained with work outstanding: "
                f"epoch={self.tracker.epoch}, "
                f"outstanding={self.tracker.outstanding(self.tracker.epoch)}, "
                f"task_msgs={self.tracker.task_messages_in_flight}"
            )
        if self.auditor is not None:
            self.auditor.finish(self)
        return self

    # ------------------------------------------------------------------
    def _on_epoch_advance(self, epoch: int) -> None:
        for unit in self.units:
            unit.on_epoch(epoch)

    # -- convenience views -------------------------------------------------
    @property
    def makespan(self) -> int:
        return max((u.finish_time for u in self.units), default=0)

    @property
    def total_tasks_executed(self) -> int:
        return sum(u.tasks_executed for u in self.units)
