"""Open-loop request driving: inject requests into a *running* system.

Closed-loop runs (:func:`~repro.runtime.runner.run_app`) seed every task
up front and report makespan.  This module drives the index apps as
*services* instead: requests from :func:`repro.workloads.openloop
.generate_requests` are injected at their arrival cycles into a live
:class:`~repro.runtime.system.NDPSystem` via the ``start()`` /
``advance()`` / ``finish()`` split, and each request's birth->completion
latency is recorded per tenant by an exact
:class:`~repro.analysis.latency.LatencyRecorder`.

Design notes (all three composition oracles depend on these):

* **The run is held open by a sentinel.**  The tracker finishes a run
  when the current epoch is quiescent with no future work -- which,
  open-loop, would happen in the first idle gap between arrivals.
  ``seed_tasks`` therefore registers one sentinel task at ts=0 that is
  only completed by the *last* injection event, so quiescence is
  unreachable until the full stream is in.  This works unchanged for
  the sharded engine's finish consensus: a shard with an open sentinel
  reports non-quiescent, so no barrier can finish the run early.
* **Injection is a chain of simulator events.**  ``_pump`` (a bound
  method -- snapshot-safe, lint-safe) injects every request of the
  current cycle through ``system.seed_task`` and schedules itself at
  the next arrival cycle.  Under the sharded engine every shard runs
  the identical pump over the identical request list; ``seed_task``
  already filters non-home seeds, so each request enters exactly once,
  on its home shard.
* **The request list is pure data.**  Generated deterministically
  before the run starts and stored on the app, so snapshot/fork clones
  carry the stream (and the not-yet-fired pump event) with them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, cast

from ..analysis.latency import LatencyRecorder
from ..analysis.metrics import collect_metrics
from ..config import ConfigError, Design, SystemConfig
from ..workloads.openloop import OpenLoopSpec, Request, generate_requests
from .runner import RunResult, VerificationError, build_system

if TYPE_CHECKING:  # avoid a circular import; apps build on the runtime
    from ..apps.base import NDPApplication

__all__ = [
    "OpenLoopApp",
    "RequestDriver",
    "run_openloop",
]


class OpenLoopApp:
    """Adapter presenting an open-loop request stream as an application.

    Wraps a request-capable index app (``supports_requests``): ``build``
    delegates to the inner app and installs the completion listener;
    ``seed_tasks`` schedules the arrival pump instead of seeding tasks.
    Because it satisfies the same ``attach``/``seed_tasks``/``verify``
    protocol, every existing harness -- ``run_app``, the sharded
    replicator, ``run_app_with_snapshot``, exec cells -- drives it
    unmodified.
    """

    def __init__(self, inner: "NDPApplication", spec: OpenLoopSpec) -> None:
        if not getattr(inner, "supports_requests", False):
            raise ConfigError(
                f"app {inner.name!r} does not support request mode "
                "(open-loop driving needs ll, ht or tree)"
            )
        self.inner = inner
        self.spec = spec
        self.name = f"ol-{inner.name}"
        self.seed = inner.seed
        self.recorder = LatencyRecorder()
        self.completions = 0
        self._system = None
        self._requests: List[Request] = []
        self._next = 0

    # -- application protocol --------------------------------------------
    def attach(self, system) -> None:
        self._system = system
        self.inner.attach(system)
        self.inner.set_request_listener(self._on_complete)
        self._requests = generate_requests(
            self.spec.tenants, self.inner.request_keyspace(), self.seed
        )
        self._next = 0

    def seed_tasks(self, system) -> None:
        # The sentinel: one ts=0 task that only the last pump completes,
        # holding epoch 0 (and therefore the run) open across idle gaps.
        # Registered directly on the tracker -- each shard replica needs
        # its own, and seed_task's home filter must not see it.
        system.tracker.task_created(0)
        system.sim.schedule_at(self._requests[0].arrival, self._pump)

    def verify(self) -> bool:
        if self.completions != len(self._requests):
            return False
        spans = 0
        for req in self._requests:
            spans += self.inner.request_span(req.rank)
        return self.inner.request_visits() == spans

    # -- the arrival pump -------------------------------------------------
    def _pump(self) -> None:
        system = self._system
        requests = self._requests
        now = system.sim.now
        i = self._next
        n = len(requests)
        while i < n and requests[i].arrival == now:
            req = requests[i]
            system.seed_task(
                self.inner.make_request_task(req.rank, req.req_id)
            )
            i += 1
        self._next = i
        if i < n:
            system.sim.schedule_at(requests[i].arrival, self._pump)
        else:
            # Stream fully injected: release the sentinel.  The injected
            # tasks are still outstanding, so this cannot finish the run
            # by itself -- it merely makes quiescence reachable.
            system.tracker.task_completed(0)

    def _on_complete(self, req_id: int, now: int) -> None:
        req = self._requests[req_id]
        self.completions += 1
        if req.arrival >= self.spec.warmup:
            self.recorder.record(req.tenant, now - req.arrival)

    # -- result plumbing ---------------------------------------------------
    def shard_payload(self) -> Dict[str, object]:
        """Per-shard latency samples, merged by :func:`run_openloop`."""
        return {
            "completions": self.completions,
            "requests": len(self._requests),
            "last_arrival": (
                self._requests[-1].arrival if self._requests else 0
            ),
            "samples": {
                tenant: list(samples)
                for tenant, samples in sorted(self.recorder.samples.items())
            },
        }

    def latency_extra(self) -> Dict[str, float]:
        """The flat ``RunMetrics.extra`` entries for this run."""
        out = {
            "ol/requests": float(len(self._requests)),
            "ol/completed": float(self.completions),
            "ol/warmup": float(self.spec.warmup),
            "ol/last_arrival": float(self._requests[-1].arrival),
        }
        out.update(self.recorder.summary())
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"OpenLoopApp({self.inner.name}, "
            f"tenants={len(self.spec.tenants)})"
        )


class RequestDriver:
    """Explicit start/advance/finish control over one open-loop run.

    ``run_openloop`` uses it for the serial path; tests use the split
    form to pause mid-stream (e.g. to snapshot between arrivals).
    """

    def __init__(self, app: OpenLoopApp, config: SystemConfig) -> None:
        self.app = app
        self.config = config
        self.system = build_system(config)
        app.attach(self.system)
        app.seed_tasks(self.system)

    def start(self) -> "RequestDriver":
        self.system.start()
        return self

    def advance(self, until: int) -> "RequestDriver":
        self.system.advance(until=until)
        return self

    def finish(self, verify: bool = True) -> RunResult:
        self.system.finish()
        if verify and not self.app.verify():
            raise VerificationError(
                f"{self.app.name} on design {self.config.design.value}: "
                f"completed {self.app.completions} of "
                f"{len(self.app._requests)} requests or span mismatch"
            )
        metrics = collect_metrics(self.system, self.app.name)
        metrics.extra.update(self.app.latency_extra())
        # OpenLoopApp satisfies the application protocol by duck typing;
        # the cast papers over the missing nominal base class.
        return RunResult(app=cast(Any, self.app), system=self.system,
                         metrics=metrics)


def run_openloop(
    app: str,
    config: SystemConfig,
    spec: OpenLoopSpec,
    *,
    scale: float = 1.0,
    seed: int = 1,
    verify: bool = True,
    shards: Optional[int] = None,
    snapshot_at: Optional[int] = None,
    parallel: Optional[bool] = None,
) -> RunResult:
    """Run one open-loop cell; the ``run_app`` twin for request driving.

    Returns a :class:`~repro.runtime.runner.RunResult` whose metrics
    carry the per-tenant latency report in ``extra`` (flat ``lat/...``
    keys -- cache- and JSON-safe).  ``shards`` follows ``run_app``
    semantics (explicit count is strict; ``None`` stays serial);
    ``snapshot_at`` routes the serial path through the snapshot oracle
    (pause, snapshot, finish from the restored fork).
    """
    if config.design is Design.H:
        raise ConfigError(
            "open-loop driving targets the NDP designs (C/B/W/O); "
            "design H has no request-mode runtime"
        )
    from ..apps import make_app

    ol_app = OpenLoopApp(make_app(app, scale=scale, seed=seed), spec)

    if shards is not None and shards > 1:
        if snapshot_at is not None:
            raise ValueError(
                "snapshot_at requires a serial open-loop run (shards=1)"
            )
        from .shards import run_app_sharded

        result = run_app_sharded(
            cast(Any, ol_app), config, seed=seed, shards=shards,
            verify=False, parallel=parallel,
        )
        # Merge each shard's recorder: chains complete on whichever
        # shard they end on, so the shards hold disjoint sample sets.
        # result.app is the unattached prototype (no request list), so
        # stream-level facts come from the payloads -- every shard
        # generated the identical stream.
        merged = LatencyRecorder()
        completions = 0
        n_requests = 0
        last_arrival = 0
        for payload in result.system.payloads:
            extra = payload.get("app_extra")
            if not extra:
                continue
            completions += int(extra["completions"])
            n_requests = int(extra["requests"])
            last_arrival = int(extra["last_arrival"])
            for tenant, samples in extra["samples"].items():
                for sample in samples:
                    merged.record(tenant, int(sample))
        merged_app: OpenLoopApp = result.app
        merged_app.recorder = merged
        merged_app.completions = completions
        result.metrics.extra.update({
            "ol/requests": float(n_requests),
            "ol/completed": float(completions),
            "ol/warmup": float(spec.warmup),
            "ol/last_arrival": float(last_arrival),
        })
        result.metrics.extra.update(merged.summary())
        if verify and completions != n_requests:
            raise VerificationError(
                f"{merged_app.name} (sharded): completed {completions} of "
                f"{n_requests} requests"
            )
        return result

    if snapshot_at is not None:
        from ..state.snapshot import run_app_with_snapshot

        forked, _snap = run_app_with_snapshot(
            ol_app, config, snapshot_at=snapshot_at, verify=verify,
        )
        forked.metrics.extra.update(forked.app.latency_extra())
        return forked

    return RequestDriver(ol_app, config).start().finish(verify=verify)
