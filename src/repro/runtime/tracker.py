"""Global progress tracking: epochs, quiescence, termination.

The bulk-synchronous model (Section IV) executes all tasks of timestamp
``t`` before any task of ``t+1``.  The tracker counts task creations and
completions per timestamp plus task messages in flight; when the current
epoch has no outstanding tasks and no task message is in transit, the
epoch barrier advances.  The run terminates when every timestamp has
drained and no unit holds future tasks.

Data messages (block lends/returns) intentionally do *not* hold the epoch
open: a block in flight without tasks cannot create epoch-``t`` work.
Tasks travelling alongside it are counted individually.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List


class RunTracker:
    """Counts outstanding work and drives the epoch barrier."""

    def __init__(self):
        self.created: Dict[int, int] = defaultdict(int)
        self.completed: Dict[int, int] = defaultdict(int)
        self.task_messages_in_flight = 0
        self.data_messages_in_flight = 0
        self.epoch = 0
        self.finished = False
        self.total_created = 0
        self.total_completed = 0
        self._epoch_listeners: List[Callable[[int], None]] = []
        self._finish_listeners: List[Callable[[], None]] = []

    # -- wiring --------------------------------------------------------
    def on_epoch_advance(self, fn: Callable[[int], None]) -> None:
        self._epoch_listeners.append(fn)

    def on_finish(self, fn: Callable[[], None]) -> None:
        self._finish_listeners.append(fn)

    # -- event hooks -----------------------------------------------------
    def task_created(self, ts: int) -> None:
        if ts < self.epoch:
            raise ValueError(f"task created for past epoch {ts} < {self.epoch}")
        self.created[ts] += 1
        self.total_created += 1

    def task_completed(self, ts: int) -> None:
        self.completed[ts] += 1
        self.total_completed += 1
        if self.completed[ts] > self.created[ts]:
            raise RuntimeError(f"more completions than creations at ts={ts}")
        self.check_progress()

    def message_departed(self, is_data: bool) -> None:
        if is_data:
            self.data_messages_in_flight += 1
        else:
            self.task_messages_in_flight += 1

    def message_delivered(self, is_data: bool) -> None:
        if is_data:
            self.data_messages_in_flight -= 1
            if self.data_messages_in_flight < 0:
                raise RuntimeError("data message in-flight count underflow")
        else:
            self.task_messages_in_flight -= 1
            if self.task_messages_in_flight < 0:
                raise RuntimeError("task message in-flight count underflow")
        self.check_progress()

    # -- state queries -----------------------------------------------------
    def outstanding(self, ts: int) -> int:
        return self.created[ts] - self.completed[ts]

    @property
    def epoch_quiescent(self) -> bool:
        return (
            self.outstanding(self.epoch) == 0
            and self.task_messages_in_flight == 0
        )

    def _future_work_exists(self) -> bool:
        return any(
            self.created[ts] > self.completed[ts]
            for ts in self.created
            if ts > self.epoch
        )

    @property
    def has_future_work(self) -> bool:
        """Outstanding tasks exist for timestamps beyond the current epoch."""
        return self._future_work_exists()

    # -- barrier -------------------------------------------------------
    def check_progress(self) -> None:
        """Advance the epoch or finish the run if quiescent."""
        if self.finished:
            return
        while self.epoch_quiescent:
            if self._future_work_exists():
                self.epoch += 1
                for fn in self._epoch_listeners:
                    fn(self.epoch)
                # Listeners may have created epoch work; re-evaluate.
                continue
            self.finished = True
            for fn in self._finish_listeners:
                fn()
            return


class ShardTracker(RunTracker):
    """A :class:`RunTracker` whose barrier is driven externally.

    One shard cannot decide alone that an epoch has drained: another
    shard may still hold epoch tasks, or a boundary message may be in
    flight between them.  So :meth:`check_progress` is a no-op and the
    sharded engine's consensus policy calls :meth:`force_advance` /
    :meth:`force_finish` at window barriers once *every* shard reports
    quiescent and no boundary message is pending.
    """

    def check_progress(self) -> None:
        return

    def force_advance(self) -> None:
        """Advance one epoch; caller has established global quiescence."""
        if self.finished:
            raise RuntimeError("cannot advance a finished run")
        if not self.epoch_quiescent:
            raise RuntimeError(
                f"epoch {self.epoch} not quiescent: "
                f"{self.outstanding(self.epoch)} tasks outstanding, "
                f"{self.task_messages_in_flight} task messages in flight"
            )
        self.epoch += 1
        for fn in self._epoch_listeners:
            fn(self.epoch)

    def force_finish(self) -> None:
        """Terminate the run; caller has established global drain."""
        if self.finished:
            return
        if not self.epoch_quiescent or self._future_work_exists():
            raise RuntimeError("cannot finish: shard still holds work")
        self.finished = True
        for fn in self._finish_listeners:
            fn()
