"""``python -m repro.analyze`` -- every static analyzer, one invocation.

The repo carries three house analyzers with one shared finding model
(:class:`repro.lint.checker.Diagnostic`):

* **simlint** (``repro.lint``)  -- determinism hazards (SL rules),
* **simflow** (``repro.flow``)  -- message-protocol invariants (FL rules),
* **simstate** (``repro.state``) -- state inventory & snapshottability
  (ST rules).

Running them separately means three CI steps, three exit codes, and
three SARIF artifacts for what is conceptually a single gate.  This
module fans one path list out to all three and merges the answers:

* exit code 0 only when *every* tool is clean; 1 if any finds anything;
  2 on usage errors,
* text output interleaves findings prefixed by tool name,
* ``--format sarif`` emits one SARIF 2.1.0 log whose ``runs`` array has
  one run per tool (the format is explicitly multi-run, and CI uploads
  annotate all of them from a single artifact).

The tools stay individually invocable (``python -m repro.lint`` etc.)
for focused runs; this is the aggregate gate CI uses.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..flow.checker import analyze_paths as _flow_paths
from ..flow.rules import FLOW_RULES
from ..lint.checker import Diagnostic, lint_paths as _lint_paths
from ..lint.rules import RULES as LINT_RULES
from ..lint.sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_report
from ..state.checker import analyze_paths as _state_paths
from ..state.rules import STATE_RULES

__all__ = ["TOOLS", "run_tools", "merged_sarif", "main"]

# (name, runner, rule table) -- ordered as CI historically ran them.
TOOLS: Tuple[Tuple[str, Any, Any], ...] = (
    ("simlint", _lint_paths, LINT_RULES),
    ("simflow", _flow_paths, FLOW_RULES),
    ("simstate", _state_paths, STATE_RULES),
)


def run_tools(
    paths: Sequence[str],
) -> List[Tuple[str, List[Diagnostic]]]:
    """Run every analyzer over ``paths``; returns (tool, findings) pairs."""
    return [(name, runner(paths)) for name, runner, _rules in TOOLS]


def merged_sarif(
    results: Sequence[Tuple[str, List[Diagnostic]]],
) -> Dict[str, Any]:
    """One SARIF log with one run per tool.

    Each tool's run is produced by the shared :func:`sarif_report` (so
    per-tool output is byte-identical to running that tool alone); the
    merge just concatenates the ``runs`` arrays under one envelope.
    """
    rules_of = {name: rules for name, _runner, rules in TOOLS}
    runs: List[Dict[str, Any]] = []
    for name, diagnostics in results:
        runs.extend(
            sarif_report(diagnostics, rules_of[name], name)["runs"]
        )
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": runs,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description=(
            "run simlint + simflow + simstate with one exit code "
            "and one merged SARIF report"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the per-tool summary lines",
    )
    args = parser.parse_args(argv)

    results = run_tools(args.paths)
    total = sum(len(diags) for _name, diags in results)

    if args.format == "sarif":
        text = json.dumps(merged_sarif(results), indent=2)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 1 if total else 0

    lines = [
        f"{name}: {diag.format()}"
        for name, diags in results
        for diag in diags
    ]
    body = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(
            body + ("\n" if body else ""), encoding="utf-8"
        )
    elif body:
        print(body)
    if not args.quiet:
        for name, diags in results:
            if diags:
                print(f"{name}: {len(diags)} finding(s)")
            else:
                print(f"{name}: clean")
        verdict = "clean" if not total else f"{total} finding(s)"
        print(f"analyze: {verdict} -- {len(TOOLS)} tools")
    return 1 if total else 0
