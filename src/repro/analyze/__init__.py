"""``python -m repro.analyze`` -- every static analyzer, one invocation.

The repo carries four house analyzers with one shared finding model
(:class:`repro.lint.checker.Diagnostic`):

* **simlint** (``repro.lint``)  -- determinism hazards (SL rules),
* **simflow** (``repro.flow``)  -- message-protocol invariants (FL rules),
* **simstate** (``repro.state``) -- state inventory & snapshottability
  (ST rules),
* **simrace** (``repro.race``)  -- shard isolation & process-boundary
  safety for the parallel engine (RC rules).

Running them separately means four CI steps, four exit codes, and
four SARIF artifacts for what is conceptually a single gate.  This
module fans one path list out to all four and merges the answers:

* exit code 0 only when *every* tool is clean; 1 if any finds anything;
  2 on usage errors,
* text output interleaves findings prefixed by tool name,
* ``--format sarif`` emits one SARIF 2.1.0 log whose ``runs`` array has
  one run per tool (the format is explicitly multi-run, and CI uploads
  annotate all of them from a single artifact),
* ``--jobs N`` runs the tools in parallel worker processes (they are
  independent by construction -- each parses the tree itself),
* ``--baseline FILE`` diffs against a committed SARIF log and fails
  only on findings *not* present in the baseline, so a gate can be
  ratcheted onto a codebase with known debt.  Baseline matching is by
  (tool, rule, file, message) -- line numbers are deliberately ignored
  so unrelated edits that shift a known finding do not break the gate.

The tools stay individually invocable (``python -m repro.lint`` etc.)
for focused runs; this is the aggregate gate CI uses.
"""

from __future__ import annotations

import argparse
import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..flow.checker import analyze_paths as _flow_paths
from ..flow.rules import FLOW_RULES
from ..lint.checker import Diagnostic, lint_paths as _lint_paths
from ..lint.rules import RULES as LINT_RULES
from ..lint.sarif import SARIF_SCHEMA, SARIF_VERSION, sarif_report
from ..race.checker import analyze_paths as _race_paths
from ..race.rules import RACE_RULES
from ..state.checker import analyze_paths as _state_paths
from ..state.rules import STATE_RULES

__all__ = [
    "TOOLS",
    "run_tools",
    "merged_sarif",
    "baseline_fingerprints",
    "filter_baseline",
    "main",
]

# (name, runner, rule table) -- ordered as CI historically ran them.
TOOLS: Tuple[Tuple[str, Any, Any], ...] = (
    ("simlint", _lint_paths, LINT_RULES),
    ("simflow", _flow_paths, FLOW_RULES),
    ("simstate", _state_paths, STATE_RULES),
    ("simrace", _race_paths, RACE_RULES),
)

# A finding's identity for baseline diffing: line/column are excluded on
# purpose (edits above a known finding must not resurrect it).
Fingerprint = Tuple[str, str, str, str]


def _run_tool(name: str, paths: Sequence[str]) -> List[Diagnostic]:
    """Run one tool by name (module-level so worker processes can import it)."""
    for tool_name, runner, _rules in TOOLS:
        if tool_name == name:
            return runner(paths)
    raise ValueError(f"unknown analyzer {name!r}")


def run_tools(
    paths: Sequence[str],
    jobs: int = 1,
) -> List[Tuple[str, List[Diagnostic]]]:
    """Run every analyzer over ``paths``; returns (tool, findings) pairs.

    ``jobs > 1`` fans the tools out over worker processes.  Result order
    is always the ``TOOLS`` order, regardless of completion order.
    """
    names = [name for name, _runner, _rules in TOOLS]
    if jobs <= 1:
        return [(name, _run_tool(name, paths)) for name in names]
    with ProcessPoolExecutor(max_workers=min(jobs, len(names))) as pool:
        futures = [pool.submit(_run_tool, name, list(paths)) for name in names]
        return [
            (name, future.result())
            for name, future in zip(names, futures)
        ]


def merged_sarif(
    results: Sequence[Tuple[str, List[Diagnostic]]],
) -> Dict[str, Any]:
    """One SARIF log with one run per tool.

    Each tool's run is produced by the shared :func:`sarif_report` (so
    per-tool output is byte-identical to running that tool alone); the
    merge just concatenates the ``runs`` arrays under one envelope.
    """
    rules_of = {name: rules for name, _runner, rules in TOOLS}
    runs: List[Dict[str, Any]] = []
    for name, diagnostics in results:
        runs.extend(
            sarif_report(diagnostics, rules_of[name], name)["runs"]
        )
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": runs,
    }


def baseline_fingerprints(sarif: Dict[str, Any]) -> FrozenSet[Fingerprint]:
    """Extract (tool, rule, uri, message) fingerprints from a SARIF log.

    Accepts both single-run SARIF (one tool's own ``--format sarif``)
    and the merged multi-run log this module emits.
    """
    fingerprints = set()
    for run in sarif.get("runs", ()):
        tool = (
            run.get("tool", {}).get("driver", {}).get("name", "")
        )
        for result in run.get("results", ()):
            uri = ""
            locations = result.get("locations", ())
            if locations:
                uri = (
                    locations[0]
                    .get("physicalLocation", {})
                    .get("artifactLocation", {})
                    .get("uri", "")
                )
            fingerprints.add(
                (
                    tool,
                    result.get("ruleId", ""),
                    uri,
                    result.get("message", {}).get("text", ""),
                )
            )
    return frozenset(fingerprints)


def filter_baseline(
    results: Sequence[Tuple[str, List[Diagnostic]]],
    baseline: FrozenSet[Fingerprint],
) -> Tuple[List[Tuple[str, List[Diagnostic]]], int]:
    """Drop findings present in ``baseline``; returns (new, matched count)."""
    filtered: List[Tuple[str, List[Diagnostic]]] = []
    matched = 0
    for name, diagnostics in results:
        fresh = []
        for diag in diagnostics:
            key = (
                name,
                diag.rule,
                Path(diag.path).as_posix(),
                diag.message,
            )
            if key in baseline:
                matched += 1
            else:
                fresh.append(diag)
        filtered.append((name, fresh))
    return filtered, matched


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description=(
            "run simlint + simflow + simstate + simrace with one exit "
            "code and one merged SARIF report"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the per-tool summary lines",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run the analyzers in N parallel processes (default: 1)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "SARIF log of accepted findings; only findings absent from "
            "it count toward the exit code"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    results = run_tools(args.paths, jobs=args.jobs)

    matched = 0
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            parser.error(f"baseline not found: {args.baseline}")
        baseline = baseline_fingerprints(
            json.loads(baseline_path.read_text(encoding="utf-8"))
        )
        results, matched = filter_baseline(results, baseline)

    total = sum(len(diags) for _name, diags in results)

    if args.format == "sarif":
        text = json.dumps(merged_sarif(results), indent=2)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 1 if total else 0

    lines = [
        f"{name}: {diag.format()}"
        for name, diags in results
        for diag in diags
    ]
    body = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(
            body + ("\n" if body else ""), encoding="utf-8"
        )
    elif body:
        print(body)
    if not args.quiet:
        for name, diags in results:
            if diags:
                print(f"{name}: {len(diags)} finding(s)")
            else:
                print(f"{name}: clean")
        if matched:
            print(f"analyze: {matched} baseline finding(s) suppressed")
        if not total:
            verdict = "clean"
        elif args.baseline:
            verdict = f"{total} new finding(s)"
        else:
            verdict = f"{total} finding(s)"
        print(f"analyze: {verdict} -- {len(TOOLS)} tools")
    return 1 if total else 0
