"""Entry point for ``python -m repro.analyze``."""

import sys

from . import main

sys.exit(main())
