"""Conservative-window sharded simulation (the parallel engine core).

:class:`ShardedSimulator` coordinates N shard runtimes -- each wrapping an
independent :class:`~repro.sim.engine.Simulator` -- with the classic
conservative-lookahead protocol of parallel discrete-event simulation:

1. At a barrier, every shard reports its next event time and its pending
   cross-shard messages (the *outbox*).
2. The engine picks the window floor ``W`` = the earliest next event or
   pending delivery anywhere, and closes the window at
   ``W_end = plan.horizon(W)``: the earliest instant any message *sent at
   or after* ``W`` could possibly be delivered.  Because every
   cross-shard message needs at least the lookahead (the minimum
   cross-shard link latency) to arrive, no shard can receive anything
   inside ``[W, W_end)`` that is not already known at the barrier.
3. Messages whose delivery time falls inside the window are handed to
   their destination shard, then all shards run ``[W, W_end)``
   concurrently and the barrier repeats.

Shards therefore only synchronize at window barriers, and windows jump
across idle gaps (the floor is the global next-event time, not ``now``),
so a mostly-idle fabric pays almost no barrier overhead.

The engine is deliberately model-agnostic: it knows nothing about NDP
units or bridges, only about :class:`ShardRuntime` (the per-shard driver
protocol) and :class:`WindowPlan` (the lookahead rule).  The NDP binding
lives in :mod:`repro.runtime.shards`; toy runtimes in the test suite
drive the same engine directly.

Conservativeness is *checked*, not assumed: every outbox message must
satisfy ``deliver_time >= plan.horizon(send_time)`` and
``deliver_time >= W_end`` of the window that produced it.  A model whose
boundary latency undercuts its declared lookahead raises
:class:`~repro.sim.engine.SimulationError` at the barrier instead of
silently desynchronizing -- the negative tests rely on this.

Global decisions (epoch barriers, termination) are consensus decisions: a
*policy* inspects all shard reports plus the in-flight boundary count and
may order an epoch advance or the finish.  Decisions happen only at
barriers, which keeps them deterministic: the inline (single-process) and
parallel (forked worker) executions of the same shard set are
bit-identical, and the tests assert it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .engine import SimulationError

__all__ = [
    "BoundaryMessage",
    "ControlDecision",
    "FixedLookaheadPlan",
    "ShardReport",
    "ShardRuntime",
    "ShardedResult",
    "ShardedSimulator",
    "default_policy",
]


@dataclass(frozen=True)
class BoundaryMessage:
    """One serialized cross-shard message.

    ``payload`` must be picklable plain data (the parallel transport ships
    it over a pipe).  ``seq`` is the per-source-shard export sequence
    number; ``(src_shard, seq)`` is unique, which gives barrier delivery a
    deterministic total order.
    """

    src_shard: int
    dst_shard: int
    send_time: int
    deliver_time: int
    seq: int
    kind: str
    payload: Tuple[object, ...]


@dataclass(frozen=True)
class ShardReport:
    """A shard's state snapshot at a window barrier."""

    shard_id: int
    now: int
    next_event_time: Optional[int]
    events_processed: int
    #: No outstanding work in the current epoch (model-defined).
    quiescent: bool
    #: Work exists for a later epoch (model-defined; False if epochs are
    #: not part of the model).
    future_work: bool
    #: The runtime has been told to finish.
    finished: bool
    outbox: Tuple[BoundaryMessage, ...] = ()


@dataclass(frozen=True)
class ControlDecision:
    """A consensus decision broadcast to every shard at a barrier."""

    kind: str  # "advance" (epoch barrier) or "finish"


@dataclass(frozen=True)
class FixedLookaheadPlan:
    """The simplest window plan: a constant minimum message latency.

    With ``batch_period > 0`` deliveries additionally snap to the next
    multiple of the period (modelling a polling host that forwards
    boundary traffic in rounds), which legally *stretches* windows: no
    delivery can occur between rounds, so the horizon jumps to the next
    round boundary plus the hop latency.
    """

    shards: int
    lookahead: int
    batch_period: int = 0

    def horizon(self, t: int) -> int:
        """Earliest possible delivery of any message sent at time >= t."""
        if self.batch_period > 0:
            return ((t // self.batch_period) + 1) * self.batch_period + self.lookahead
        return t + self.lookahead


class ShardRuntime(ABC):
    """Driver protocol one shard implements.

    The engine calls, in order: :meth:`begin` once, then any mix of
    :meth:`run_window` and :meth:`apply_control`, then :meth:`finalize`
    once.  With a single shard the engine instead calls :meth:`begin`,
    :meth:`run_complete`, :meth:`finalize` -- the passthrough that makes
    ``shards=1`` exactly the serial engine.
    """

    shard_id: int = 0

    @abstractmethod
    def begin(self) -> ShardReport:
        """Start the model (schedule initial events); no events run yet."""

    @abstractmethod
    def run_window(
        self, until: int, inbox: Sequence[BoundaryMessage]
    ) -> ShardReport:
        """Inject ``inbox``, run all events with ``time <= until``."""

    @abstractmethod
    def apply_control(self, decision: ControlDecision) -> ShardReport:
        """Apply a barrier consensus decision (epoch advance / finish)."""

    def run_complete(self) -> None:
        """Run to completion serially (single-shard passthrough)."""
        raise SimulationError(
            f"{type(self).__name__} does not support single-shard passthrough"
        )

    @abstractmethod
    def finalize(self) -> Dict[str, object]:
        """Close out the shard and return its JSON-safe result payload."""


#: A policy inspects the barrier reports plus the count of boundary
#: messages still in flight and may order a consensus decision.
Policy = Callable[[Sequence[ShardReport], int], Optional[ControlDecision]]


def default_policy(
    reports: Sequence[ShardReport], pending: int
) -> Optional[ControlDecision]:
    """Bulk-synchronous consensus: advance or finish when globally idle.

    Only when *every* shard is quiescent and *no* boundary message is in
    flight is the global state stable: nothing can create work for the
    current epoch any more.  Then, if any shard holds future-epoch work
    the epoch barrier advances; otherwise the run is finished.  In-flight
    boundary messages veto both (a message can carry current-epoch work,
    so deciding before it lands would be premature).
    """
    if pending:
        return None
    if all(r.quiescent for r in reports):
        if any(r.future_work for r in reports):
            return ControlDecision("advance")
        return ControlDecision("finish")
    return None


@dataclass
class ShardedResult:
    """What a finished sharded run hands back to the caller."""

    payloads: List[Dict[str, object]]
    reports: List[ShardReport]
    windows: int
    barriers: int
    boundary_messages: int
    exported: Dict[Tuple[int, int], int]
    injected: Dict[Tuple[int, int], int]


class _InlineTransport:
    """All shard runtimes in this process, stepped round-robin."""

    def __init__(self, builders: Sequence[Callable[[], ShardRuntime]]) -> None:
        self._builders = list(builders)
        self._runtimes: List[ShardRuntime] = []

    @classmethod
    def adopt(cls, runtimes: Sequence[ShardRuntime]) -> "_InlineTransport":
        """A transport over already-built runtimes (snapshot resume)."""
        transport = cls([])
        transport._runtimes = list(runtimes)
        return transport

    def __enter__(self) -> "_InlineTransport":
        if not self._runtimes:
            self._runtimes = [build() for build in self._builders]
        return self

    def __exit__(self, *exc: object) -> None:
        self._runtimes = []

    def begin_all(self) -> List[ShardReport]:
        return [rt.begin() for rt in self._runtimes]

    def window_all(
        self, until: int, inboxes: Sequence[Sequence[BoundaryMessage]]
    ) -> List[ShardReport]:
        return [
            rt.run_window(until, inbox)
            for rt, inbox in zip(self._runtimes, inboxes)
        ]

    def control_all(self, decision: ControlDecision) -> List[ShardReport]:
        return [rt.apply_control(decision) for rt in self._runtimes]

    def run_complete_all(self) -> None:
        for rt in self._runtimes:
            rt.run_complete()

    def finalize_all(self) -> List[Dict[str, object]]:
        return [rt.finalize() for rt in self._runtimes]


class ShardedSimulator:
    """Conservative-window coordinator over N shard runtimes.

    Parameters
    ----------
    builders:
        One zero-argument picklable factory per shard; each builds that
        shard's :class:`ShardRuntime`.  Factories (not runtimes) cross the
        process boundary in parallel mode.
    plan:
        The window plan: ``plan.shards`` and ``plan.horizon(t)``.
    parallel:
        ``True`` -> one persistent forked worker per shard; ``False`` ->
        all shards inline in this process (bit-identical results either
        way).  ``None`` (default) picks parallel when the machine has more
        than one worker available (``NDPBRIDGE_JOBS`` / CPU count, the
        same knob :mod:`repro.exec.runner` uses).
    policy:
        Barrier consensus policy; defaults to :func:`default_policy`.
    max_windows:
        Safety valve against a model that never reaches a finish
        consensus.
    barrier_hook:
        Optional observer called at the top of every barrier as
        ``hook(engine, transport, reports, pending)`` -- after the
        latest reports were collected, before the consensus decision.
        The snapshot layer (:mod:`repro.state.snapshot`) uses it to
        freeze barrier-aligned checkpoints; hooks must not mutate any
        of their arguments.
    transport_factory:
        Optional override for the transport: a callable taking the
        builder list and returning an object implementing the five
        broadcast methods (context-managed).  The race detector
        (:mod:`repro.race.detector`) injects its interleaving-fuzzed
        transport here; ``parallel`` is ignored when set.
    """

    def __init__(
        self,
        builders: Sequence[Callable[[], ShardRuntime]],
        plan: "FixedLookaheadPlan | object",
        parallel: Optional[bool] = None,
        policy: Optional[Policy] = None,
        max_windows: int = 10_000_000,
        barrier_hook: Optional[
            Callable[
                ["ShardedSimulator", object, List[ShardReport],
                 List[BoundaryMessage]],
                None,
            ]
        ] = None,
        transport_factory: Optional[
            Callable[[Sequence[Callable[[], ShardRuntime]]],
                     "_InlineTransport"]
        ] = None,
    ) -> None:
        self.shards = int(getattr(plan, "shards"))
        if len(builders) != self.shards:
            raise ValueError(
                f"{len(builders)} builders for a {self.shards}-shard plan"
            )
        self._builders = list(builders)
        self._plan = plan
        self._horizon: Callable[[int], int] = getattr(plan, "horizon")
        self._policy: Policy = policy if policy is not None else default_policy
        self.max_windows = max_windows
        if parallel is None:
            parallel = self.shards > 1 and self._workers_available()
        self.parallel = bool(parallel)
        self.barrier_hook = barrier_hook
        self._transport_factory = transport_factory
        self.windows = 0
        self.barriers = 0
        self.exported: Dict[Tuple[int, int], int] = {}
        self.injected: Dict[Tuple[int, int], int] = {}

    @staticmethod
    def _workers_available() -> bool:
        from ..exec.runner import default_jobs

        return default_jobs() > 1

    def _make_transport(self) -> "_InlineTransport":
        if self._transport_factory is not None:
            return self._transport_factory(self._builders)
        if self.parallel:
            from ..exec.shardpool import ForkTransport

            # ForkTransport implements the same five broadcast methods.
            return ForkTransport(self._builders)  # type: ignore[return-value]
        return _InlineTransport(self._builders)

    # ------------------------------------------------------------------
    def run(self) -> ShardedResult:
        """Run every shard to the finish consensus; returns the payloads.

        Raises :class:`SimulationError` on a lookahead violation, a
        stalled run (no events, no messages, but no finish consensus), or
        a cross-shard conservation mismatch.
        """
        with self._make_transport() as transport:
            reports = transport.begin_all()
            if self.shards == 1:
                transport.run_complete_all()
                payloads = transport.finalize_all()
                return ShardedResult(
                    payloads=payloads, reports=list(reports), windows=0,
                    barriers=0, boundary_messages=0, exported={}, injected={},
                )
            pending: List[BoundaryMessage] = []
            self._collect(reports, pending, window_end=None)
            payloads, reports = self._barrier_loop(
                transport, list(reports), pending
            )
        self._check_conservation(pending)
        return self._result(payloads, reports)

    def resume(
        self,
        runtimes: Sequence[ShardRuntime],
        reports: List[ShardReport],
        pending: List[BoundaryMessage],
    ) -> ShardedResult:
        """Continue a barrier-aligned snapshot to the finish consensus.

        ``runtimes``/``reports``/``pending`` are the restored barrier
        state; the caller restores the ledger and window counters onto
        this engine before resuming.  Runs inline (resume never forks).
        """
        with _InlineTransport.adopt(runtimes) as transport:
            payloads, reports = self._barrier_loop(
                transport, list(reports), pending
            )
        self._check_conservation(pending)
        return self._result(payloads, reports)

    def _barrier_loop(
        self,
        transport: "_InlineTransport",
        reports: List[ShardReport],
        pending: List[BoundaryMessage],
    ) -> Tuple[List[Dict[str, object]], List[ShardReport]]:
        """The conservative-window barrier loop, from any barrier state
        (a fresh run after begin+collect, or a restored snapshot) to the
        finish consensus."""
        while True:
            self.barriers += 1
            if self.barrier_hook is not None:
                self.barrier_hook(self, transport, reports, pending)
            decision = self._policy(reports, len(pending))
            if decision is not None:
                if decision.kind == "finish":
                    if pending:
                        raise SimulationError(
                            "sharded: finish decided with "
                            f"{len(pending)} boundary messages in flight"
                        )
                    reports = transport.control_all(decision)
                    # A finish report must not carry fresh exports;
                    # anything collected here fails conservation below.
                    self._collect(reports, pending, window_end=None)
                    break
                # Epoch advance may unblock events earlier than the
                # reported next-event times (units wake at their local
                # `now`), so re-report before sizing the next window.
                reports = transport.control_all(decision)
                self._collect(reports, pending, window_end=None)
                continue
            floor = self._window_floor(reports, pending)
            if floor is None:
                raise SimulationError(
                    "sharded: run stalled -- no events, no boundary "
                    "messages, and no finish consensus (a shard lost "
                    "track of outstanding work)"
                )
            window_end = self._horizon(floor)
            if window_end <= floor:
                raise SimulationError(
                    f"sharded: window plan must advance time, got "
                    f"horizon({floor}) = {window_end}"
                )
            inboxes = self._split_deliveries(pending, window_end)
            reports = transport.window_all(window_end - 1, inboxes)
            self.windows += 1
            if self.windows > self.max_windows:
                raise SimulationError(
                    f"sharded: exceeded max_windows={self.max_windows}"
                )
            self._collect(reports, pending, window_end=window_end)
        payloads = transport.finalize_all()
        return payloads, reports

    def _result(
        self,
        payloads: List[Dict[str, object]],
        reports: List[ShardReport],
    ) -> ShardedResult:
        return ShardedResult(
            payloads=payloads,
            reports=list(reports),
            windows=self.windows,
            barriers=self.barriers,
            boundary_messages=sum(self.exported.values()),
            exported=dict(self.exported),
            injected=dict(self.injected),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _window_floor(
        reports: Sequence[ShardReport], pending: Sequence[BoundaryMessage]
    ) -> Optional[int]:
        times = [
            r.next_event_time
            for r in reports
            if r.next_event_time is not None
        ]
        times.extend(m.deliver_time for m in pending)
        return min(times) if times else None

    def _collect(
        self,
        reports: Sequence[ShardReport],
        pending: List[BoundaryMessage],
        window_end: Optional[int],
    ) -> None:
        """Validate and absorb every outbox message into ``pending``."""
        for report in reports:
            for msg in report.outbox:
                if not 0 <= msg.dst_shard < self.shards:
                    raise SimulationError(
                        f"sharded: message to unknown shard {msg.dst_shard}"
                    )
                if msg.dst_shard == msg.src_shard:
                    raise SimulationError(
                        "sharded: shard exported a message to itself "
                        f"(shard {msg.src_shard}) -- local traffic must "
                        "stay inside the shard's own simulator"
                    )
                bound = self._horizon(msg.send_time)
                if msg.deliver_time < bound or (
                    window_end is not None and msg.deliver_time < window_end
                ):
                    raise SimulationError(
                        "sharded: lookahead violation -- message from "
                        f"shard {msg.src_shard} to {msg.dst_shard} sent at "
                        f"t={msg.send_time} claims delivery at "
                        f"t={msg.deliver_time}, before the conservative "
                        f"bound horizon({msg.send_time})={bound}"
                        + (
                            f" / window end {window_end}"
                            if window_end is not None
                            else ""
                        )
                    )
                key = (msg.src_shard, msg.dst_shard)
                self.exported[key] = self.exported.get(key, 0) + 1
                pending.append(msg)

    def _split_deliveries(
        self, pending: List[BoundaryMessage], window_end: int
    ) -> List[List[BoundaryMessage]]:
        """Move messages deliverable before ``window_end`` into per-shard
        inboxes, in deterministic ``(deliver_time, src_shard, seq)``
        order."""
        due = [m for m in pending if m.deliver_time < window_end]
        pending[:] = [m for m in pending if m.deliver_time >= window_end]
        due.sort(key=lambda m: (m.deliver_time, m.src_shard, m.seq))
        inboxes: List[List[BoundaryMessage]] = [[] for _ in range(self.shards)]
        for msg in due:
            key = (msg.src_shard, msg.dst_shard)
            self.injected[key] = self.injected.get(key, 0) + 1
            inboxes[msg.dst_shard].append(msg)
        return inboxes

    def _check_conservation(self, pending: Sequence[BoundaryMessage]) -> None:
        """Cross-shard conservation merge: exported == injected, none lost."""
        if pending:
            raise SimulationError(
                f"sharded: {len(pending)} boundary messages undelivered at "
                "finish"
            )
        if self.exported != self.injected:
            diffs = {
                key: (self.exported.get(key, 0), self.injected.get(key, 0))
                for key in set(self.exported) | set(self.injected)
                if self.exported.get(key, 0) != self.injected.get(key, 0)
            }
            raise SimulationError(
                "sharded: cross-shard conservation violated -- "
                f"exported != injected for (src, dst) pairs {diffs}"
            )
