"""Discrete-event simulation kernel used by the NDPBridge model."""

from .engine import Event, SimulationError, Simulator, sanitize_from_env
from .component import Component
from .rng import DeterministicRNG
from .tracing import NULL_TRACER, TraceRecord, Tracer, TracerError
from .stats import Accumulator, Counter, Histogram, StatsRegistry
from .partition import PartitionPlan, plan_partition, shards_from_env
from .sharded import (
    BoundaryMessage,
    ControlDecision,
    FixedLookaheadPlan,
    ShardedResult,
    ShardedSimulator,
    ShardReport,
    ShardRuntime,
    default_policy,
)

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "sanitize_from_env",
    "Component",
    "DeterministicRNG",
    "Accumulator",
    "Counter",
    "Histogram",
    "StatsRegistry",
    "NULL_TRACER",
    "TraceRecord",
    "Tracer",
    "TracerError",
    "PartitionPlan",
    "plan_partition",
    "shards_from_env",
    "BoundaryMessage",
    "ControlDecision",
    "FixedLookaheadPlan",
    "ShardedResult",
    "ShardedSimulator",
    "ShardReport",
    "ShardRuntime",
    "default_policy",
]
