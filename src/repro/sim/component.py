"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import Callable, ClassVar, Optional, Tuple

from .engine import Event, Simulator


class Component:
    """A named piece of hardware attached to a :class:`Simulator`.

    Components form a tree through ``parent`` purely for naming/debugging;
    the actual wiring (who talks to whom) is explicit in each subclass.

    **State-ownership declarations** (the simstate ST005 contract): a
    class whose ``__init__`` stores a caller-provided mutable container
    must say who owns it, so per-object restore has a single registered
    owner for every aliased structure:

    * ``_snapshot_owns_`` -- this object is the sole owner; the caller
      hands the container over and must not retain a mutating reference.
    * ``_snapshot_borrowed_`` -- the attribute aliases a container whose
      registered owner is elsewhere in the system graph (snapshot's
      deep clone preserves the aliasing through its shared memo).

    Both are class-level *immutable* tuples of attribute names; any
    class (not only Component subclasses) may declare them.
    """

    _snapshot_owns_: ClassVar[Tuple[str, ...]] = ()
    _snapshot_borrowed_: ClassVar[Tuple[str, ...]] = ()

    def __init__(
        self,
        sim: Simulator,
        name: str,
        parent: Optional["Component"] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.parent = parent

    @property
    def full_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    @property
    def now(self) -> int:
        return self.sim.now

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule on the engine's allocation-free fast path."""
        self.sim.schedule(delay, callback)

    def schedule_cancellable(
        self, delay: int, callback: Callable[[], None]
    ) -> Event:
        """Schedule a callback that may later be cancelled."""
        return self.sim.schedule_cancellable(delay, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.full_name!r})"
