"""Base class for simulated hardware components."""

from __future__ import annotations

from typing import Optional

from .engine import Simulator


class Component:
    """A named piece of hardware attached to a :class:`Simulator`.

    Components form a tree through ``parent`` purely for naming/debugging;
    the actual wiring (who talks to whom) is explicit in each subclass.
    """

    def __init__(self, sim: Simulator, name: str, parent: Optional["Component"] = None):
        self.sim = sim
        self.name = name
        self.parent = parent

    @property
    def full_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    @property
    def now(self) -> int:
        return self.sim.now

    def schedule(self, delay: int, callback) -> None:
        """Schedule on the engine's allocation-free fast path."""
        self.sim.schedule(delay, callback)

    def schedule_cancellable(self, delay: int, callback):
        """Schedule a callback that may later be cancelled."""
        return self.sim.schedule_cancellable(delay, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.full_name!r})"
