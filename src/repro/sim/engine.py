"""Discrete-event simulation engine.

The whole NDPBridge model runs on a single global event queue with integer
time.  Time is measured in *NDP-core cycles* (400 MHz by default, i.e. one
cycle is 2.5 ns).  Every hardware structure (banks, links, bridges, cores)
is a :class:`~repro.sim.component.Component` that schedules callbacks on the
shared :class:`Simulator`.

The engine is the hottest code in the repository -- every figure of the
evaluation replays millions of events through it -- so the common case is
kept allocation-free: :meth:`Simulator.schedule` pushes a bare
``(time, seq, callback)`` tuple onto a binary heap and returns nothing.
Callers that need to cancel use :meth:`Simulator.schedule_cancellable`,
which wraps the callback in an :class:`Event` handle; cancellation is lazy
(the heap entry is skipped when popped) but *counted*, and the heap is
compacted once cancelled entries outnumber live ones.  The run loop drains
all events that share a timestamp in one batch, paying the ``until`` /
``max_cycles`` bookkeeping once per cycle instead of once per event.

Determinism is a hard requirement -- two runs with the same seed must
produce identical cycle counts -- so events execute strictly in
``(time, seq)`` order and no wall-clock or hashing order ever influences
event order.  The fast path and the cancellable path share one sequence
counter, so mixing them cannot reorder anything.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["Event", "SimulationError", "Simulator"]


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A cancellable scheduled callback.

    Handed back by :meth:`Simulator.schedule_cancellable` so callers can
    cancel it.  Cancellation is lazy: the heap entry stays put but is
    skipped when popped.  The owning simulator counts cancellations so it
    can compact the heap when too many dead entries accumulate.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the run loop skips it.  Idempotent; a no-op
        once the event has executed."""
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


#: Heaps smaller than this are never compacted -- the scan costs more
#: than the dead entries.
_COMPACT_MIN = 64


class Simulator:
    """Global event queue and clock.

    Parameters
    ----------
    max_cycles:
        Hard safety limit; the run loop raises :class:`SimulationError` if
        the clock passes this value.  Protects against accidental infinite
        simulations (e.g. a bridge that keeps rescheduling itself after the
        workload has drained).
    """

    def __init__(self, max_cycles: int = 10_000_000_000):
        self.now: int = 0
        self.max_cycles = max_cycles
        # Heap of (time, seq, payload); payload is either a bare callable
        # (fast path) or an Event (cancellable path).  seq is unique, so
        # tuple comparison never reaches the payload.
        self._queue: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        This is the allocation-free fast path: no :class:`Event` handle is
        created and nothing is returned.  Use
        :meth:`schedule_cancellable` when the caller may need to cancel.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self.now + int(delay), seq, callback))

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute cycle count (fast path)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (int(time), seq, callback))

    def schedule_cancellable(
        self, delay: int, callback: Callable[[], None]
    ) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_cancellable_at(self.now + int(delay), callback)

    def schedule_cancellable_at(
        self, time: int, callback: Callable[[], None]
    ) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        ev = Event(int(time), self._seq, callback, self)
        self._seq += 1
        heapq.heappush(self._queue, (ev.time, ev.seq, ev))
        return ev

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Heap order is rebuilt from the (time, seq) prefixes, which are
        untouched by compaction, so event order -- and therefore
        determinism -- is unaffected.
        """
        # In-place so aliases held by the run loop stay valid.
        self._queue[:] = [
            entry
            for entry in self._queue
            if not (type(entry[2]) is Event and entry[2].cancelled)
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) entries in the queue.  O(1)."""
        return len(self._queue) - self._cancelled

    def peek_time(self) -> Optional[int]:
        """Time of the next non-cancelled event, or ``None`` if drained."""
        queue = self._queue
        while queue:
            payload = queue[0][2]
            if type(payload) is Event and payload.cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            return queue[0][0]
        return None

    def _dispatch(self, payload: object) -> bool:
        """Run one popped payload; returns ``False`` if it was cancelled."""
        if type(payload) is Event:
            if payload.cancelled:
                self._cancelled -= 1
                return False
            callback = payload.callback
            payload.callback = None  # executed: cancel() becomes a no-op
        else:
            callback = payload
        callback()
        self._events_processed += 1
        return True

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            time, _, payload = heapq.heappop(self._queue)
            if type(payload) is Event and payload.cancelled:
                self._cancelled -= 1
                continue
            if time > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            self.now = time
            self._dispatch(payload)
            return True
        return False

    def run(
        self,
        until: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is passed, or a stop.

        ``stop_condition`` is evaluated after every processed event; when it
        returns ``True`` the loop exits.  Returns the final simulation time.

        All events sharing a timestamp are dispatched as one batch: the
        ``until`` / ``max_cycles`` checks run once per simulated cycle, and
        the heap top is only re-examined to detect the end of the batch.
        Events scheduled *during* a batch at the current cycle join the
        same batch (they carry a larger seq, so they run last, exactly as
        the one-at-a-time loop would order them).
        """
        self._stopped = False
        queue = self._queue
        heappop = heapq.heappop
        max_cycles = self.max_cycles
        while not self._stopped:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.now = until
                break
            if nxt > max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles}"
                )
            self.now = nxt
            # Same-cycle batch: drain every entry stamped `nxt`.
            while queue and queue[0][0] == nxt:
                payload = heappop(queue)[2]
                if not self._dispatch(payload):
                    continue
                if stop_condition is not None and stop_condition():
                    return self.now
                if self._stopped:
                    return self.now
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"
