"""Discrete-event simulation engine.

The whole NDPBridge model runs on a single global event queue with integer
time.  Time is measured in *NDP-core cycles* (400 MHz by default, i.e. one
cycle is 2.5 ns).  Every hardware structure (banks, links, bridges, cores)
is a :class:`~repro.sim.component.Component` that schedules callbacks on the
shared :class:`Simulator`.

The engine is deliberately small: a binary heap of ``(time, seq, callback)``
entries, a monotonically increasing sequence number for deterministic
tie-breaking, and a run loop with an optional stop condition that is checked
after every event.  Determinism is a hard requirement -- two runs with the
same seed must produce identical cycle counts -- so no wall-clock or hashing
order ever influences event order.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A scheduled callback.

    Events are handed back by :meth:`Simulator.schedule` so callers can
    cancel them.  Cancellation is lazy: the entry stays in the heap but is
    skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the run loop skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Global event queue and clock.

    Parameters
    ----------
    max_cycles:
        Hard safety limit; the run loop raises :class:`SimulationError` if
        the clock passes this value.  Protects against accidental infinite
        simulations (e.g. a bridge that keeps rescheduling itself after the
        workload has drained).
    """

    def __init__(self, max_cycles: int = 10_000_000_000):
        self.now: int = 0
        self.max_cycles = max_cycles
        self._queue: List[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + int(delay), callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute cycle count."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        ev = Event(int(time), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, ev)
        return ev

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for ev in self._queue if not ev.cancelled)

    def peek_time(self) -> Optional[int]:
        """Time of the next non-cancelled event, or ``None`` if drained."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            if ev.time > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            self.now = ev.time
            ev.callback()
            self._events_processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is passed, or a stop.

        ``stop_condition`` is evaluated after every processed event; when it
        returns ``True`` the loop exits.  Returns the final simulation time.
        """
        self._stopped = False
        while not self._stopped:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.now = until
                break
            self.step()
            if stop_condition is not None and stop_condition():
                break
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={len(self._queue)})"
