"""Discrete-event simulation engine.

The whole NDPBridge model runs on a single global event queue with integer
time.  Time is measured in *NDP-core cycles* (400 MHz by default, i.e. one
cycle is 2.5 ns).  Every hardware structure (banks, links, bridges, cores)
is a :class:`~repro.sim.component.Component` that schedules callbacks on the
shared :class:`Simulator`.

The engine is the hottest code in the repository -- every figure of the
evaluation replays millions of events through it -- so the common case is
kept allocation-free: :meth:`Simulator.schedule` pushes a bare
``(time, seq, callback)`` tuple onto a binary heap and returns nothing.
Callers that need to cancel use :meth:`Simulator.schedule_cancellable`,
which wraps the callback in an :class:`Event` handle; cancellation is lazy
(the heap entry is skipped when popped) but *counted*, and the heap is
compacted once cancelled entries outnumber live ones.  The run loop drains
all events that share a timestamp in one batch, paying the ``until`` /
``max_cycles`` bookkeeping once per cycle instead of once per event.

Determinism is a hard requirement -- two runs with the same seed must
produce identical cycle counts -- so events execute strictly in
``(time, seq)`` order and no wall-clock or hashing order ever influences
event order.  The fast path and the cancellable path share one sequence
counter, so mixing them cannot reorder anything.

**Sanitizer mode.**  ``Simulator(sanitize=True)`` (or exporting
``NDPBRIDGE_SANITIZE=1``) turns on runtime invariant checking: delays
must be genuine ints (no silently-truncated floats), callbacks must be
callable, dispatch order must be strictly increasing in ``(time, seq)``
(which also proves ``seq`` never collides), batch time must be monotone,
and at every :meth:`run` exit an event-conservation audit verifies
``scheduled == dispatched + cancelled-purged + still-queued`` and that
the lazy-cancellation counter matches a recount of the heap.  All of
this lives in separate wrappers and a separate run loop, so the
non-sanitized fast path executes exactly the same instructions as
before -- the checks are compiled out, not branched around.  Sanitized
and plain runs of the same model produce bit-identical cycle counts;
the tier-1 determinism tests assert this.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable, List, Optional, Tuple

__all__ = ["Event", "SimulationError", "Simulator", "sanitize_from_env"]


def sanitize_from_env() -> bool:
    """True when ``NDPBRIDGE_SANITIZE`` asks for sanitizer mode."""
    return os.environ.get("NDPBRIDGE_SANITIZE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Event:
    """A cancellable scheduled callback.

    Handed back by :meth:`Simulator.schedule_cancellable` so callers can
    cancel it.  Cancellation is lazy: the heap entry stays put but is
    skipped when popped.  The owning simulator counts cancellations so it
    can compact the heap when too many dead entries accumulate.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[[], None],
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        # None once executed, so cancel() after the fact is a no-op.
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the run loop skips it.  Idempotent; a no-op
        once the event has executed."""
        if self.cancelled or self.callback is None:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


#: Heaps smaller than this are never compacted -- the scan costs more
#: than the dead entries.
_COMPACT_MIN = 64


class Simulator:
    """Global event queue and clock.

    Parameters
    ----------
    max_cycles:
        Hard safety limit; the run loop raises :class:`SimulationError` if
        the clock passes this value.  Protects against accidental infinite
        simulations (e.g. a bridge that keeps rescheduling itself after the
        workload has drained).
    sanitize:
        Enable runtime invariant checking (see the module docstring).
        ``None`` (the default) defers to the ``NDPBRIDGE_SANITIZE``
        environment variable.
    """

    def __init__(
        self,
        max_cycles: int = 10_000_000_000,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.now: int = 0
        self.max_cycles = max_cycles
        # Heap of (time, seq, payload); payload is either a bare callable
        # (fast path) or an Event (cancellable path).  seq is unique, so
        # tuple comparison never reaches the payload.
        self._queue: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled = 0
        self._stopped = False
        # Conservation/ordering bookkeeping.  _cancel_purged is counted
        # unconditionally (all its increments sit on cold purge paths);
        # _scheduled_total is only counted by the sanitized wrappers, so
        # the conservation audit is meaningful only in sanitizer mode.
        self._cancel_purged = 0
        self._scheduled_total = 0
        self._last_dispatched: Tuple[int, int] = (-1, -1)
        if sanitize is None:
            sanitize = sanitize_from_env()
        self.sanitize = bool(sanitize)
        if self.sanitize:
            # Shadow the scheduling entry points on the *instance* so the
            # class fast paths stay byte-identical when sanitizing is off.
            self.schedule = self._schedule_sanitized  # type: ignore[method-assign]
            self.schedule_at = self._schedule_at_sanitized  # type: ignore[method-assign]
            self.schedule_cancellable = self._schedule_cancellable_sanitized  # type: ignore[method-assign]
            self.schedule_cancellable_at = self._schedule_cancellable_at_sanitized  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        This is the allocation-free fast path: no :class:`Event` handle is
        created and nothing is returned.  Use
        :meth:`schedule_cancellable` when the caller may need to cancel.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self.now + int(delay), seq, callback))

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute cycle count (fast path)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (int(time), seq, callback))

    def schedule_cancellable(
        self, delay: int, callback: Callable[[], None]
    ) -> Event:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_cancellable_at(self.now + int(delay), callback)

    def schedule_cancellable_at(
        self, time: int, callback: Callable[[], None]
    ) -> Event:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        ev = Event(int(time), self._seq, callback, self)
        self._seq += 1
        heapq.heappush(self._queue, (ev.time, ev.seq, ev))
        return ev

    # ------------------------------------------------------------------
    # sanitizer mode
    # ------------------------------------------------------------------
    def _sanitize_args(self, delta: int, callback: Callable[[], None],
                       kind: str) -> None:
        """Reject schedule arguments the fast path would silently coerce."""
        if type(delta) is not int:
            raise SimulationError(
                f"sanitize: {kind} must be an int, got "
                f"{type(delta).__name__} {delta!r} -- float time drifts "
                f"and breaks bit-identical replays"
            )
        if not callable(callback):
            raise SimulationError(
                f"sanitize: callback {callback!r} is not callable"
            )

    def _schedule_sanitized(
        self, delay: int, callback: Callable[[], None]
    ) -> None:
        self._sanitize_args(delay, callback, "delay")
        Simulator.schedule(self, delay, callback)
        self._scheduled_total += 1

    def _schedule_at_sanitized(
        self, time: int, callback: Callable[[], None]
    ) -> None:
        self._sanitize_args(time, callback, "absolute time")
        Simulator.schedule_at(self, time, callback)
        self._scheduled_total += 1

    def _schedule_cancellable_sanitized(
        self, delay: int, callback: Callable[[], None]
    ) -> Event:
        self._sanitize_args(delay, callback, "delay")
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._schedule_cancellable_at_sanitized(
            self.now + delay, callback
        )

    def _schedule_cancellable_at_sanitized(
        self, time: int, callback: Callable[[], None]
    ) -> Event:
        self._sanitize_args(time, callback, "absolute time")
        ev = Simulator.schedule_cancellable_at(self, time, callback)
        self._scheduled_total += 1
        return ev

    def _check_dispatch_order(self, time: int, seq: int) -> None:
        """Popped entries must be strictly increasing in (time, seq).

        Strict increase simultaneously proves the heap never reorders,
        time never runs backwards between events, and ``seq`` never
        collides (a collision would make two entries compare equal).
        """
        if (time, seq) <= self._last_dispatched:
            raise SimulationError(
                f"sanitize: event order violated -- popped (t={time}, "
                f"seq={seq}) after {self._last_dispatched} (seq collision "
                f"or corrupted heap)"
            )
        self._last_dispatched = (time, seq)

    def audit(self) -> None:
        """Verify engine bookkeeping; raises :class:`SimulationError`.

        Always checks that the lazy-cancellation counter matches a
        recount of the heap.  In sanitizer mode additionally checks event
        conservation: every event ever scheduled was dispatched, purged
        as cancelled, or is still in the queue.  Sanitized :meth:`run`
        calls this automatically on every exit.
        """
        actual_cancelled = sum(
            1
            for entry in self._queue
            if type(entry[2]) is Event and entry[2].cancelled
        )
        if actual_cancelled != self._cancelled:
            raise SimulationError(
                f"sanitize: cancellation bookkeeping inconsistent -- "
                f"counter says {self._cancelled}, heap holds "
                f"{actual_cancelled} cancelled entries"
            )
        if self.sanitize:
            accounted = (
                self._events_processed
                + self._cancel_purged
                + len(self._queue)
            )
            if self._scheduled_total != accounted:
                raise SimulationError(
                    f"sanitize: event conservation violated -- scheduled "
                    f"{self._scheduled_total} but dispatched "
                    f"{self._events_processed} + purged "
                    f"{self._cancel_purged} + queued {len(self._queue)} "
                    f"= {accounted}"
                )

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Heap order is rebuilt from the (time, seq) prefixes, which are
        untouched by compaction, so event order -- and therefore
        determinism -- is unaffected.
        """
        # In-place so aliases held by the run loop stay valid.
        before = len(self._queue)
        self._queue[:] = [
            entry
            for entry in self._queue
            if not (type(entry[2]) is Event and entry[2].cancelled)
        ]
        heapq.heapify(self._queue)
        self._cancel_purged += before - len(self._queue)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) entries in the queue.  O(1)."""
        return len(self._queue) - self._cancelled

    @property
    def scheduled_total(self) -> int:
        """Events scheduled since construction (sanitizer mode only --
        the fast-path wrappers do not pay for this counter)."""
        return self._scheduled_total

    @property
    def cancel_purged(self) -> int:
        """Cancelled entries physically removed from the heap so far."""
        return self._cancel_purged

    def queue_entries(self) -> List[Tuple[int, int, object]]:
        """Live queue entries in dispatch order (cancelled ones skipped).

        Read-only view for snapshot manifests and debugging: the heap is
        not modified, so this never perturbs the run.  Cost is O(n log n)
        -- never call it from the hot loop.
        """
        entries = [
            entry
            for entry in self._queue
            if not (type(entry[2]) is Event and entry[2].cancelled)
        ]
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return entries

    def peek_time(self) -> Optional[int]:
        """Time of the next non-cancelled event, or ``None`` if drained."""
        queue = self._queue
        while queue:
            payload = queue[0][2]
            if type(payload) is Event and payload.cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                self._cancel_purged += 1
                continue
            return queue[0][0]
        return None

    def _dispatch(self, payload: object) -> bool:
        """Run one popped payload; returns ``False`` if it was cancelled."""
        if type(payload) is Event:
            if payload.cancelled:
                self._cancelled -= 1
                self._cancel_purged += 1
                return False
            callback = payload.callback
            payload.callback = None  # executed: cancel() becomes a no-op
            assert callback is not None  # live entry: never dispatched yet
        else:
            # Fast-path payloads ARE the callable; a cast() call here
            # would tax the hot loop, hence the ignore.
            callback = payload  # type: ignore[assignment]
        callback()
        self._events_processed += 1
        return True

    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        sanitize = self.sanitize
        while self._queue:
            time, seq, payload = heapq.heappop(self._queue)
            if sanitize:
                self._check_dispatch_order(time, seq)
            if type(payload) is Event and payload.cancelled:
                self._cancelled -= 1
                self._cancel_purged += 1
                continue
            if time > self.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            self.now = time
            self._dispatch(payload)
            return True
        return False

    def run(
        self,
        until: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the queue drains, ``until`` is passed, or a stop.

        ``stop_condition`` is evaluated after every processed event; when it
        returns ``True`` the loop exits.  Returns the final simulation time.

        All events sharing a timestamp are dispatched as one batch: the
        ``until`` / ``max_cycles`` checks run once per simulated cycle, and
        the heap top is only re-examined to detect the end of the batch.
        Events scheduled *during* a batch at the current cycle join the
        same batch (they carry a larger seq, so they run last, exactly as
        the one-at-a-time loop would order them).

        In sanitizer mode a separate, instrumented loop runs instead (same
        event order, extra invariant checks, and an :meth:`audit` on every
        exit) so this fast loop carries zero sanitizer overhead.
        """
        if self.sanitize:
            return self._run_sanitized(until, stop_condition)
        self._stopped = False
        queue = self._queue
        heappop = heapq.heappop
        max_cycles = self.max_cycles
        while not self._stopped:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.now = until
                break
            if nxt > max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles}"
                )
            self.now = nxt
            # Same-cycle batch: drain every entry stamped `nxt`.
            while queue and queue[0][0] == nxt:
                payload = heappop(queue)[2]
                if not self._dispatch(payload):
                    continue
                if stop_condition is not None and stop_condition():
                    return self.now
                if self._stopped:
                    return self.now
        return self.now

    def _run_sanitized(
        self,
        until: Optional[int] = None,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """The :meth:`run` loop with invariant checks.

        Mirrors the fast loop event-for-event (identical dispatch order,
        hence bit-identical results) and additionally asserts batch-time
        monotonicity and strict ``(time, seq)`` dispatch order, then
        audits conservation on every exit path.
        """
        self._stopped = False
        queue = self._queue
        heappop = heapq.heappop
        max_cycles = self.max_cycles
        # audit() runs on every *clean* exit (not when an exception is
        # already unwinding -- a half-dispatched event would fail
        # conservation and mask the real error).
        while not self._stopped:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                self.now = until
                break
            if nxt > max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={max_cycles}"
                )
            if nxt < self.now:
                raise SimulationError(
                    f"sanitize: time ran backwards -- next batch at "
                    f"t={nxt} but clock already at t={self.now}"
                )
            self.now = nxt
            while queue and queue[0][0] == nxt:
                time, seq, payload = heappop(queue)
                self._check_dispatch_order(time, seq)
                if not self._dispatch(payload):
                    continue
                if stop_condition is not None and stop_condition():
                    self.audit()
                    return self.now
                if self._stopped:
                    self.audit()
                    return self.now
        self.audit()
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"
