"""Deterministic random number generation for the simulator.

All stochastic choices in the model (receiver/giver matching, sketch decay,
workload generation) draw from :class:`DeterministicRNG` instances derived
from a single root seed, so a run is exactly reproducible from its seed.
Sub-streams are derived by name, which keeps component behaviour independent
of construction order.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """A named, seeded random stream."""

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._rng = random.Random(self._derive(seed, name))

    @staticmethod
    def _derive(seed: int, name: str) -> int:
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def substream(self, name: str) -> "DeterministicRNG":
        """Create an independent stream keyed by ``name``."""
        return DeterministicRNG(self.seed, f"{self.name}/{name}")

    # -- snapshot/restore support ------------------------------------------
    def getstate(self) -> object:
        """The underlying Mersenne Twister state (snapshot capture)."""
        return self._rng.getstate()

    def setstate(self, state: object) -> None:
        """Restore a state captured by :meth:`getstate`."""
        self._rng.setstate(state)  # type: ignore[arg-type]

    def state_digest(self) -> str:
        """Short stable digest of the current stream state, for snapshot
        manifests -- two streams with equal digests will produce the
        same draw sequence."""
        blob = repr((self.seed, self.name, self._rng.getstate())).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    # -- delegating helpers ------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, lst: List[T]) -> None:
        self._rng.shuffle(lst)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def expovariate(self, lam: float) -> float:
        return self._rng.expovariate(lam)

    def paretovariate(self, alpha: float) -> float:
        return self._rng.paretovariate(alpha)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DeterministicRNG(seed={self.seed}, name={self.name!r})"
