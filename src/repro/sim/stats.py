"""Lightweight statistics collection.

Every component registers named counters/accumulators with a shared
:class:`StatsRegistry`.  The registry is a plain nested dict at heart; the
value classes only add convenience (increments, means, merging) and a
uniform ``as_dict`` for reporting.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Tracks count / total / min / max of observed samples."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Accumulator({self.name}: n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """Fixed-bucket histogram, used for task sizes and queue depths."""

    def __init__(self, name: str, bucket_bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds: List[float] = sorted(bucket_bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Histogram({self.name}, n={self.total})"


class StatsRegistry:
    """Shared registry of named statistics, grouped by component scope."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._accumulators: Dict[str, Accumulator] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, scope: str, name: str) -> Counter:
        key = f"{scope}.{name}"
        if key not in self._counters:
            self._counters[key] = Counter(key)
        return self._counters[key]

    def accumulator(self, scope: str, name: str) -> Accumulator:
        key = f"{scope}.{name}"
        if key not in self._accumulators:
            self._accumulators[key] = Accumulator(key)
        return self._accumulators[key]

    def histogram(self, scope: str, name: str, bounds: Iterable[float]) -> Histogram:
        key = f"{scope}.{name}"
        if key not in self._histograms:
            self._histograms[key] = Histogram(key, bounds)
        return self._histograms[key]

    def counters_matching(self, prefix: str) -> Dict[str, int]:
        return {
            k: c.value for k, c in self._counters.items() if k.startswith(prefix)
        }

    def sum_counters(self, suffix: str) -> int:
        """Sum all counters whose key ends with ``suffix``."""
        return sum(
            c.value for k, c in self._counters.items() if k.endswith(suffix)
        )

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for k, c in self._counters.items():
            out[k] = c.value
        for k, a in self._accumulators.items():
            out[k] = {"count": a.count, "total": a.total, "mean": a.mean,
                      "min": a.min, "max": a.max}
        for k, h in self._histograms.items():
            out[k] = {"bounds": h.bounds, "counts": h.counts}
        return out
