"""Fabric partitioning for the sharded engine.

A *shard* is a complete sub-topology of the machine: a contiguous run of
level-1 (rank) bridge subtrees forming whole channels, or whole rank
groups within one channel.  Each shard then hosts a full bridge hierarchy
of its own -- level-1 bridges plus a local level-2 domain -- and the only
cross-shard traffic is task spawns whose target data lives in another
shard's banks.  Those cross the host hop: up the source shard's memory
channel, through the host forwarding software, and down the destination
channel.

That hop is what makes conservative windows work (see
:mod:`repro.sim.sharded`): its latency has a hard lower bound derived
from the channel link model (:func:`repro.links.link.min_message_latency`
applied twice, plus the per-message host software overhead), and the
host only picks exports up at its polling rounds (every
``host_poll_interval_cycles``), so deliveries cluster at poll boundaries
and windows legally stretch to the next poll round -- typically ~2000
cycles rather than the bare link latency.

:func:`plan_partition` validates shardability
(:func:`repro.config.validate_shardable` raises ``ConfigError`` for
topologies that do not split) and freezes everything the engine, the
boundary ports, and the result cache need into a picklable
:class:`PartitionPlan`, including a content hash so sharded and serial
results never alias in the on-disk cache.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from ..config import SystemConfig

__all__ = ["PartitionPlan", "plan_partition", "shards_from_env"]


@dataclass(frozen=True)
class PartitionPlan:
    """Everything the sharded engine needs to know about one partition.

    Implements the window-plan protocol (``shards`` + :meth:`horizon`)
    and doubles as the boundary ports' latency model
    (:meth:`deliver_time`).  Frozen and picklable: the plan crosses the
    process boundary with every shard builder.
    """

    shards: int
    total_units: int
    units_per_shard: int
    sub_channels: int
    sub_ranks_per_channel: int
    #: Host forwarding rounds: exports are picked up at the next multiple
    #: of this period (``host_poll_interval_cycles``; 0 disables rounds).
    batch_period: int
    #: Host software cost per forwarded message.
    hop_overhead_cycles: int
    #: Bandwidth of the memory channel the hop crosses (twice: up + down).
    channel_bytes_per_cycle: float
    #: Wire framing granularity; also sizes the minimum hop.
    message_bytes: int
    #: Minimum cross-shard latency: the conservative lookahead bound.
    lookahead: int
    plan_hash: str

    # -- unit geometry -------------------------------------------------
    def shard_of_unit(self, unit_id: int) -> int:
        if not 0 <= unit_id < self.total_units:
            raise ValueError(f"unit id {unit_id} out of range")
        return unit_id // self.units_per_shard

    def base_unit(self, shard_id: int) -> int:
        return shard_id * self.units_per_shard

    def unit_range(self, shard_id: int) -> Tuple[int, int]:
        base = self.base_unit(shard_id)
        return (base, base + self.units_per_shard)

    # -- boundary timing ----------------------------------------------
    def hop_cycles(self, nbytes: int) -> int:
        """Host-hop cost for one ``nbytes`` boundary message."""
        from ..links.link import transfer_cycles_for

        framed = max(
            self.message_bytes,
            ((nbytes + self.message_bytes - 1) // self.message_bytes)
            * self.message_bytes,
        )
        one_way = transfer_cycles_for(self.channel_bytes_per_cycle, framed)
        return one_way * 2 + self.hop_overhead_cycles

    def _next_round(self, t: int) -> int:
        if self.batch_period <= 0:
            return t
        return ((t // self.batch_period) + 1) * self.batch_period

    def deliver_time(self, send_time: int, nbytes: int) -> int:
        """When a boundary message sent at ``send_time`` lands."""
        return self._next_round(send_time) + self.hop_cycles(nbytes)

    def horizon(self, t: int) -> int:
        """Earliest possible delivery of any message sent at time >= t.

        ``deliver_time`` is monotone in ``send_time`` and in ``nbytes``,
        so the bound is the next poll round after ``t`` plus the minimum
        hop -- which is exactly ``deliver_time(t, message_bytes)``.
        """
        return self._next_round(t) + self.lookahead


def shards_from_env(default: int = 1) -> Optional[int]:
    """The ``NDPBRIDGE_SHARDS`` knob: an int, ``auto``, or unset.

    Returns ``None`` for ``auto`` (one shard per level-1 subtree, decided
    against a concrete config by :func:`plan_partition`), the integer
    value when set, else ``default``.
    """
    raw = os.environ.get("NDPBRIDGE_SHARDS", "").strip().lower()
    if not raw:
        return default
    if raw == "auto":
        return None
    return max(1, int(raw))


def plan_partition(config: "SystemConfig", shards: Optional[int] = None) -> PartitionPlan:
    """Partition ``config``'s fabric into ``shards`` subtree shards.

    ``shards=None`` defaults to one shard per level-1 (rank) bridge
    subtree.  Raises :class:`repro.config.ConfigError` when the topology
    cannot be split into that many complete subtrees.
    """
    from ..config import validate_shardable
    from ..links.link import min_message_latency

    topo = config.topology
    if shards is None:
        shards = topo.ranks
    sub_channels, sub_ranks_per_channel = validate_shardable(config, shards)

    comm = config.comm
    one_way = min_message_latency(
        config.channel_bytes_per_cycle, comm.message_bytes
    )
    lookahead = one_way * 2 + comm.host_per_message_overhead_cycles
    batch_period = comm.host_poll_interval_cycles if shards > 1 else 0

    blob = json.dumps(
        {
            "shards": shards,
            "total_units": topo.total_units,
            "sub_channels": sub_channels,
            "sub_ranks_per_channel": sub_ranks_per_channel,
            "batch_period": batch_period,
            "hop_overhead": comm.host_per_message_overhead_cycles,
            "channel_bpc": config.channel_bytes_per_cycle,
            "message_bytes": comm.message_bytes,
            "lookahead": lookahead,
        },
        sort_keys=True,
    )
    plan_hash = hashlib.sha256(blob.encode()).hexdigest()[:16]

    return PartitionPlan(
        shards=shards,
        total_units=topo.total_units,
        units_per_shard=topo.total_units // shards,
        sub_channels=sub_channels,
        sub_ranks_per_channel=sub_ranks_per_channel,
        batch_period=batch_period,
        hop_overhead_cycles=comm.host_per_message_overhead_cycles,
        channel_bytes_per_cycle=config.channel_bytes_per_cycle,
        message_bytes=comm.message_bytes,
        lookahead=lookahead,
        plan_hash=plan_hash,
    )
