"""Structured event tracing.

An optional, zero-cost-when-disabled trace facility: components emit
``(cycle, category, payload)`` records through a shared :class:`Tracer`.
Used by tests to assert event orderings and by users to debug runs
(``trace.filter("lend")`` etc.).  Categories are free-form dotted strings
("bridge.gather", "unit.park", "lb.schedule").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .engine import sanitize_from_env


class TracerError(RuntimeError):
    """An enabled tracer was used in a way that would corrupt records."""


@dataclass(frozen=True)
class TraceRecord:
    cycle: int
    category: str
    payload: Dict[str, object]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[{self.cycle:>10}] {self.category}: {fields}"


class Tracer:
    """Collects trace records; disabled tracers drop everything.

    ``strict`` controls what happens when an enabled tracer emits with no
    clock bound: lenient tracers stamp ``cycle=0`` (historical behaviour,
    fine for unit tests that never look at cycles), strict tracers raise
    :class:`TracerError` -- a silent ``cycle=0`` makes ``between()`` /
    ordering assertions pass vacuously.  ``strict=None`` (default)
    follows sanitizer mode (``NDPBRIDGE_SANITIZE=1``).
    """

    def __init__(
        self,
        enabled: bool = False,
        capacity: int = 1_000_000,
        strict: Optional[bool] = None,
    ) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.strict = sanitize_from_env() if strict is None else bool(strict)
        self.records: List[TraceRecord] = []
        self.dropped = 0
        self._clock: Optional[Callable[[], int]] = None

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulator's ``now`` so emit() stamps cycles."""
        self._clock = clock

    def emit(self, category: str, **payload: object) -> None:
        if not self.enabled:
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        if self._clock is not None:
            cycle = self._clock()
        elif self.strict:
            raise TracerError(
                f"tracer emitted {category!r} with no clock bound -- "
                f"records would be stamped cycle=0; call bind_clock() "
                f"(strict because sanitizer mode is on)"
            )
        else:
            cycle = 0
        self.records.append(TraceRecord(cycle, category, payload))

    # -- queries -----------------------------------------------------------
    def filter(self, prefix: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category.startswith(prefix)]

    def count(self, prefix: str) -> int:
        return sum(1 for r in self.records if r.category.startswith(prefix))

    def categories(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.category] = out.get(r.category, 0) + 1
        return out

    def between(self, start: int, end: int) -> List[TraceRecord]:
        return [r for r in self.records if start <= r.cycle < end]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def dump(self, limit: int = 100) -> str:
        lines = [str(r) for r in self.records[:limit]]
        if len(self.records) > limit:
            lines.append(f"... {len(self.records) - limit} more records")
        return "\n".join(lines)


#: A process-wide disabled tracer components fall back to.
NULL_TRACER = Tracer(enabled=False)
