"""Synthetic graph generators.

Substitute for the SNAP [55] real-world graphs the paper uses: no network
access is available, so we generate graphs with the property that actually
drives the paper's results -- power-law degree skew, which concentrates
work in a few vertices' banks and creates the load imbalance the balancer
must fix.  ``rmat_graph`` follows the recursive-matrix construction (the
standard synthetic stand-in for social/web graphs); ``uniform_graph``
provides the low-skew contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..sim import DeterministicRNG


@dataclass
class Graph:
    """A simple directed graph in adjacency-list form."""

    n: int
    adj: List[List[int]]
    weights: Optional[List[List[int]]] = None

    @property
    def m(self) -> int:
        return sum(len(a) for a in self.adj)

    def out_degree(self, v: int) -> int:
        return len(self.adj[v])

    def neighbors(self, v: int) -> List[int]:
        return self.adj[v]

    def weight(self, v: int, i: int) -> int:
        if self.weights is None:
            return 1
        return self.weights[v][i]

    def undirected(self) -> "Graph":
        """Symmetrized copy (used by wcc and bfs)."""
        adj: List[Set[int]] = [set() for _ in range(self.n)]
        for u in range(self.n):
            for v in self.adj[u]:
                if u != v:
                    adj[u].add(v)
                    adj[v].add(u)
        return Graph(self.n, [sorted(s) for s in adj])


def uniform_graph(
    n: int, avg_degree: int, rng: DeterministicRNG,
    weighted: bool = False, max_weight: int = 16,
) -> Graph:
    """ErdHos-Renyi-style graph with roughly uniform out-degrees."""
    if n <= 1 or avg_degree < 1:
        raise ValueError("need n > 1 and avg_degree >= 1")
    adj: List[List[int]] = []
    weights: List[List[int]] = []
    for u in range(n):
        targets: Set[int] = set()
        for _ in range(avg_degree):
            v = rng.randint(0, n - 1)
            if v != u:
                targets.add(v)
        row = sorted(targets)
        adj.append(row)
        if weighted:
            weights.append([rng.randint(1, max_weight) for _ in row])
    return Graph(n, adj, weights if weighted else None)


def rmat_graph(
    n: int, avg_degree: int, rng: DeterministicRNG,
    a: float = 0.57, b: float = 0.19, c: float = 0.19,
    weighted: bool = False, max_weight: int = 16,
) -> Graph:
    """R-MAT power-law graph (Chakrabarti et al. parameters by default)."""
    if n & (n - 1):
        raise ValueError("R-MAT size must be a power of two")
    levels = n.bit_length() - 1
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("R-MAT probabilities must sum to <= 1")
    edges: Set[Tuple[int, int]] = set()
    target_edges = n * avg_degree
    attempts = 0
    while len(edges) < target_edges and attempts < 10 * target_edges:
        attempts += 1
        u = v = 0
        for _ in range(levels):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            edges.add((u, v))
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in sorted(edges):
        adj[u].append(v)
    weights = None
    if weighted:
        weights = [
            [rng.randint(1, max_weight) for _ in row] for row in adj
        ]
    return Graph(n, adj, weights)


def chain_graph(n: int) -> Graph:
    """A path graph; handy deterministic fixture for tests."""
    adj = [[i + 1] if i + 1 < n else [] for i in range(n)]
    return Graph(n, adj)
