"""Workload and dataset generators."""

from .datasets import REGISTRY, DatasetSpec, dataset_names, load_dataset
from .graphs import Graph, chain_graph, rmat_graph, uniform_graph
from .matrices import SparseMatrix, banded_matrix, powerlaw_matrix
from .openloop import (
    BurstyArrivals,
    OpenLoopSpec,
    PoissonArrivals,
    Request,
    SkewSchedule,
    TenantSpec,
    generate_requests,
)
from .trees import BinaryTree, balanced_bst, random_bst
from .zipf import ZipfGenerator, ZipfSampler, shuffled_identity

__all__ = [
    "REGISTRY",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "Graph",
    "chain_graph",
    "rmat_graph",
    "uniform_graph",
    "SparseMatrix",
    "banded_matrix",
    "powerlaw_matrix",
    "BinaryTree",
    "balanced_bst",
    "random_bst",
    "ZipfGenerator",
    "ZipfSampler",
    "shuffled_identity",
    "BurstyArrivals",
    "PoissonArrivals",
    "OpenLoopSpec",
    "Request",
    "SkewSchedule",
    "TenantSpec",
    "generate_requests",
]
