"""Zipfian sampling (Section VII: data/queries for ll, ht, tree [91]).

Implements inverse-CDF sampling over a finite Zipf(s) distribution:
``P(k) proportional to 1 / k**s`` for ranks ``k = 1..n``.  A skew of 0 is
uniform; the paper-style skewed workloads use ``s`` around 0.8-1.2.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from ..sim import DeterministicRNG


def zipf_cdf(n: int, skew: float) -> List[float]:
    """The CDF of Zipf(``skew``) over ranks ``0..n-1`` (shared by both
    samplers so a :class:`ZipfSampler` at a fixed skew draws exactly the
    sequence a :class:`ZipfGenerator` would)."""
    if n <= 0:
        raise ValueError("population size must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = [1.0 / ((k + 1) ** skew) for k in range(n)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0
    return cdf


class ZipfGenerator:
    """Samples integers in ``[0, n)`` with Zipfian rank frequencies."""

    def __init__(self, n: int, skew: float, rng: DeterministicRNG):
        if n <= 0:
            raise ValueError("population size must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.skew = skew
        self.rng = rng
        self._cdf = zipf_cdf(n, skew)

    def sample(self) -> int:
        """One Zipf-distributed rank in ``[0, n)`` (0 is the hottest)."""
        return bisect.bisect_left(self._cdf, self.rng.random())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - lo


class ZipfSampler:
    """Skew-switchable Zipf sampler over ``[0, n)``.

    Unlike :class:`ZipfGenerator` (one fixed skew for a whole run), the
    open-loop driver shifts skew mid-stream on a schedule; this sampler
    accepts the skew per draw and caches one CDF per distinct skew so a
    piecewise schedule costs one CDF build per segment, not per request.
    """

    def __init__(self, n: int, rng: DeterministicRNG):
        if n <= 0:
            raise ValueError("population size must be positive")
        self.n = n
        self.rng = rng
        self._cdfs: Dict[float, List[float]] = {}

    def _cdf(self, skew: float) -> List[float]:
        key = float(skew)
        cdf = self._cdfs.get(key)
        if cdf is None:
            cdf = zipf_cdf(self.n, key)
            self._cdfs[key] = cdf
        return cdf

    def sample(self, skew: float) -> int:
        """One Zipf(``skew``)-distributed rank in ``[0, n)``."""
        return bisect.bisect_left(self._cdf(skew), self.rng.random())

    def probability(self, rank: int, skew: float) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        cdf = self._cdf(skew)
        lo = cdf[rank - 1] if rank > 0 else 0.0
        return cdf[rank] - lo


def shuffled_identity(n: int, rng: DeterministicRNG) -> List[int]:
    """A permutation mapping Zipf ranks onto population indices, so the
    hot items are scattered rather than clustered at index 0."""
    perm = list(range(n))
    rng.shuffle(perm)
    return perm
