"""Zipfian sampling (Section VII: data/queries for ll, ht, tree [91]).

Implements inverse-CDF sampling over a finite Zipf(s) distribution:
``P(k) proportional to 1 / k**s`` for ranks ``k = 1..n``.  A skew of 0 is
uniform; the paper-style skewed workloads use ``s`` around 0.8-1.2.
"""

from __future__ import annotations

import bisect
from typing import List

from ..sim import DeterministicRNG


class ZipfGenerator:
    """Samples integers in ``[0, n)`` with Zipfian rank frequencies."""

    def __init__(self, n: int, skew: float, rng: DeterministicRNG):
        if n <= 0:
            raise ValueError("population size must be positive")
        if skew < 0:
            raise ValueError("skew must be non-negative")
        self.n = n
        self.skew = skew
        self.rng = rng
        weights = [1.0 / ((k + 1) ** skew) for k in range(n)]
        total = sum(weights)
        cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0
        self._cdf = cdf

    def sample(self) -> int:
        """One Zipf-distributed rank in ``[0, n)`` (0 is the hottest)."""
        return bisect.bisect_left(self._cdf, self.rng.random())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range")
        lo = self._cdf[rank - 1] if rank > 0 else 0.0
        return self._cdf[rank] - lo


def shuffled_identity(n: int, rng: DeterministicRNG) -> List[int]:
    """A permutation mapping Zipf ranks onto population indices, so the
    hot items are scattered rather than clustered at index 0."""
    perm = list(range(n))
    rng.shuffle(perm)
    return perm
