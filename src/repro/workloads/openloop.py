"""Open-loop multi-tenant request streams (ROADMAP: tail-latency SLOs).

The paper evaluates NDPBridge closed-loop: seed every task up front, run
to quiescence, report makespan.  Its index apps (ll/ht/tree) are really
*services*, though, and the interesting regime for dynamic triggering
and hot-block balancing is sustained load: requests arriving over time,
per-tenant key skew, and skew *shifts* mid-run.  This module generates
those request streams; :mod:`repro.runtime.requests` injects them into a
running :class:`~repro.runtime.system.NDPSystem`.

Everything here is purely generative and deterministic: the full request
list is a function of ``(spec, keyspace, seed)`` alone, computed before
the simulation starts.  That is what makes open-loop runs shardable (every
shard regenerates the identical list and injects only its home subset)
and snapshottable (the stream is plain data on the app).

Arrival processes
-----------------
* :class:`PoissonArrivals` -- i.i.d. exponential gaps (mean ``mean_gap``
  cycles), rounded to integer cycles with a floor of 1.
* :class:`BurstyArrivals` -- a two-state Markov-modulated Poisson process
  (MMPP-2): a *calm* state with mean gap ``mean_gap`` and a *burst* state
  with mean gap ``burst_gap``; after each arrival the state flips with
  probability ``calm_switch`` / ``burst_switch``.

Key streams are per-tenant :class:`~repro.workloads.zipf.ZipfSampler`
draws; the skew at each request's arrival cycle comes from the tenant's
piecewise :class:`SkewSchedule`, so a mid-run skew shift moves the hot
set deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..sim import DeterministicRNG
from .zipf import ZipfSampler


class PoissonArrivals:
    """Deterministic Poisson arrival gaps in integer cycles."""

    def __init__(self, mean_gap: float, rng: DeterministicRNG):
        if mean_gap <= 0:
            raise ValueError("mean_gap must be positive")
        self.mean_gap = mean_gap
        self.rng = rng

    def next_gap(self) -> int:
        """The integer gap (>= 1 cycle) to the next arrival."""
        return max(1, int(round(self.rng.expovariate(1.0 / self.mean_gap))))


class BurstyArrivals:
    """MMPP-2 arrivals: exponential gaps modulated by a 2-state chain.

    The state is sampled *after* each arrival, so a stream's burstiness
    is itself part of the deterministic draw sequence.
    """

    def __init__(
        self,
        mean_gap: float,
        burst_gap: float,
        rng: DeterministicRNG,
        calm_switch: float = 0.05,
        burst_switch: float = 0.2,
    ):
        if mean_gap <= 0 or burst_gap <= 0:
            raise ValueError("arrival gaps must be positive")
        if not (0 <= calm_switch <= 1 and 0 <= burst_switch <= 1):
            raise ValueError("switch probabilities must be in [0, 1]")
        self.mean_gap = mean_gap
        self.burst_gap = burst_gap
        self.calm_switch = calm_switch
        self.burst_switch = burst_switch
        self.rng = rng
        self.bursting = False

    def next_gap(self) -> int:
        gap_mean = self.burst_gap if self.bursting else self.mean_gap
        gap = max(1, int(round(self.rng.expovariate(1.0 / gap_mean))))
        flip = self.burst_switch if self.bursting else self.calm_switch
        if self.rng.random() < flip:
            self.bursting = not self.bursting
        return gap


class SkewSchedule:
    """Piecewise-constant Zipf skew over simulated time.

    ``segments`` is a sequence of ``(start_cycle, skew)`` pairs sorted by
    start cycle; the first segment must start at cycle 0.  ``skew_at(t)``
    returns the skew of the segment covering cycle ``t``.
    """

    def __init__(self, segments: Sequence[Tuple[int, float]]):
        segs = [(int(s), float(k)) for s, k in segments]
        if not segs:
            raise ValueError("schedule needs at least one segment")
        if segs[0][0] != 0:
            raise ValueError("first segment must start at cycle 0")
        for (a, _), (b, _) in zip(segs, segs[1:]):
            if b <= a:
                raise ValueError("segment starts must strictly increase")
        self.segments = tuple(segs)

    def skew_at(self, cycle: int) -> float:
        skew = self.segments[0][1]
        for start, seg_skew in self.segments:
            if cycle < start:
                break
            skew = seg_skew
        return skew


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's open-loop stream (pure data; hashable for cache keys).

    ``skew`` is the piecewise schedule as ``((start_cycle, skew), ...)``;
    ``arrival`` selects the process (``"poisson"`` or ``"bursty"``); the
    ``burst_*``/``calm_switch`` knobs only matter for ``"bursty"``.
    ``start`` offsets the tenant's first arrival.
    """

    name: str
    n_requests: int
    mean_gap: float
    skew: Tuple[Tuple[int, float], ...] = ((0, 0.9),)
    arrival: str = "poisson"
    burst_gap: float = 0.0
    calm_switch: float = 0.05
    burst_switch: float = 0.2
    start: int = 0

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.arrival == "bursty" and self.burst_gap <= 0:
            raise ValueError("bursty arrivals need burst_gap > 0")
        SkewSchedule(self.skew)  # validate eagerly


@dataclass(frozen=True)
class OpenLoopSpec:
    """A whole open-loop workload: tenants plus the warm-up cutoff.

    Pure hashable data, so it rides inside an exec-layer
    :class:`~repro.exec.runner.CellRequest` and fingerprints into the
    cell cache key.  ``warmup``: requests arriving before this cycle run
    normally but are excluded from the latency report (cold caches and
    empty sketches would otherwise pollute the tail).
    """

    tenants: Tuple[TenantSpec, ...]
    warmup: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")


@dataclass(frozen=True)
class Request:
    """One request: born at ``arrival``, touching Zipf rank ``rank``.

    ``req_id`` is the global injection order; ``tenant_seq`` the
    per-tenant order.  The app maps ``rank`` onto its own key space.
    """

    req_id: int
    tenant: str
    tenant_index: int
    tenant_seq: int
    arrival: int
    rank: int


def _make_arrivals(spec: TenantSpec, rng: DeterministicRNG):
    if spec.arrival == "bursty":
        return BurstyArrivals(
            spec.mean_gap,
            spec.burst_gap,
            rng,
            calm_switch=spec.calm_switch,
            burst_switch=spec.burst_switch,
        )
    return PoissonArrivals(spec.mean_gap, rng)


def tenant_stream(
    spec: TenantSpec,
    tenant_index: int,
    keyspace: int,
    root: DeterministicRNG,
) -> Iterator[Request]:
    """One tenant's requests in arrival order (req_id assigned later).

    Arrival gaps and key draws come from *separate* named substreams, so
    changing a tenant's skew schedule never perturbs its arrival times.
    """
    arrivals = _make_arrivals(spec, root.substream(f"{spec.name}/arrivals"))
    sampler = ZipfSampler(keyspace, root.substream(f"{spec.name}/keys"))
    schedule = SkewSchedule(spec.skew)
    now = spec.start
    for seq in range(spec.n_requests):
        now += arrivals.next_gap()
        yield Request(
            req_id=-1,
            tenant=spec.name,
            tenant_index=tenant_index,
            tenant_seq=seq,
            arrival=now,
            rank=sampler.sample(schedule.skew_at(now)),
        )


def generate_requests(
    tenants: Sequence[TenantSpec],
    keyspace: int,
    seed: int,
) -> List[Request]:
    """The full merged request list, sorted by arrival.

    Deterministic in ``(tenants, keyspace, seed)``: ties on arrival
    cycle break by tenant index then per-tenant sequence, and
    ``req_id`` is the post-sort position -- the exact injection order
    every shard replica will agree on.
    """
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError("tenant names must be unique")
    root = DeterministicRNG(seed, "openloop")
    merged: List[Request] = []
    for index, spec in enumerate(tenants):
        merged.extend(tenant_stream(spec, index, keyspace, root))
    merged.sort(key=lambda r: (r.arrival, r.tenant_index, r.tenant_seq))
    return [
        Request(
            req_id=i,
            tenant=r.tenant,
            tenant_index=r.tenant_index,
            tenant_seq=r.tenant_seq,
            arrival=r.arrival,
            rank=r.rank,
        )
        for i, r in enumerate(merged)
    ]
