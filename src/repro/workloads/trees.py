"""Binary search tree construction for the tree-traversal workload."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim import DeterministicRNG


@dataclass
class BinaryTree:
    """Array-backed BST: node i has key ``keys[i]`` and child indices."""

    keys: List[int]
    left: List[int]      # -1 = no child
    right: List[int]
    root: int

    @property
    def n(self) -> int:
        return len(self.keys)

    def search_path(self, query: int) -> List[int]:
        """Reference traversal: the node indices visited for ``query``."""
        path = []
        node = self.root
        while node != -1:
            path.append(node)
            key = self.keys[node]
            if key == query:
                break
            node = self.left[node] if query < key else self.right[node]
        return path

    def depth(self) -> int:
        best = 0
        stack = [(self.root, 1)]
        while stack:
            node, d = stack.pop()
            if node == -1:
                continue
            best = max(best, d)
            stack.append((self.left[node], d + 1))
            stack.append((self.right[node], d + 1))
        return best


def balanced_bst(n: int) -> BinaryTree:
    """A perfectly balanced BST over keys ``0..n-1``.

    Node *indices* equal their keys, so a blocked partition places key
    ranges contiguously in banks -- the layout the paper's Fig. 2 workflow
    implies (child pointers usually cross banks near the root).
    """
    if n <= 0:
        raise ValueError("tree must have at least one node")
    keys = list(range(n))
    left = [-1] * n
    right = [-1] * n

    def build(lo: int, hi: int) -> int:
        if lo > hi:
            return -1
        mid = (lo + hi) // 2
        left[mid] = build(lo, mid - 1)
        right[mid] = build(mid + 1, hi)
        return mid

    root = build(0, n - 1)
    return BinaryTree(keys=keys, left=left, right=right, root=root)


def random_bst(n: int, rng: DeterministicRNG) -> BinaryTree:
    """BST built from a random insertion order (depth ~ 2 ln n)."""
    order = list(range(n))
    rng.shuffle(order)
    keys = list(range(n))
    left = [-1] * n
    right = [-1] * n
    root = order[0]
    for key in order[1:]:
        node = root
        while True:
            if key < keys[node]:
                if left[node] == -1:
                    left[node] = key
                    break
                node = left[node]
            else:
                if right[node] == -1:
                    right[node] = key
                    break
                node = right[node]
    return BinaryTree(keys=keys, left=left, right=right, root=root)
