"""Sparse matrix generators (substitute for SuiteSparse [19])."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim import DeterministicRNG


@dataclass
class SparseMatrix:
    """Row-major sparse matrix: per-row column indices and values."""

    n_rows: int
    n_cols: int
    cols: List[List[int]]
    vals: List[List[float]]

    @property
    def nnz(self) -> int:
        return sum(len(r) for r in self.cols)

    def row_nnz(self, row: int) -> int:
        return len(self.cols[row])

    def multiply(self, x: List[float]) -> List[float]:
        """Reference y = A x for verification."""
        if len(x) != self.n_cols:
            raise ValueError("dimension mismatch")
        y = [0.0] * self.n_rows
        for r in range(self.n_rows):
            acc = 0.0
            for c, v in zip(self.cols[r], self.vals[r]):
                acc += v * x[c]
            y[r] = acc
        return y


def powerlaw_matrix(
    n_rows: int, n_cols: int, avg_nnz: int, skew: float,
    rng: DeterministicRNG,
) -> SparseMatrix:
    """Rows with Pareto-distributed nnz counts -- the skewed regime that
    makes spmv imbalanced across banks."""
    if n_rows <= 0 or n_cols <= 0 or avg_nnz <= 0:
        raise ValueError("matrix dimensions must be positive")
    cols: List[List[int]] = []
    vals: List[List[float]] = []
    alpha = max(1.05, 1.0 + 1.0 / max(skew, 1e-6))
    # Pareto mean is alpha/(alpha-1); rescale to hit avg_nnz.
    mean = alpha / (alpha - 1.0)
    for _ in range(n_rows):
        raw = rng.paretovariate(alpha) / mean * avg_nnz
        nnz = max(1, min(n_cols, int(raw)))
        chosen = sorted({rng.randint(0, n_cols - 1) for _ in range(nnz)})
        cols.append(chosen)
        vals.append([rng.uniform(0.1, 1.0) for _ in chosen])
    return SparseMatrix(n_rows, n_cols, cols, vals)


def banded_matrix(n: int, bandwidth: int) -> SparseMatrix:
    """Deterministic banded matrix: the balanced contrast case."""
    cols: List[List[int]] = []
    vals: List[List[float]] = []
    for r in range(n):
        lo = max(0, r - bandwidth)
        hi = min(n, r + bandwidth + 1)
        cols.append(list(range(lo, hi)))
        vals.append([1.0 / (abs(r - c) + 1) for c in range(lo, hi)])
    return SparseMatrix(n, n, cols, vals)
