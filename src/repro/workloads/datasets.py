"""Named dataset registry.

Substitutes for the real-world inputs the paper uses (SNAP graphs [55],
SuiteSparse matrices [19]): each name maps to a deterministic synthetic
generator whose *skew profile* mimics a class of real inputs.  Datasets
are keyed so benchmarks and examples can refer to inputs by name, and
scaled so one knob resizes a whole suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..sim import DeterministicRNG
from .graphs import Graph, rmat_graph, uniform_graph
from .matrices import SparseMatrix, banded_matrix, powerlaw_matrix


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset: its kind, base size and builder."""

    name: str
    kind: str                  # "graph" | "matrix"
    description: str
    base_size: int
    build: Callable[[int, int], object]   # (size, seed) -> data


def _pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def _social(size: int, seed: int) -> Graph:
    """Social-network-like: heavy power-law head (a=0.62)."""
    rng = DeterministicRNG(seed, "dataset/social")
    return rmat_graph(_pow2(size), 12, rng, a=0.62, b=0.17, c=0.17)


def _web(size: int, seed: int) -> Graph:
    """Web-crawl-like: extreme skew, sparse tail."""
    rng = DeterministicRNG(seed, "dataset/web")
    return rmat_graph(_pow2(size), 8, rng, a=0.67, b=0.15, c=0.14)


def _road(size: int, seed: int) -> Graph:
    """Road-network-like: near-uniform low degree, weighted."""
    rng = DeterministicRNG(seed, "dataset/road")
    return uniform_graph(size, 3, rng, weighted=True)


def _scalefree_matrix(size: int, seed: int) -> SparseMatrix:
    rng = DeterministicRNG(seed, "dataset/scalefree")
    return powerlaw_matrix(size, size, 10, 1.4, rng)


def _banded(size: int, seed: int) -> SparseMatrix:
    return banded_matrix(size, 4)


REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("social", "graph",
                    "power-law social graph (R-MAT a=0.62)", 4096, _social),
        DatasetSpec("web", "graph",
                    "extremely skewed web graph (R-MAT a=0.67)", 4096, _web),
        DatasetSpec("road", "graph",
                    "near-uniform weighted road network", 4096, _road),
        DatasetSpec("scalefree-matrix", "matrix",
                    "power-law row-degree sparse matrix", 4096,
                    _scalefree_matrix),
        DatasetSpec("banded-matrix", "matrix",
                    "deterministic banded matrix (balanced contrast)",
                    4096, _banded),
    ]
}


def dataset_names(kind: str = None) -> List[str]:
    return sorted(
        name for name, spec in REGISTRY.items()
        if kind is None or spec.kind == kind
    )


def load_dataset(name: str, scale: float = 1.0, seed: int = 1):
    """Build a named dataset at ``scale`` times its base size."""
    try:
        spec = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        ) from None
    size = max(16, int(spec.base_size * scale))
    return spec.build(size, seed)
