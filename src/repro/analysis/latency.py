"""Exact streaming latency statistics for open-loop runs.

The open-loop driver (:mod:`repro.runtime.requests`) records one integer
birth->completion latency per request per tenant.  Tail percentiles must
be *exact and bit-reproducible* -- they feed golden tests and the
bit-identity oracles (plain vs sanitized, serial vs sharded, snapshot
fork vs run-through) -- so this recorder keeps every sample and computes
nearest-rank percentiles with pure integer arithmetic.  Paper-scale runs
are a few 10^5 requests, so exactness is cheap; no P^2 or t-digest
approximation sneaks non-determinism into the tail.

Percentiles are addressed in *permille* (p50 = 500, p99 = 990,
p999 = 999) to keep the whole pipeline float-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def exact_percentile(samples: Sequence[int], permille: int) -> int:
    """Nearest-rank percentile of ``samples`` at ``permille``/1000.

    Rank is ``ceil(permille * n / 1000)`` (1-indexed into the sorted
    samples), the classic nearest-rank definition: p1000 is the max,
    permille 0 is the min, and every returned value is an observed
    sample.  Pure integer arithmetic -- no float rounding can ever move
    a tail estimate between platforms.

    Raises :class:`ValueError` on an empty sequence, mirroring
    ``geomean([])`` (a silent 0 here would fake a perfect tail).
    """
    if not 0 <= permille <= 1000:
        raise ValueError(f"permille {permille} out of range [0, 1000]")
    n = len(samples)
    if n == 0:
        raise ValueError("percentile of an empty sample set is undefined")
    ordered = sorted(samples)
    rank = -(-permille * n // 1000)  # ceil division, no floats
    return ordered[max(rank, 1) - 1]


#: The tail points every open-loop report includes.
REPORT_PERMILLES = (500, 990, 999)


class LatencyRecorder:
    """Per-tenant integer latency samples with exact percentile reports.

    ``record`` appends; ``merge`` folds another recorder in (sharded
    runs collect one recorder per shard and merge by tenant -- samples
    are re-sorted at query time, so merge order never matters).
    """

    def __init__(self) -> None:
        self.samples: Dict[str, List[int]] = {}

    def record(self, tenant: str, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency} for {tenant}")
        self.samples.setdefault(tenant, []).append(latency)

    def merge(self, other: "LatencyRecorder") -> None:
        for tenant, samples in other.samples.items():
            self.samples.setdefault(tenant, []).extend(samples)

    def count(self, tenant: str) -> int:
        return len(self.samples.get(tenant, []))

    def tenants(self) -> List[str]:
        return sorted(self.samples)

    def percentile(self, tenant: str, permille: int) -> int:
        if tenant not in self.samples:
            raise ValueError(f"no samples recorded for tenant {tenant!r}")
        return exact_percentile(self.samples[tenant], permille)

    def max_latency(self, tenant: str) -> int:
        return self.percentile(tenant, 1000)

    def mean_latency(self, tenant: str) -> float:
        if tenant not in self.samples:
            raise ValueError(f"no samples recorded for tenant {tenant!r}")
        samples = self.samples[tenant]
        return sum(samples) / len(samples)

    def summary(
        self, permilles: Iterable[int] = REPORT_PERMILLES
    ) -> Dict[str, float]:
        """Flat ``lat/<tenant>/p<permille>`` keys (plus count/mean/max),
        shaped for ``RunMetrics.extra`` so open-loop cells cache through
        the exec layer's JSON round-trip unchanged."""
        out: Dict[str, float] = {}
        for tenant in self.tenants():
            prefix = f"lat/{tenant}"
            out[f"{prefix}/count"] = float(self.count(tenant))
            out[f"{prefix}/mean"] = self.mean_latency(tenant)
            out[f"{prefix}/max"] = float(self.max_latency(tenant))
            for pm in permilles:
                out[f"{prefix}/p{pm}"] = float(self.percentile(tenant, pm))
        return out
