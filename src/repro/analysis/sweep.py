"""Parameter sweep helper.

Wraps the run-one-app loop behind a declarative interface: a sweep is a
list of named configuration variants; ``run_sweep`` executes every
(variant x app) cell and returns a :class:`SweepResult` with table
rendering and geomean helpers.  The Fig.-16-style benches and the CLI
``sweep`` command are built on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SystemConfig
from .metrics import RunMetrics
from .report import geomean, text_table


@dataclass(frozen=True)
class Variant:
    """One sweep point: a label and the configuration to run."""

    label: str
    config: SystemConfig


@dataclass
class SweepResult:
    """All metrics from one sweep, keyed by (variant label, app name)."""

    variants: List[str]
    apps: List[str]
    cells: Dict[Tuple[str, str], RunMetrics] = field(default_factory=dict)

    def metrics(self, variant: str, app: str) -> RunMetrics:
        return self.cells[(variant, app)]

    def geomean_makespan(self, variant: str) -> float:
        return geomean(
            self.cells[(variant, app)].makespan for app in self.apps
        )

    def relative_performance(self, baseline: str) -> Dict[str, float]:
        """Per-variant geomean speedup over the baseline variant."""
        base = self.geomean_makespan(baseline)
        return {
            v: base / self.geomean_makespan(v) for v in self.variants
        }

    def table(self, baseline: Optional[str] = None,
              title: str = "sweep") -> str:
        headers = ["variant"] + self.apps + ["geomean"]
        rows = []
        base = (
            self.geomean_makespan(baseline) if baseline is not None else None
        )
        for v in self.variants:
            row: List[object] = [v]
            for app in self.apps:
                row.append(self.cells[(v, app)].makespan)
            gm = self.geomean_makespan(v)
            row.append(base / gm if base is not None else gm)
            rows.append(row)
        return text_table(headers, rows, title=title)


def run_sweep(
    variants: Sequence[Variant],
    apps: Sequence[str],
    scale: float = 0.25,
    seed: int = 42,
    verify: bool = True,
    on_cell: Optional[Callable[[str, str, RunMetrics], None]] = None,
) -> SweepResult:
    """Execute every (variant, app) cell of the sweep."""
    if not variants:
        raise ValueError("a sweep needs at least one variant")
    labels = [v.label for v in variants]
    if len(set(labels)) != len(labels):
        raise ValueError("variant labels must be unique")
    result = SweepResult(variants=labels, apps=list(apps))
    # Cells fan out over the process pool and on-disk cache of
    # ``repro.exec``; order of the request list fixes the order results
    # (and on_cell callbacks) come back in.
    from ..exec import CellRequest, execute_cells

    requests = [
        CellRequest(
            app=app_name, config=variant.config, scale=scale, seed=seed,
            verify=verify,
        )
        for variant in variants
        for app_name in apps
    ]
    metrics_list = execute_cells(requests)
    it = iter(metrics_list)
    for variant in variants:
        for app_name in apps:
            metrics = next(it)
            result.cells[(variant.label, app_name)] = metrics
            if on_cell is not None:
                on_cell(variant.label, app_name, metrics)
    return result
