"""Post-run consistency audit of the load-balancing metadata.

The data-first scheduling protocol (Section VI-B) maintains a delicate
invariant set across the isLent bitmaps, the two levels of dataBorrowed
tables, and the in-flight messages.  ``audit_system`` sweeps a finished
system and reports violations -- tests run it after every balanced
execution so protocol regressions surface as named failures rather than
silently wrong schedules.

Checked invariants (for a *quiescent* system):

* I1  every block marked lent by its home unit is held by exactly one
      borrower (or a lend/return is still being accounted);
* I2  no unit holds a borrowed block whose home does not mark it lent;
* I3  a rank bridge's dataBorrowed entries point at units that actually
      borrowed the block (table inclusivity);
* I4  no tasks remain parked, queued or in any buffer;
* I5  task accounting balances: created == completed, nothing in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class AuditReport:
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.ok:
            return "audit: OK"
        return "audit: " + "; ".join(self.violations)


def audit_system(system) -> AuditReport:
    """Audit a finished :class:`~repro.runtime.system.NDPSystem`."""
    report = AuditReport()
    tracker = system.tracker

    # I5: global accounting.
    if tracker.total_created != tracker.total_completed:
        report.add(
            f"I5: {tracker.total_created} tasks created but "
            f"{tracker.total_completed} completed"
        )
    if tracker.task_messages_in_flight:
        report.add(
            f"I5: {tracker.task_messages_in_flight} task messages in flight"
        )

    # Build the borrower map.
    borrowers: Dict[int, List[int]] = {}
    for unit in system.units:
        for entry in unit.borrowed.entries():
            borrowers.setdefault(entry.block_id, []).append(unit.unit_id)

    for unit in system.units:
        # I4: no residual work.
        if unit.queue:
            report.add(f"I4: unit {unit.unit_id} has {len(unit.queue)} "
                       "queued tasks")
        parked = sum(len(v) for v in unit.parked.values())
        if parked:
            report.add(f"I4: unit {unit.unit_id} has {parked} parked tasks")
        if not unit.mailbox.is_empty():
            report.add(f"I4: unit {unit.unit_id} mailbox not empty")

        # I1: every lent block has exactly one borrower.
        for block in list(unit.islent._lent):
            holders = borrowers.get(block, [])
            if len(holders) > 1:
                report.add(
                    f"I1: block {block} lent by unit {unit.unit_id} has "
                    f"{len(holders)} borrowers {holders}"
                )

    # I2: borrowed blocks are marked lent at home.
    for block, holders in borrowers.items():
        home = system.addr_map.unit_of_block(block)
        if not system.units[home].islent.is_lent(block):
            report.add(
                f"I2: block {block} held by {holders} but home unit "
                f"{home} does not mark it lent"
            )

    # I3: bridge entries point at real borrowers.
    for bridge in getattr(system.fabric, "rank_bridges", []):
        for entry in bridge.borrowed.entries():
            holder_ids = borrowers.get(entry.block_id, [])
            if entry.value not in holder_ids:
                report.add(
                    f"I3: bridge {bridge.global_rank} maps block "
                    f"{entry.block_id} to unit {entry.value}, actual "
                    f"holders {holder_ids}"
                )
    return report
