"""Result reporting: aligned text tables, speedup summaries, JSON export.

The benchmark harness and the CLI share these helpers so every surface
prints the same paper-style tables.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .metrics import RunMetrics


def geomean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in vals) / len(vals))


def format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def text_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[format_cell(c) for c in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(f"=== {title} ===")
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_summary(
    results: Mapping[str, Mapping[str, RunMetrics]],
    baseline: str,
    designs: Sequence[str],
) -> str:
    """A Fig.-10-style speedup table with a geomean row."""
    rows = []
    per_design: Dict[str, List[float]] = {d: [] for d in designs}
    for app, by_design in results.items():
        base = by_design[baseline].makespan
        row: List[object] = [app]
        for d in designs:
            s = base / by_design[d].makespan
            per_design[d].append(s)
            row.append(s)
        rows.append(row)
    rows.append(["geomean"] + [geomean(per_design[d]) for d in designs])
    return text_table(
        ["app"] + list(designs), rows,
        title=f"speedup over design {baseline}",
    )


def metrics_row(m: RunMetrics) -> List[object]:
    return [
        m.app, m.design, m.makespan, round(m.avg_unit_time),
        m.wait_fraction, m.avg_over_max, m.tasks_executed,
        m.task_messages, m.data_messages,
    ]


METRICS_HEADERS = [
    "app", "design", "makespan", "avg_busy", "wait", "avg/max",
    "tasks", "task_msgs", "data_msgs",
]


def metrics_table(metrics: Sequence[RunMetrics], title: str = "runs") -> str:
    return text_table(
        METRICS_HEADERS, [metrics_row(m) for m in metrics], title=title
    )


def to_json(
    results: Mapping[str, Mapping[str, RunMetrics]], indent: int = 2
) -> str:
    """Serialize a result matrix for offline plotting."""
    payload = {
        app: {design: m.as_dict() for design, m in by_design.items()}
        for app, by_design in results.items()
    }
    return json.dumps(payload, indent=indent, default=str)


def energy_table(
    results: Mapping[str, RunMetrics], title: str = "energy (uJ)"
) -> str:
    rows = []
    for key, m in results.items():
        if m.energy is None:
            continue
        e = m.energy
        rows.append([
            key, e.core_sram_pj / 1e6, e.local_dram_pj / 1e6,
            e.comm_dram_pj / 1e6, e.static_pj / 1e6, e.total_pj / 1e6,
        ])
    return text_table(
        ["run", "core+SRAM", "local DRAM", "comm DRAM", "static", "total"],
        rows, title=title,
    )
