"""First-order analytic bounds for the simulated designs.

Closed-form roofline-style estimates used to cross-check the simulator:
a discrete-event model with a bug can silently produce plausible-looking
nonsense, but it cannot beat physics.  For a given configuration and
workload summary these functions bound

* aggregate task throughput (compute bound),
* cross-unit message throughput per design (communication bound),
* and a lower bound on makespan combining both with the critical unit's
  serial work.

Tests assert the simulator never *exceeds* these bounds (faster than
physics = bug) and lands within a sane factor of them on saturating
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import Design, SystemConfig


@dataclass(frozen=True)
class WorkloadSummary:
    """The few numbers the bounds need."""

    total_tasks: int
    total_task_cycles: int          # sum of execution cycles
    total_messages: int             # cross-unit messages sent
    message_bytes: int              # total wire bytes of those messages
    critical_unit_cycles: int       # serial work of the busiest unit


def per_task_overhead_cycles(config: SystemConfig) -> int:
    """Dispatch plus a cache-hit data access."""
    from ..ndp.cache import HIT_LATENCY

    return config.core.dispatch_overhead_cycles + HIT_LATENCY


def compute_bound_cycles(
    config: SystemConfig, workload: WorkloadSummary
) -> float:
    """Time to retire all task cycles with every unit busy."""
    units = config.topology.total_units
    overhead = per_task_overhead_cycles(config) * workload.total_tasks
    return (workload.total_task_cycles + overhead) / units


def message_throughput_bytes_per_cycle(config: SystemConfig) -> float:
    """Peak cross-unit payload bandwidth of the configured design.

    Every message crosses its source's link out and its destination's
    link in, so the aggregate link capacity is halved.
    """
    topo = config.topology
    if config.design in (Design.B, Design.W, Design.O):
        links = topo.ranks * topo.chips_per_rank
        return links * config.chip_link_bytes_per_cycle / 2.0
    if config.design in (Design.C, Design.R):
        from ..bridge.host_path import HOST_ACCESS_INEFFICIENCY

        chans = topo.channels * config.channel_bytes_per_cycle
        return chans / (2.0 * HOST_ACCESS_INEFFICIENCY)
    raise ValueError(f"no message model for design {config.design}")


def communication_bound_cycles(
    config: SystemConfig, workload: WorkloadSummary
) -> float:
    """Time to move all message bytes at peak fabric bandwidth."""
    if workload.message_bytes == 0:
        return 0.0
    return workload.message_bytes / message_throughput_bytes_per_cycle(config)


def host_overhead_bound_cycles(
    config: SystemConfig, workload: WorkloadSummary
) -> float:
    """Design C/R also serialize per-message software handling."""
    if config.design not in (Design.C, Design.R):
        return 0.0
    threads = max(1, config.host.cores // 4)
    return (
        workload.total_messages
        * config.comm.host_per_message_overhead_cycles / threads
    )


def makespan_lower_bound(
    config: SystemConfig, workload: WorkloadSummary
) -> float:
    """No design can finish faster than its binding resource."""
    return max(
        compute_bound_cycles(config, workload),
        communication_bound_cycles(config, workload),
        host_overhead_bound_cycles(config, workload),
        float(workload.critical_unit_cycles),
        1.0,
    )


def summarize_run(system) -> WorkloadSummary:
    """Extract a :class:`WorkloadSummary` from a finished NDP system."""
    stats = system.stats
    total_tasks = system.total_tasks_executed
    total_cycles = sum(u.busy_cycles for u in system.units)
    messages = stats.sum_counters(".tasks_forwarded")
    return WorkloadSummary(
        total_tasks=total_tasks,
        # busy cycles include overheads; good enough for a lower bound
        # when divided by units.
        total_task_cycles=total_cycles,
        total_messages=messages,
        message_bytes=messages * 64,
        critical_unit_cycles=max(
            (u.busy_cycles for u in system.units), default=0
        ),
    )
