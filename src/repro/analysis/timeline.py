"""ASCII utilization timelines.

Renders per-unit busy fractions over time as a character raster -- the
quickest way to *see* load imbalance, epoch barriers, and the effect of
the balancer without leaving the terminal::

    unit  0 |##########______________|
    unit  1 |####_____________#######|
    ...

Units record busy intervals when profiling is enabled on the system
(``collect_intervals=True`` at construction is not required: the timeline
reconstructs a coarse view from busy/finish counters when exact intervals
are unavailable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Glyphs from idle to fully busy.
SHADES = " .:-=+*#%@"


@dataclass(frozen=True)
class UnitActivity:
    """One unit's activity summary for timeline rendering."""

    unit_id: int
    busy_cycles: int
    finish_time: int


def _row_glyphs(
    busy: int, finish: int, makespan: int, columns: int
) -> str:
    """Coarse single-row density: busy spread uniformly until ``finish``."""
    if makespan <= 0 or finish <= 0:
        return SHADES[0] * columns
    active_cols = max(1, round(columns * min(finish, makespan) / makespan))
    density = min(1.0, busy / max(1, finish))
    shade = SHADES[min(len(SHADES) - 1, int(density * (len(SHADES) - 1)))]
    return (shade * active_cols).ljust(columns, SHADES[0])


def render_timeline(
    activities: Sequence[UnitActivity],
    makespan: int,
    columns: int = 60,
    max_rows: int = 32,
    title: Optional[str] = None,
) -> str:
    """Render one row per unit (down-sampled beyond ``max_rows``)."""
    if columns < 8:
        raise ValueError("need at least 8 columns")
    rows: List[str] = []
    if title:
        rows.append(f"=== {title} (makespan {makespan:,} cycles) ===")
    acts = list(activities)
    stride = max(1, len(acts) // max_rows)
    for act in acts[::stride]:
        bar = _row_glyphs(act.busy_cycles, act.finish_time, makespan, columns)
        pct = 100.0 * act.busy_cycles / max(1, makespan)
        rows.append(f"unit {act.unit_id:>4} |{bar}| {pct:5.1f}% busy")
    if stride > 1:
        rows.append(f"({stride - 1} of every {stride} units elided)")
    return "\n".join(rows)


def system_timeline(system, columns: int = 60, max_rows: int = 32) -> str:
    """Timeline for a finished NDP system, sorted hottest-first."""
    makespan = system.makespan
    acts = sorted(
        (
            UnitActivity(u.unit_id, u.busy_cycles, u.finish_time)
            for u in system.units
        ),
        key=lambda a: -a.busy_cycles,
    )
    return render_timeline(
        acts, makespan, columns=columns, max_rows=max_rows,
        title=f"design {system.config.design.value}",
    )


def utilization_summary(system) -> Tuple[float, float, float]:
    """(mean, median, max) busy fraction across units."""
    makespan = max(1, system.makespan)
    fracs = sorted(u.busy_cycles / makespan for u in system.units)
    n = len(fracs)
    if not n:
        return (0.0, 0.0, 0.0)
    return (sum(fracs) / n, fracs[n // 2], fracs[-1])
