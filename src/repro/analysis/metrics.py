"""Run metrics matching the paper's reporting.

Fig. 2 and Fig. 10 report, per run: the overall time (the slowest NDP
unit), the *average* time across units (the max/avg gap measures load
imbalance) and the *wait* time (total time minus the critical unit's
actual task-execution time -- idle cycles spent waiting for messages).
:class:`RunMetrics` captures those plus the energy breakdown and traffic
counters used by the remaining figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..config import Design, SystemConfig
from ..energy import EnergyBreakdown, account_energy


@dataclass
class RunMetrics:
    """Everything a benchmark needs from one finished run."""

    design: str
    app: str
    makespan: int
    avg_unit_time: float
    max_unit_time: int
    wait_fraction: float
    total_busy_cycles: int
    tasks_executed: int
    task_messages: int
    data_messages: int
    energy: Optional[EnergyBreakdown] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_over_max(self) -> float:
        """Load-balance quality: 1.0 means perfectly balanced."""
        if self.max_unit_time == 0:
            return 1.0
        return self.avg_unit_time / self.max_unit_time

    def speedup_over(self, other: "RunMetrics") -> float:
        """How much faster this run is than ``other``."""
        if self.makespan == 0:
            return float("inf")
        return other.makespan / self.makespan

    def as_dict(self) -> dict:
        out = {
            "design": self.design,
            "app": self.app,
            "makespan": self.makespan,
            "avg_unit_time": self.avg_unit_time,
            "max_unit_time": self.max_unit_time,
            "wait_fraction": self.wait_fraction,
            "tasks_executed": self.tasks_executed,
            "task_messages": self.task_messages,
            "data_messages": self.data_messages,
        }
        if self.energy is not None:
            out["energy"] = self.energy.as_dict()
        out.update(self.extra)
        return out


def collect_metrics(system: "object", app_name: str) -> RunMetrics:
    """Build :class:`RunMetrics` from a finished NDP or host system."""
    config: SystemConfig = system.config
    units = list(system.units)
    finish_times = [getattr(u, "finish_time", 0) for u in units]
    busy = [getattr(u, "busy_cycles", 0) for u in units]
    makespan = max(finish_times) if finish_times else 0
    # Per-unit "time" in Fig. 2 / Fig. 10 is the actual task-execution
    # time of each unit; the max/avg gap measures load imbalance (epoch
    # barriers equalize finish times, so finish time would hide it).
    avg_time = sum(busy) / len(busy) if busy else 0.0
    # Wait time of the critical (slowest) unit: its total time minus the
    # cycles it actually spent executing tasks.
    if makespan > 0:
        critical = max(range(len(units)), key=lambda i: finish_times[i])
        wait_fraction = max(0.0, 1.0 - busy[critical] / makespan)
    else:
        wait_fraction = 0.0

    is_host = config.design is Design.H or not hasattr(system, "addr_map")
    task_msgs = 0
    data_msgs = 0
    energy = None
    if not is_host and hasattr(system, "stats"):
        stats = system.stats
        task_msgs = stats.sum_counters(".tasks_forwarded")
        data_msgs = (
            stats.sum_counters(".blocks_lent")
            + stats.sum_counters(".blocks_returned")
        )
        energy = account_energy(config, stats, makespan, sum(busy))

    return RunMetrics(
        design=config.design.value,
        app=app_name,
        makespan=makespan,
        avg_unit_time=avg_time,
        max_unit_time=makespan,
        wait_fraction=wait_fraction,
        total_busy_cycles=sum(busy),
        tasks_executed=system.total_tasks_executed,
        task_messages=task_msgs,
        data_messages=data_msgs,
        energy=energy,
    )
