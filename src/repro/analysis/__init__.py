"""Result analysis: metrics, reporting, and metadata audits."""

from .audit import AuditReport, audit_system
from .sweep import SweepResult, Variant, run_sweep
from .timeline import UnitActivity, render_timeline, system_timeline, utilization_summary
from .latency import LatencyRecorder, exact_percentile
from .metrics import RunMetrics, collect_metrics
from .report import (
    energy_table,
    geomean,
    metrics_table,
    speedup_summary,
    text_table,
    to_json,
)

__all__ = [
    "AuditReport",
    "SweepResult",
    "Variant",
    "run_sweep",
    "UnitActivity",
    "render_timeline",
    "system_timeline",
    "utilization_summary",
    "audit_system",
    "LatencyRecorder",
    "exact_percentile",
    "RunMetrics",
    "collect_metrics",
    "energy_table",
    "geomean",
    "metrics_table",
    "speedup_summary",
    "text_table",
    "to_json",
]
