"""Mailbox ring buffer (Section V-A).

Each NDP unit statically reserves a *mailbox region* in its local DRAM bank
holding outgoing messages; the unit controller keeps the head and tail
pointers.  New messages append at the tail; the parent bridge's GATHER
drains from the head at ``G_xfer`` granularity.  When the region is full
the next enqueue stalls -- modelled by ``enqueue`` returning ``False`` so
the caller can block and retry after a drain.

Because one message may be larger than a single gather (a 256 B data block
with ``G_xfer`` = 64 B spans four gathers), the mailbox tracks how many
bytes of the head message have already been fetched; a message is handed to
the bridge only once fully transferred.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .types import Message


class MailboxFullError(RuntimeError):
    """Raised by ``enqueue_or_raise`` when the ring buffer has no space."""


class Mailbox:
    """FIFO ring buffer of outgoing messages with byte accounting."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("mailbox capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Message] = deque()
        self._used = 0
        self._head_fetched = 0  # bytes of head message already gathered
        self.high_water = 0
        self.total_enqueued = 0
        self.total_dequeued = 0
        # Rejection accounting: a False return hands the message back to
        # the caller, and a caller that forgets it has silently dropped
        # it.  These counters record every rejection so stats and the
        # message auditor (repro/flow/auditor.py) can account for each
        # one instead of losing it.
        self.dropped_messages = 0
        self.dropped_bytes = 0

    # -- producer side -----------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """L_mailbox: bytes waiting to be gathered."""
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def fits(self, msg: Message) -> bool:
        return msg.wire_bytes <= self.free_bytes

    def enqueue(self, msg: Message) -> bool:
        """Append at the tail.  Returns False when the region is full.

        A rejected message stays the caller's responsibility; the
        rejection is recorded in ``dropped_messages``/``dropped_bytes``.
        """
        if not self.fits(msg):
            self.dropped_messages += 1
            self.dropped_bytes += msg.wire_bytes
            return False
        self._queue.append(msg)
        self._used += msg.wire_bytes
        self.total_enqueued += 1
        if self._used > self.high_water:
            self.high_water = self._used
        return True

    def enqueue_or_raise(self, msg: Message) -> None:
        if not self.enqueue(msg):
            raise MailboxFullError(
                f"mailbox full ({self._used}/{self.capacity_bytes} bytes)"
            )

    # -- consumer (bridge GATHER) side --------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def is_empty(self) -> bool:
        return not self._queue

    def peek(self) -> Optional[Message]:
        return self._queue[0] if self._queue else None

    def fetch(self, budget_bytes: int) -> Tuple[List[Message], int]:
        """Gather up to ``budget_bytes`` from the head.

        Returns ``(completed_messages, bytes_taken)``.  A partially
        fetched head message consumes budget but is only returned once its
        final bytes are taken in a later call.
        """
        if budget_bytes <= 0:
            raise ValueError("fetch budget must be positive")
        completed: List[Message] = []
        taken = 0
        while self._queue and taken < budget_bytes:
            head = self._queue[0]
            remaining = head.wire_bytes - self._head_fetched
            chunk = min(remaining, budget_bytes - taken)
            taken += chunk
            self._head_fetched += chunk
            if self._head_fetched == head.wire_bytes:
                completed.append(head)
                self._queue.popleft()
                self._used -= head.wire_bytes
                self._head_fetched = 0
                self.total_dequeued += 1
        return completed, taken

    def pending_messages(self) -> Tuple[Message, ...]:
        """Snapshot of queued messages, oldest first (audits and tests)."""
        return tuple(self._queue)

    def drain_all(self) -> List[Message]:
        """Remove and return every queued message (host-forwarding path)."""
        out = list(self._queue)
        self._queue.clear()
        self._used = 0
        self._head_fetched = 0
        self.total_dequeued += len(out)
        return out
