"""Message formats, mailboxes and bridge buffers."""

from .types import (
    DataMessage,
    Message,
    MessageType,
    MESSAGE_BYTES,
    StateMessage,
    TaskMessage,
    frame_bytes,
    sub_message_count,
)
from .mailbox import Mailbox, MailboxFullError
from .buffers import MessageBuffer

__all__ = [
    "DataMessage",
    "Message",
    "MessageType",
    "MESSAGE_BYTES",
    "StateMessage",
    "TaskMessage",
    "frame_bytes",
    "sub_message_count",
    "Mailbox",
    "MailboxFullError",
    "MessageBuffer",
]
