"""SRAM message buffers inside the bridges (Section V-A).

The level-1 bridge holds, per child bank, a 1 kB *scatter buffer* of
messages awaiting SCATTER; a shared *backup buffer* absorbing overflow; and
a *mailbox region* for messages headed to the upper level.  All three are
bounded SRAM structures -- when the backup buffer is also full the bridge
pauses gathering, which is exactly the backpressure this class exposes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from .types import Message


class MessageBuffer:
    """A bounded FIFO of whole messages with byte accounting."""

    def __init__(self, name: str, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("buffer capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Message] = deque()
        self._used = 0
        self.high_water = 0
        # Rejection accounting, mirroring Mailbox: every push that
        # returns False is recorded so no message can vanish silently.
        self.dropped_messages = 0
        self.dropped_bytes = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def fits(self, msg: Message) -> bool:
        return msg.wire_bytes <= self.free_bytes

    def push(self, msg: Message) -> bool:
        if not self.fits(msg):
            # A message larger than the whole buffer is physically a train
            # of 64 B sub-messages streamed through it; accept it alone in
            # an otherwise-empty buffer (store-and-forward minimum), else
            # it could never traverse this hop at all.
            if not (msg.wire_bytes > self.capacity_bytes and self.is_empty()):
                self.dropped_messages += 1
                self.dropped_bytes += msg.wire_bytes
                return False
        self._queue.append(msg)
        self._used += msg.wire_bytes
        if self._used > self.high_water:
            self.high_water = self._used
        return True

    def force_push(self, msg: Message) -> None:
        """Append unconditionally, ignoring the capacity bound.

        The sanctioned soft-overflow escape (the level-2 bridge mirrors
        the level-1 backup-buffer behaviour rather than wedging a round):
        the message is admitted, ``used_bytes`` may exceed
        ``capacity_bytes``, and -- unlike poking the private queue -- the
        byte accounting and high-water mark stay coherent.
        """
        self._queue.append(msg)
        self._used += msg.wire_bytes
        if self._used > self.high_water:
            self.high_water = self._used

    def pop(self) -> Optional[Message]:
        if not self._queue:
            return None
        msg = self._queue.popleft()
        self._used -= msg.wire_bytes
        return msg

    def peek(self) -> Optional[Message]:
        return self._queue[0] if self._queue else None

    def pop_up_to(self, budget_bytes: int) -> List[Message]:
        """Pop whole messages from the head totalling <= ``budget_bytes``."""
        out: List[Message] = []
        taken = 0
        while self._queue:
            head = self._queue[0]
            if taken + head.wire_bytes > budget_bytes and out:
                break
            if taken + head.wire_bytes > budget_bytes and not out:
                # A single over-budget message still moves alone; the link
                # model charges its true size.
                out.append(self.pop())
                break
            out.append(self.pop())
            taken += head.wire_bytes
        return out

    def pending_messages(self) -> Tuple[Message, ...]:
        """Snapshot of buffered messages, oldest first (audits and tests)."""
        return tuple(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def is_empty(self) -> bool:
        return not self._queue

    def __repr__(self) -> str:  # pragma: no cover
        return f"MessageBuffer({self.name}, {self._used}/{self.capacity_bytes}B)"
