"""Message formats (paper Fig. 5).

Three message types cross the bridges:

* **task messages** move a task to the unit holding (or borrowing) its data
  element;
* **data messages** move a ``G_xfer``-sized data block for data-first load
  balancing (either *lending* it to a receiver or *returning* it home);
* **state messages** carry a child's state -- mailbox length, queued and
  finished workload -- up to its bridge, optionally with the list of
  blocks just scheduled out.

Every message is framed into 64-byte sub-messages on the wire
(``wire_bytes``); larger payloads span several sub-messages, matching the
index field of Fig. 5.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..runtime.task import Task

MESSAGE_BYTES = 64

_message_ids = itertools.count()


class MessageType(enum.Enum):
    TASK = "task"
    DATA = "data"
    STATE = "state"


def frame_bytes(payload_bytes: int, frame: int = MESSAGE_BYTES) -> int:
    """Bytes on the wire after 64 B framing (sub-message padding)."""
    if payload_bytes <= 0:
        raise ValueError("payload must be positive")
    return frame * math.ceil(payload_bytes / frame)


def sub_message_count(payload_bytes: int, frame: int = MESSAGE_BYTES) -> int:
    return frame_bytes(payload_bytes, frame) // frame


@dataclass
class Message:
    """Base class: routing metadata shared by all message types."""

    src_unit: int
    dst_unit: Optional[int]          # None while awaiting bridge assignment
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    _wire_cache: Optional[int] = field(
        default=None, repr=False, compare=False
    )

    @property
    def mtype(self) -> MessageType:
        raise NotImplementedError

    @property
    def payload_bytes(self) -> int:
        raise NotImplementedError

    @property
    def wire_bytes(self) -> int:
        # Cached: the payload is fixed at construction and this is on the
        # hot path of every buffer operation.
        if self._wire_cache is None:
            self._wire_cache = frame_bytes(self.payload_bytes)
        return self._wire_cache

    @property
    def sub_messages(self) -> int:
        return sub_message_count(self.payload_bytes)


@dataclass
class TaskMessage(Message):
    """Push one task to a remote unit (remote child, or load balancing)."""

    task: Task = None
    lb_assigned: bool = False        # part of a load-balancing bundle
    bounces: int = 0                 # times forwarded off a stale home

    @property
    def mtype(self) -> MessageType:
        return MessageType.TASK

    @property
    def payload_bytes(self) -> int:
        return self.task.size_bytes


@dataclass
class DataMessage(Message):
    """Move a data block for data-first scheduling (Section VI)."""

    block_id: int = -1
    block_bytes: int = 256
    returning: bool = False          # block going back to its home unit
    lb_pending: bool = False         # awaiting receiver assignment at bridge
    bundle_workload: int = 0         # W of the tasks lent with this block
    home_unit: int = -1              # original home of the block

    @property
    def mtype(self) -> MessageType:
        return MessageType.DATA

    @property
    def payload_bytes(self) -> int:
        # 16 B header (type/index/address) plus the block itself.
        return 16 + self.block_bytes


@dataclass
class StateMessage(Message):
    """Child state reported to the parent bridge (STATE-GATHER response)."""

    mailbox_len: int = 0             # L_mailbox, bytes waiting
    queue_workload: int = 0          # W_queue
    finished_workload: int = 0       # W_finish
    sched_out: Tuple = ()            # ((block_id, workload), ...) step 3
    all_idle: bool = False           # level-1 -> level-2 escalation flag

    @property
    def mtype(self) -> MessageType:
        return MessageType.STATE

    @property
    def payload_bytes(self) -> int:
        return 24 + 12 * len(self.sched_out)
