"""Configuration validation.

``validate_config`` raises :class:`ConfigError` with a precise message for
the first violated constraint.  Constraints encode physical requirements
from the paper (e.g. messages are 64 B and ``G_xfer`` must be a multiple of
them, Section V-B) plus basic sanity bounds.
"""

from __future__ import annotations

from .system import Design, SystemConfig


class ConfigError(ValueError):
    """An invalid system configuration."""


def validate_config(cfg: SystemConfig) -> SystemConfig:
    """Check ``cfg`` for internal consistency; returns it unchanged."""
    topo = cfg.topology
    if topo.channels < 1:
        raise ConfigError("need at least one channel")
    if topo.ranks_per_channel < 1:
        raise ConfigError("need at least one rank per channel")
    if topo.chips_per_rank < 1 or topo.banks_per_chip < 1:
        raise ConfigError("need at least one chip and one bank per chip")
    if topo.dq_bits_per_chip * topo.chips_per_rank != topo.channel_bits:
        raise ConfigError(
            "chip DQ widths must tile the channel: "
            f"{topo.chips_per_rank} chips x {topo.dq_bits_per_chip} bits "
            f"!= {topo.channel_bits}-bit channel"
        )

    comm = cfg.comm
    if comm.message_bytes <= 0:
        raise ConfigError("message size must be positive")
    if comm.g_xfer_bytes % comm.message_bytes != 0:
        raise ConfigError(
            f"G_xfer ({comm.g_xfer_bytes}) must be a multiple of the "
            f"message size ({comm.message_bytes})"
        )
    if comm.i_state_cycles <= 0:
        raise ConfigError("I_state must be positive")
    if not (0.0 < comm.split_dimm_data_pin_fraction <= 1.0):
        raise ConfigError("split-DIMM data pin fraction must be in (0, 1]")

    if cfg.sketch.buckets < 1 or cfg.sketch.entries_per_bucket < 1:
        raise ConfigError("sketch must have at least one bucket and entry")
    if not cfg.sketch.decay_base > 1.0:
        raise ConfigError("sketch decay base must exceed 1.0")

    bal = cfg.balance
    if bal.enabled and cfg.design in (Design.C, Design.H, Design.R):
        raise ConfigError(
            f"design {cfg.design.value} cannot use dynamic load balancing"
        )
    if not (0.0 < bal.steal_fraction <= 1.0):
        raise ConfigError("steal fraction must be in (0, 1]")
    if bal.budget_w_th_multiple <= 0:
        raise ConfigError("budget multiple must be positive")
    if bal.metadata_scale <= 0:
        raise ConfigError("metadata scale must be positive")

    if cfg.unit_mem.mailbox_bytes < comm.g_xfer_bytes:
        raise ConfigError("unit mailbox must hold at least one G_xfer block")
    if cfg.bridge.scatter_buffer_bytes_per_bank < comm.message_bytes:
        raise ConfigError("scatter buffer must hold at least one message")

    if cfg.core.freq_mhz <= 0:
        raise ConfigError("core frequency must be positive")
    if cfg.seed < 0:
        raise ConfigError("seed must be non-negative")
    return cfg
