"""Configuration validation.

``validate_config`` raises :class:`ConfigError` with a precise message for
the first violated constraint.  Constraints encode physical requirements
from the paper (e.g. messages are 64 B and ``G_xfer`` must be a multiple of
them, Section V-B) plus basic sanity bounds.
"""

from __future__ import annotations

from typing import Tuple

from .system import Design, SystemConfig


class ConfigError(ValueError):
    """An invalid system configuration."""


def validate_config(cfg: SystemConfig) -> SystemConfig:
    """Check ``cfg`` for internal consistency; returns it unchanged."""
    topo = cfg.topology
    if topo.channels < 1:
        raise ConfigError("need at least one channel")
    if topo.ranks_per_channel < 1:
        raise ConfigError("need at least one rank per channel")
    if topo.chips_per_rank < 1 or topo.banks_per_chip < 1:
        raise ConfigError("need at least one chip and one bank per chip")
    if topo.dq_bits_per_chip * topo.chips_per_rank != topo.channel_bits:
        raise ConfigError(
            "chip DQ widths must tile the channel: "
            f"{topo.chips_per_rank} chips x {topo.dq_bits_per_chip} bits "
            f"!= {topo.channel_bits}-bit channel"
        )
    if topo.dimms_per_channel < 1:
        raise ConfigError("need at least one DIMM per channel")
    if topo.ranks_per_channel % topo.dimms_per_channel != 0:
        raise ConfigError(
            f"{topo.ranks_per_channel} ranks per channel cannot be spread "
            f"evenly over {topo.dimms_per_channel} DIMMs"
        )

    comm = cfg.comm
    if comm.message_bytes <= 0:
        raise ConfigError("message size must be positive")
    if comm.g_xfer_bytes % comm.message_bytes != 0:
        raise ConfigError(
            f"G_xfer ({comm.g_xfer_bytes}) must be a multiple of the "
            f"message size ({comm.message_bytes})"
        )
    if comm.i_state_cycles <= 0:
        raise ConfigError("I_state must be positive")
    if not (0.0 < comm.split_dimm_data_pin_fraction <= 1.0):
        raise ConfigError("split-DIMM data pin fraction must be in (0, 1]")

    if cfg.sketch.buckets < 1 or cfg.sketch.entries_per_bucket < 1:
        raise ConfigError("sketch must have at least one bucket and entry")
    if not cfg.sketch.decay_base > 1.0:
        raise ConfigError("sketch decay base must exceed 1.0")

    bal = cfg.balance
    if bal.enabled and cfg.design in (Design.C, Design.H, Design.R):
        raise ConfigError(
            f"design {cfg.design.value} cannot use dynamic load balancing"
        )
    if not (0.0 < bal.steal_fraction <= 1.0):
        raise ConfigError("steal fraction must be in (0, 1]")
    if bal.budget_w_th_multiple <= 0:
        raise ConfigError("budget multiple must be positive")
    if bal.metadata_scale <= 0:
        raise ConfigError("metadata scale must be positive")

    if cfg.unit_mem.mailbox_bytes < comm.g_xfer_bytes:
        raise ConfigError("unit mailbox must hold at least one G_xfer block")
    if cfg.bridge.scatter_buffer_bytes_per_bank < comm.message_bytes:
        raise ConfigError("scatter buffer must hold at least one message")

    if cfg.core.freq_mhz <= 0:
        raise ConfigError("core frequency must be positive")
    if cfg.seed < 0:
        raise ConfigError("seed must be non-negative")
    return cfg


def validate_shardable(cfg: SystemConfig, shards: int) -> Tuple[int, int]:
    """Check that the topology splits into ``shards`` equal subtrees.

    A shard must be a *complete* sub-topology -- whole channels, or whole
    rank groups within one channel -- so that each shard hosts a full
    bridge hierarchy (level-1 bridges plus its own level-2 domain) and all
    cross-shard traffic crosses the host hop.  Returns the per-shard
    ``(channels, ranks_per_channel)``; raises :class:`ConfigError` with a
    precise reason when the topology cannot be sharded that way.
    """
    topo = cfg.topology
    if shards < 1:
        raise ConfigError(f"shard count must be >= 1, got {shards}")
    if shards == 1:
        return (topo.channels, topo.ranks_per_channel)
    if cfg.design in (Design.H, Design.R):
        raise ConfigError(
            f"design {cfg.design.value} has no partitionable bridge "
            "fabric; sharded execution supports designs C/B/W/O"
        )
    if shards > topo.ranks:
        raise ConfigError(
            f"cannot split {topo.ranks} level-1 (rank) subtrees into "
            f"{shards} shards; a shard needs at least one whole rank"
        )
    if shards <= topo.channels:
        if topo.channels % shards != 0:
            raise ConfigError(
                f"{topo.channels} channels do not divide into "
                f"{shards} shards; channel-level shards must take whole "
                "channels"
            )
        return (topo.channels // shards, topo.ranks_per_channel)
    if shards % topo.channels != 0:
        raise ConfigError(
            f"{shards} shards over {topo.channels} channels would split "
            "a rank group across channels; the shard count must be a "
            "multiple of the channel count"
        )
    per_channel = shards // topo.channels
    if topo.ranks_per_channel % per_channel != 0:
        raise ConfigError(
            f"{topo.ranks_per_channel} ranks per channel do not divide "
            f"into {per_channel} shards per channel"
        )
    return (1, topo.ranks_per_channel // per_channel)
