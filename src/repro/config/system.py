"""System configuration dataclasses (paper Table I).

Every knob the evaluation sweeps is an explicit field here.  The defaults
reproduce Table I of the paper: a 512-unit system (2 channels x 4 ranks x
8 chips x 8 banks), UPMEM-style 400 MHz in-order cores, DDR4-2400 links,
17 ns CAS/RCD/RP, ``G_xfer`` = 256 B and ``I_state`` = 2000 cycles.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class Design(enum.Enum):
    """The evaluated system designs (paper Table II plus H and R).

    * ``C``  -- cross-unit messages forwarded by the host CPU, no balancing.
    * ``B``  -- NDPBridge hardware bridges, no balancing.
    * ``W``  -- bridges + traditional work stealing (with workload
      correction, as in the paper).
    * ``O``  -- full NDPBridge: bridges + data-transfer-aware balancing.
    * ``H``  -- host-only execution, no NDP (separate model).
    * ``R``  -- RowClone intra-chip bank-to-bank copy; inter-chip via host.
    """

    C = "C"
    B = "B"
    W = "W"
    O = "O"  # noqa: E741 - paper's name
    H = "H"
    R = "R"


class TriggerMode(enum.Enum):
    """Message gather/scatter triggering policy (Section V-C)."""

    DYNAMIC = "dynamic"      # the paper's scheme
    FIXED = "fixed"          # every I_min
    FIXED_2X = "fixed_2x"    # every 2 * I_min


@dataclass(frozen=True)
class TopologyConfig:
    """Physical organization of the memory system.

    ``ranks_per_channel`` counts every rank a channel addresses across all
    of its DIMMs; ``dimms_per_channel`` records how those ranks are
    grouped into physical modules.  The grouping does not change timing
    (ranks on one channel share its bus either way) but large multi-DIMM
    systems (>128 units) declare it so topology validation and fabric
    partitioning can reason about whole physical subtrees.
    """

    channels: int = 2
    ranks_per_channel: int = 4
    chips_per_rank: int = 8
    banks_per_chip: int = 8
    dq_bits_per_chip: int = 8       # x4 / x8 / x16 parts
    channel_bits: int = 64
    mega_transfers_per_s: int = 2400
    bank_capacity_mb: int = 64
    dimms_per_channel: int = 1

    @property
    def ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @property
    def ranks_per_dimm(self) -> int:
        return self.ranks_per_channel // self.dimms_per_channel

    @property
    def banks_per_rank(self) -> int:
        return self.chips_per_rank * self.banks_per_chip

    @property
    def total_units(self) -> int:
        return self.ranks * self.banks_per_rank

    @property
    def units_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank


@dataclass(frozen=True)
class CoreConfig:
    """The wimpy in-order NDP core (UPMEM-like)."""

    freq_mhz: int = 400
    dispatch_overhead_cycles: int = 8   # fetch task descriptor + setup
    enqueue_overhead_cycles: int = 4    # build + push one child task
    local_dma_bytes_per_cycle: float = 2.0  # core <-> local bank bandwidth
    power_mw: float = 10.0

    @property
    def cycle_ns(self) -> float:
        return 1000.0 / self.freq_mhz


@dataclass(frozen=True)
class DRAMTimingConfig:
    """Per-bank DDR timings (Table I: 17 ns CAS/RCD/RP)."""

    t_rcd_ns: float = 17.0
    t_cas_ns: float = 17.0
    t_rp_ns: float = 17.0
    row_bytes: int = 1024               # one DRAM row per bank per chip
    # Write-to-read turnaround bubble on the bank data bus (tWTR-ish).
    t_wtr_ns: float = 7.5
    # All-bank refresh: every tREFI the bank stalls for tRFC.  Disabled by
    # default (the paper's zsim setup follows [15] and [25], which omit
    # refresh); enable for sensitivity studies.
    refresh_enabled: bool = False
    t_refi_ns: float = 7800.0
    t_rfc_ns: float = 350.0

    def cycles(self, ns: float, cycle_ns: float) -> int:
        return max(1, math.ceil(ns / cycle_ns))


@dataclass(frozen=True)
class SRAMConfig:
    """Per-unit SRAM structures (Table I)."""

    l1d_kb: int = 64
    l1i_kb: int = 32
    islent_bytes: int = 2 * 1024
    databorrowed_bytes: int = 16 * 1024
    databorrowed_ways: int = 8


@dataclass(frozen=True)
class UnitMemConfig:
    """Per-unit in-DRAM regions (Table I)."""

    mailbox_bytes: int = 1024 * 1024
    borrowed_region_bytes: int = 1024 * 1024
    reserved_queue_chunks: int = 1280   # Section VI-C: ~10000 tasks


@dataclass(frozen=True)
class BridgeConfig:
    """Level-1 (rank) bridge buffer sizes (Table I / Section V-A)."""

    scatter_buffer_bytes_per_bank: int = 1024
    backup_buffer_bytes: int = 64 * 1024
    mailbox_bytes: int = 128 * 1024
    databorrowed_bytes: int = 1024 * 1024
    databorrowed_ways: int = 16
    # Fixed per-round bridge-internal processing cost (routing etc.).
    route_overhead_cycles: int = 2


@dataclass(frozen=True)
class SketchConfig:
    """HeavyGuardian-style hot-data sketch (Section VI-C)."""

    buckets: int = 16
    entries_per_bucket: int = 16
    counter_bytes: int = 1
    decay_base: float = 1.08

    @property
    def counter_max(self) -> int:
        return (1 << (8 * self.counter_bytes)) - 1


@dataclass(frozen=True)
class CommConfig:
    """Communication parameters (Sections V-B / V-C)."""

    g_xfer_bytes: int = 256
    message_bytes: int = 64
    #: Max G_xfer chunks moved per unit per round: a backlogged mailbox
    #: gets several consecutive GATHERs before the round moves on, so the
    #: granularity governs transfer efficiency, not peak rate.
    max_chunks_per_round: int = 8
    i_state_cycles: int = 2000
    trigger_mode: TriggerMode = TriggerMode.DYNAMIC
    # Host-forwarding path (design C / R inter-chip / level-2 software).
    # Polling every ~5 us and ~100 ns of software handling per message
    # reflect a host runtime that reads mailbox regions over DDR, parses,
    # routes and re-writes each message (UPMEM-style host interaction).
    host_poll_interval_cycles: int = 2000
    host_per_message_overhead_cycles: int = 40
    # The level-2 bridge is also host software in the evaluated setup, but
    # it only routes pre-parsed bridge messages with a table lookup in a
    # tight loop -- a few cycles, not the full forwarding path.
    l2_per_message_overhead_cycles: int = 4
    # Split-DIMM (chameleon-s) variant: 2 of 8 DQ pins carry C/A.
    split_dimm: bool = False
    split_dimm_data_pin_fraction: float = 0.75
    # DIMM-Link-style peer-to-peer links between ranks (Section V-A says
    # NDPBridge can work in tandem with them): cross-rank messages bypass
    # the host channel and its software routing.
    inter_rank_links: bool = False
    inter_rank_link_gb_s: float = 25.0


@dataclass(frozen=True)
class BalanceConfig:
    """Load-balancing policy configuration (Section VI)."""

    enabled: bool = False
    # Data-transfer-aware optimizations; all False == traditional work
    # stealing (design W, with workload correction per the paper).
    advance_trigger: bool = False   # +Adv: schedule before queue is empty
    fine_grained: bool = False      # +Fine: small budgets instead of half
    hot_selection: bool = False     # +Hot: sketch-guided block selection
    workload_correction: bool = True  # toArrive accounting (W and O both)
    steal_fraction: float = 0.5     # classic work stealing amount
    budget_w_th_multiple: float = 2.0  # fine-grained budget = k * W_th
    max_givers_per_receiver: int = 2
    # Scale factor for metadata table capacities (Fig. 16(a) sweep).
    metadata_scale: float = 1.0


@dataclass(frozen=True)
class EnergyConfig:
    """Energy model constants (Section VII).

    150 pJ per 64-bit bank read/write is from the UPMEM evaluation cited in
    the paper.  The channel transfer constant follows the off-chip movement
    number the paper takes from [25] (order of 10 pJ/bit); SRAM and static
    values are CACTI-flavoured estimates that only need to be consistent
    across designs.
    """

    bank_access_pj_per_64bit: float = 150.0
    channel_pj_per_byte: float = 10.0
    sram_access_pj: float = 5.0
    core_power_mw: float = 10.0
    static_power_mw_per_unit: float = 1.0
    static_power_mw_per_bridge: float = 5.0


@dataclass(frozen=True)
class HostConfig:
    """The host CPU used by designs C/R (forwarding) and H (execution)."""

    cores: int = 16
    freq_mhz: int = 2600
    # A 2.6 GHz OoO host core vs the 400 MHz in-order NDP core.  The
    # evaluated workloads are irregular and memory-latency-bound, where
    # out-of-order execution recovers little IPC, so the advantage is
    # close to the 6.5x frequency ratio rather than frequency x IPC.
    speedup_vs_ndp_core: float = 6.5
    llc_mb: int = 20
    mem_channels: int = 2
    mem_bandwidth_gb_s: float = 38.4  # 2 x DDR4-2400
    # Uncached access latency (~100 ns = 40 NDP cycles) and the memory-
    # level parallelism one core sustains on dependent-pointer code.
    mem_latency_cycles: int = 40
    mem_level_parallelism: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration: everything needed to build one system."""

    design: Design = Design.O
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    dram: DRAMTimingConfig = field(default_factory=DRAMTimingConfig)
    sram: SRAMConfig = field(default_factory=SRAMConfig)
    unit_mem: UnitMemConfig = field(default_factory=UnitMemConfig)
    bridge: BridgeConfig = field(default_factory=BridgeConfig)
    sketch: SketchConfig = field(default_factory=SketchConfig)
    comm: CommConfig = field(default_factory=CommConfig)
    balance: BalanceConfig = field(default_factory=BalanceConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    host: HostConfig = field(default_factory=HostConfig)
    seed: int = 42
    max_cycles: int = 2_000_000_000

    # ------------------------------------------------------------------
    # derived link speeds (bytes per NDP-core cycle)
    # ------------------------------------------------------------------
    @property
    def cycle_ns(self) -> float:
        return self.core.cycle_ns

    @property
    def chip_link_bytes_per_cycle(self) -> float:
        """Per-chip DQ slice bandwidth seen by the level-1 bridge."""
        bytes_per_s = self.topology.mega_transfers_per_s * 1e6 * (
            self.topology.dq_bits_per_chip / 8.0
        )
        bpc = bytes_per_s * self.cycle_ns * 1e-9
        if self.comm.split_dimm:
            bpc *= self.comm.split_dimm_data_pin_fraction
        return bpc

    @property
    def channel_bytes_per_cycle(self) -> float:
        """Full 64-bit channel bandwidth (level-1 <-> level-2 / host)."""
        bytes_per_s = self.topology.mega_transfers_per_s * 1e6 * (
            self.topology.channel_bits / 8.0
        )
        return bytes_per_s * self.cycle_ns * 1e-9

    @property
    def t_rcd_cycles(self) -> int:
        return self.dram.cycles(self.dram.t_rcd_ns, self.cycle_ns)

    @property
    def t_cas_cycles(self) -> int:
        return self.dram.cycles(self.dram.t_cas_ns, self.cycle_ns)

    @property
    def t_rp_cycles(self) -> int:
        return self.dram.cycles(self.dram.t_rp_ns, self.cycle_ns)

    def with_design(self, design: Design) -> "SystemConfig":
        """Return a copy configured for another design point (Table II)."""
        balance = self.balance
        comm = self.comm
        if design in (Design.C, Design.B, Design.R, Design.H):
            balance = replace(balance, enabled=False)
        elif design == Design.W:
            balance = replace(
                balance, enabled=True, advance_trigger=False,
                fine_grained=False, hot_selection=False,
            )
        elif design == Design.O:
            balance = replace(
                balance, enabled=True, advance_trigger=True,
                fine_grained=True, hot_selection=True,
            )
        return replace(self, design=design, balance=balance, comm=comm)

    def replace(self, **kwargs) -> "SystemConfig":
        """``dataclasses.replace`` convenience passthrough."""
        return replace(self, **kwargs)
