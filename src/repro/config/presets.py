"""Named configuration presets matching the paper's evaluated systems."""

from __future__ import annotations

from dataclasses import replace

from .system import (
    BalanceConfig,
    CommConfig,
    Design,
    SketchConfig,
    SystemConfig,
    TopologyConfig,
    TriggerMode,
)


def default_config(design: Design = Design.O, seed: int = 42) -> SystemConfig:
    """The paper's default 512-unit Table-I system."""
    return SystemConfig(seed=seed).with_design(design)


def small_config(design: Design = Design.O, seed: int = 42) -> SystemConfig:
    """A 64-unit single-channel, single-rank system for tests/examples."""
    topo = TopologyConfig(channels=1, ranks_per_channel=1)
    return SystemConfig(topology=topo, seed=seed).with_design(design)


def tiny_config(design: Design = Design.O, seed: int = 42) -> SystemConfig:
    """A 16-unit system (1 channel, 1 rank, 4 chips, 4 banks) for unit tests."""
    topo = TopologyConfig(
        channels=1, ranks_per_channel=1, chips_per_rank=4, banks_per_chip=4,
        channel_bits=32,
    )
    return SystemConfig(topology=topo, seed=seed).with_design(design)


def scaled_config(
    num_units: int,
    design: Design = Design.O,
    seed: int = 42,
    channels: int = None,
    dimms_per_channel: int = 1,
) -> SystemConfig:
    """Scaling study configurations (Fig. 12): 64 to 1024+ units.

    The paper keeps 64 units per rank and varies the rank count from 1 to
    16, splitting ranks evenly over at most 2 channels; with ``channels``
    left ``None`` that historical layout is reproduced.  Passing
    ``channels`` (and optionally ``dimms_per_channel``) spreads the same
    rank count over a wider multi-channel / multi-DIMM host instead --
    the >128-unit systems the sharded engine partitions.
    """
    if num_units % 64 != 0:
        raise ValueError("scaling configs use 64 units (one rank) per step")
    ranks = num_units // 64
    if channels is None:
        if ranks <= 1:
            topo = TopologyConfig(channels=1, ranks_per_channel=1)
        elif ranks % 2 == 0:
            topo = TopologyConfig(channels=2, ranks_per_channel=ranks // 2)
        else:
            topo = TopologyConfig(channels=1, ranks_per_channel=ranks)
    else:
        if channels < 1 or ranks % channels != 0:
            raise ValueError(
                f"{ranks} ranks do not spread evenly over {channels} channels"
            )
        topo = TopologyConfig(
            channels=channels,
            ranks_per_channel=ranks // channels,
            dimms_per_channel=dimms_per_channel,
        )
    return SystemConfig(topology=topo, seed=seed).with_design(design)


def multi_dimm_config(
    num_units: int = 1024,
    design: Design = Design.O,
    seed: int = 42,
    channels: int = 4,
    dimms_per_channel: int = 2,
) -> SystemConfig:
    """A large multi-channel, multi-DIMM system (default 1024 units).

    The shape the sharded engine targets: several channels, each carrying
    multiple DIMMs' worth of ranks, so the fabric partitions into whole
    channel or DIMM subtrees.
    """
    return scaled_config(
        num_units, design=design, seed=seed,
        channels=channels, dimms_per_channel=dimms_per_channel,
    )


def dq_width_config(
    dq_bits: int, design: Design = Design.O, seed: int = 42
) -> SystemConfig:
    """x4/x8/x16 DRAM chip configurations (Fig. 15).

    The channel stays 64 bits wide and the rank count is unchanged, so the
    chip count per rank is ``64 / dq_bits`` and the total bank count scales
    inversely with chip width (1024 / 512 / 256 banks).
    """
    if dq_bits not in (4, 8, 16):
        raise ValueError("dq_bits must be one of 4, 8, 16")
    topo = TopologyConfig(dq_bits_per_chip=dq_bits, chips_per_rank=64 // dq_bits)
    return SystemConfig(topology=topo, seed=seed).with_design(design)


def split_dimm_config(design: Design = Design.O, seed: int = 42) -> SystemConfig:
    """Split data-buffer DIMM with chameleon-s DQ multiplexing (Sec. V-A).

    Two of the eight DQ pins of each chip are dedicated to C/A dispatch, so
    the unit<->bridge data bandwidth drops to 6/8 of the default.
    """
    cfg = default_config(design, seed)
    comm = replace(cfg.comm, split_dimm=True)
    return cfg.replace(comm=comm)


def dimm_link_config(design: Design = Design.O, seed: int = 42) -> SystemConfig:
    """NDPBridge in tandem with DIMM-Link-style inter-rank links.

    The paper positions DIMM-Link [89] / ABC-DIMM [73] as orthogonal: they
    provide inter-DIMM physical links that the level-2 bridge can use
    instead of routing cross-rank traffic through the host and its memory
    channels.
    """
    cfg = default_config(design, seed)
    return cfg.replace(comm=replace(cfg.comm, inter_rank_links=True))


def trigger_mode_config(
    mode: TriggerMode, design: Design = Design.O, seed: int = 42
) -> SystemConfig:
    """Fixed-interval vs dynamic communication triggering (Fig. 14(b))."""
    cfg = default_config(design, seed)
    return cfg.replace(comm=replace(cfg.comm, trigger_mode=mode))


def gxfer_config(
    g_xfer_bytes: int,
    metadata_scale: float = 1.0,
    design: Design = Design.O,
    seed: int = 42,
) -> SystemConfig:
    """G_xfer / metadata-capacity sweep (Fig. 16(a))."""
    if g_xfer_bytes % 64 != 0:
        raise ValueError("G_xfer must be a multiple of the 64 B message size")
    cfg = default_config(design, seed)
    comm = replace(cfg.comm, g_xfer_bytes=g_xfer_bytes)
    balance = replace(cfg.balance, metadata_scale=metadata_scale)
    return cfg.replace(comm=comm, balance=balance)


def istate_config(
    i_state_cycles: int, design: Design = Design.O, seed: int = 42
) -> SystemConfig:
    """State-gathering interval sweep (Fig. 16(b))."""
    if i_state_cycles <= 0:
        raise ValueError("I_state must be positive")
    cfg = default_config(design, seed)
    return cfg.replace(comm=replace(cfg.comm, i_state_cycles=i_state_cycles))


def sketch_config(
    buckets: int, entries_per_bucket: int,
    design: Design = Design.O, seed: int = 42,
) -> SystemConfig:
    """Sketch geometry sweep (Fig. 16(c,d))."""
    cfg = default_config(design, seed)
    sketch = SketchConfig(buckets=buckets, entries_per_bucket=entries_per_bucket)
    return cfg.replace(sketch=sketch)


def ablation_config(
    advance_trigger: bool = False,
    fine_grained: bool = False,
    hot_selection: bool = False,
    seed: int = 42,
    base: SystemConfig = None,
) -> SystemConfig:
    """Configurations between W (all off) and O (all on) for Fig. 14(a)."""
    cfg = base if base is not None else default_config(Design.W, seed)
    cfg = cfg.with_design(Design.W)
    balance = replace(
        cfg.balance,
        enabled=True,
        advance_trigger=advance_trigger,
        fine_grained=fine_grained,
        hot_selection=hot_selection,
    )
    design = Design.O if (advance_trigger and fine_grained and hot_selection) else Design.W
    return cfg.replace(balance=balance, design=design)
