"""``python -m repro.state`` -- the simstate command line.

Same conventions as ``python -m repro.lint`` / ``python -m repro.flow``:
exit 0 when clean, 1 when findings survive suppression, 2 on usage
errors; default output is ``path:line:col: RULE message``,
``--format sarif`` emits SARIF 2.1.0 (optionally into ``--output FILE``)
for CI annotation.  ``--inventory`` dumps the per-class declared-state
inventory as JSON instead of running the rules.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from ..lint.sarif import sarif_report
from .checker import analyze_paths, build_tree_inventory
from .inventory import inventory_as_dict
from .rules import STATE_RULES


def _list_rules() -> str:
    lines = ["simstate rules:"]
    for rule in STATE_RULES:
        lines.append(f"  {rule.code}  {rule.name}")
        lines.append(f"         {rule.description}")
    lines.append("")
    lines.append(
        "suppress a single line with `# simstate: ignore[ST001]` "
        "(comma-separate codes; bare `# simstate: ignore` silences all)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.state",
        description=(
            "simstate: mutable-state inventory static analysis "
            "(snapshot completeness, fork/restore safety, RNG streams, "
            "ownership of aliased containers)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table, then exit",
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="dump the per-class declared-state inventory as JSON",
    )
    parser.add_argument(
        "--format",
        choices=("text", "sarif"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    if args.inventory:
        inventory = build_tree_inventory(args.paths)
        text = json.dumps(inventory_as_dict(inventory), indent=2)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 0

    diagnostics = analyze_paths(args.paths)

    if args.format == "sarif":
        text = json.dumps(
            sarif_report(diagnostics, STATE_RULES, "simstate"), indent=2
        )
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
        else:
            print(text)
        return 1 if diagnostics else 0

    body = "\n".join(diag.format() for diag in diagnostics)
    if args.output:
        Path(args.output).write_text(
            body + ("\n" if body else ""), encoding="utf-8"
        )
    elif body:
        print(body)
    if not args.quiet:
        total = len(diagnostics)
        if total:
            print(
                f"simstate: {total} finding(s) "
                f"({len(STATE_RULES)} rules)"
            )
        else:
            print(f"simstate: clean -- {len(STATE_RULES)} rules")
    return 1 if diagnostics else 0
