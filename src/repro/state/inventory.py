"""Per-class mutable-state inventory, built from the AST.

This is the data layer of simstate: one walk over every in-scope module
produces a :class:`StateInventory` describing *where state lives* --
which attributes each class declares in ``__init__`` (or as dataclass
fields / ``__slots__``), which methods write attributes outside the
constructor, which module- and class-level bindings are mutable, where
RNGs are constructed, and which constructor parameters alias mutable
containers owned elsewhere.

The ST rules (:mod:`repro.state.rules`) are thin filters over this
inventory; the runtime snapshot layer (:mod:`repro.state.snapshot`)
consumes the same inventory to cross-check that a live system's
``__dict__`` matches what the static analysis promised.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Methods that count as "construction time" for declaration purposes.
INIT_METHODS: FrozenSet[str] = frozenset({"__init__", "__post_init__"})

#: Terminal names of mutable-container annotations (ST005).
MUTABLE_CONTAINER_NAMES: FrozenSet[str] = frozenset(
    {
        "list", "dict", "set", "deque", "bytearray",
        "List", "Dict", "Set", "Deque", "DefaultDict", "defaultdict",
        "Counter", "OrderedDict",
        "MutableMapping", "MutableSequence", "MutableSet",
    }
)

#: Call targets that produce mutable module-level state (ST003).
MUTABLE_FACTORY_CALLS: FrozenSet[str] = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.deque", "collections.defaultdict",
        "collections.Counter", "collections.OrderedDict",
        "deque", "defaultdict", "Counter", "OrderedDict",
        "itertools.count", "count",
    }
)

#: Call targets whose result must never be stored on a component (ST002).
UNSNAPSHOTTABLE_CALL_PREFIXES: Tuple[str, ...] = (
    "threading.", "multiprocessing.", "_thread.", "socket.",
    "subprocess.", "concurrent.futures.",
)
UNSNAPSHOTTABLE_CALLS: FrozenSet[str] = frozenset({"open", "io.open"})

#: RNG constructors that must only appear in sanctioned modules (ST004).
RNG_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"random.Random", "random.SystemRandom"}
)
RNG_CLASS_NAME = "DeterministicRNG"


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.X = ...`` site outside construction time."""

    attr: str
    method: str
    line: int
    col: int


@dataclass(frozen=True)
class ValueSite:
    """An attribute assignment whose *value* matters (ST002)."""

    attr: str
    kind: str
    method: str
    line: int
    col: int


@dataclass(frozen=True)
class AliasSite:
    """``self.X = <param>`` where the param is a mutable container."""

    attr: str
    param: str
    line: int
    col: int


@dataclass(frozen=True)
class MutableBinding:
    """A module- or class-level binding of mutable state (ST003)."""

    name: str
    kind: str
    line: int
    col: int
    scope: str  # "" for module level, else the class name


@dataclass
class ClassInventory:
    """Everything simstate knows about one class's mutable state."""

    module_path: str
    name: str
    line: int
    col: int
    bases: Tuple[str, ...] = ()
    is_dataclass: bool = False
    #: attr -> line of its first construction-time declaration.
    declared: Dict[str, int] = field(default_factory=dict)
    #: ``self.X`` writes outside ``__init__``/``__post_init__``.
    outside_writes: List[AttrWrite] = field(default_factory=list)
    #: ``setattr(self, <non-literal>, ...)`` sites.
    dynamic_writes: List[AttrWrite] = field(default_factory=list)
    #: suspicious values assigned to attributes (ST002).
    value_sites: List[ValueSite] = field(default_factory=list)
    #: mutable-container params stored as attributes (ST005).
    alias_sites: List[AliasSite] = field(default_factory=list)
    #: attrs this class declares it merely borrows (owner elsewhere).
    borrowed: Tuple[str, ...] = ()
    #: attrs this class declares it owns even though they arrived aliased.
    owned: Tuple[str, ...] = ()


@dataclass
class ModuleInventory:
    """Per-module findings raw material."""

    module_path: str
    classes: Dict[str, ClassInventory] = field(default_factory=dict)
    module_mutable: List[MutableBinding] = field(default_factory=list)
    global_stmts: List[Tuple[str, int, int]] = field(default_factory=list)
    #: RNG constructor call sites: (callee, line, col).
    rng_calls: List[Tuple[str, int, int]] = field(default_factory=list)


class StateInventory:
    """The whole-tree inventory the ST rules and the snapshotter share."""

    def __init__(self, modules: Dict[str, ModuleInventory]) -> None:
        self.modules = modules
        self._by_name: Dict[str, List[ClassInventory]] = {}
        for mod in modules.values():
            for ci in mod.classes.values():
                self._by_name.setdefault(ci.name, []).append(ci)

    def classes_named(self, name: str) -> List[ClassInventory]:
        return self._by_name.get(name, [])

    def declared_attrs(self, ci: ClassInventory) -> FrozenSet[str]:
        """Attrs declared by ``ci`` or any base resolvable in the tree.

        Bases are matched by terminal name; unknown bases (ABCs, stdlib
        classes) contribute nothing, which is accurate for this tree --
        external bases do not assign model attributes.
        """
        out = set(ci.declared)
        seen = {ci.name}
        frontier = list(ci.bases)
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            for parent in self.classes_named(base):
                out.update(parent.declared)
                frontier.extend(parent.bases)
        return frozenset(out)


# ---------------------------------------------------------------------------
# AST helpers


def _alias_map(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = a.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports resolve inside the tree
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(aliases.get(node.id, node.id))
        return ".".join(reversed(parts))
    return None


def _terminal(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def _is_constant(node: ast.AST) -> bool:
    """Literal-constant check: immutable scalars and containers of them."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_constant(e) for e in node.elts)
    if isinstance(node, (ast.List, ast.Set)):
        return all(_is_constant(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            k is not None and _is_constant(k) and _is_constant(v)
            for k, v in zip(node.keys, node.values)
        )
    if isinstance(node, ast.UnaryOp):
        return _is_constant(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_constant(node.left) and _is_constant(node.right)
    return False


def _mutable_kind(
    value: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """The mutable-state kind of a bound value, or None if harmless."""
    if isinstance(value, ast.List):
        return "list literal"
    if isinstance(value, ast.Dict):
        return "dict literal"
    if isinstance(value, ast.Set):
        return "set literal"
    if isinstance(value, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func, aliases)
        if dotted in MUTABLE_FACTORY_CALLS:
            return f"{dotted}() instance"
    return None


def _is_constant_table(name: str, value: ast.AST) -> bool:
    """ALL_CAPS literal tables are read-only by convention.

    A module-level ``TIMINGS = {...}`` of constants is a lookup table,
    not state: nothing writes it, fork/restore cannot skew it.  Only
    literal contents qualify -- a ``count()`` or comprehension is
    stateful/derived and stays flagged regardless of naming.  Dunder
    metadata (``__all__`` and friends) is interpreter-facing, not
    simulation state, and is exempt on the same read-only grounds.
    """
    if name.startswith("__") and name.endswith("__"):
        return True
    if name != name.upper():
        return False
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return _is_constant(value)
    return False


def _suspicious_value(
    value: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """ST002 classification of an assigned value, or None."""
    if isinstance(value, ast.Lambda):
        return "a lambda (unsnapshottable callable state)"
    if isinstance(value, ast.GeneratorExp):
        return "a generator expression (unsnapshottable iterator state)"
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func, aliases)
        if dotted is None:
            return None
        if dotted in UNSNAPSHOTTABLE_CALLS:
            return "an open file handle"
        if dotted.startswith(UNSNAPSHOTTABLE_CALL_PREFIXES):
            return f"a {dotted}() object (thread/lock/socket state)"
    return None


def _is_container_annotation(node: Optional[ast.AST]) -> bool:
    """Is the *outermost* annotated type a mutable container?

    ``List[int]`` yes, ``Optional[Dict[str, int]]`` yes (one of the
    union arms is), ``Callable[[List[int]], None]`` no -- the container
    is buried inside a callable signature, the parameter itself is not
    a container.
    """
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in MUTABLE_CONTAINER_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in MUTABLE_CONTAINER_NAMES
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = (
            head.id if isinstance(head, ast.Name)
            else head.attr if isinstance(head, ast.Attribute)
            else ""
        )
        if head_name in MUTABLE_CONTAINER_NAMES:
            return True
        if head_name in ("Optional", "Union"):
            arms = (
                node.slice.elts
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            return any(_is_container_annotation(arm) for arm in arms)
        return False
    if isinstance(node, ast.BinOp):  # PEP 604: X | None
        return _is_container_annotation(node.left) or \
            _is_container_annotation(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
        return head in MUTABLE_CONTAINER_NAMES
    return False


def _str_tuple(value: ast.AST) -> Tuple[str, ...]:
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return tuple(
            e.value
            for e in value.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        )
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,)
    return ()


def _self_attr_targets(
    node: ast.AST, self_name: str
) -> List[Tuple[str, int, int]]:
    """``self.X`` store targets of an assignment statement."""
    out: List[Tuple[str, int, int]] = []

    def visit_target(t: ast.AST) -> None:
        if isinstance(t, ast.Attribute) and isinstance(t.value, ast.Name) \
                and t.value.id == self_name:
            out.append((t.attr, t.lineno, t.col_offset))
        elif isinstance(t, (ast.Tuple, ast.List)):
            for e in t.elts:
                visit_target(e)
        elif isinstance(t, ast.Starred):
            visit_target(t.value)

    if isinstance(node, ast.Assign):
        for t in node.targets:
            visit_target(t)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        visit_target(node.target)
    return out


def _decorator_names(node: ast.AST, aliases: Dict[str, str]) -> List[str]:
    names = []
    for dec in getattr(node, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target, aliases)
        if dotted:
            names.append(dotted)
    return names


# ---------------------------------------------------------------------------
# Per-class walk


def _scan_class(
    node: ast.ClassDef,
    module_path: str,
    aliases: Dict[str, str],
    module_mutable: List[MutableBinding],
) -> ClassInventory:
    decorators = _decorator_names(node, aliases)
    ci = ClassInventory(
        module_path=module_path,
        name=node.name,
        line=node.lineno,
        col=node.col_offset,
        bases=tuple(
            _terminal(_dotted(b, aliases)) for b in node.bases
        ),
        is_dataclass=any(
            _terminal(d) == "dataclass" for d in decorators
        ),
    )

    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            name = stmt.target.id
            ci.declared.setdefault(name, stmt.lineno)
            if name == "_snapshot_borrowed_" and stmt.value is not None:
                ci.borrowed = _str_tuple(stmt.value)
            elif name == "_snapshot_owns_" and stmt.value is not None:
                ci.owned = _str_tuple(stmt.value)
            elif stmt.value is not None and not ci.is_dataclass:
                kind = _mutable_kind(stmt.value, aliases)
                if kind and not _is_constant_table(name, stmt.value):
                    module_mutable.append(
                        MutableBinding(
                            name, kind, stmt.lineno, stmt.col_offset,
                            scope=node.name,
                        )
                    )
        elif isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if not isinstance(t, ast.Name):
                    continue
                name = t.id
                if name == "__slots__":
                    for attr in _str_tuple(stmt.value):
                        ci.declared.setdefault(attr, stmt.lineno)
                    continue
                ci.declared.setdefault(name, stmt.lineno)
                if name == "_snapshot_borrowed_":
                    ci.borrowed = _str_tuple(stmt.value)
                    continue
                if name == "_snapshot_owns_":
                    ci.owned = _str_tuple(stmt.value)
                    continue
                kind = _mutable_kind(stmt.value, aliases)
                if kind and not _is_constant_table(name, stmt.value):
                    module_mutable.append(
                        MutableBinding(
                            name, kind, stmt.lineno, stmt.col_offset,
                            scope=node.name,
                        )
                    )
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            _scan_method(stmt, ci, aliases)
    return ci


def _scan_method(
    method: ast.FunctionDef, ci: ClassInventory, aliases: Dict[str, str]
) -> None:
    decorators = {_terminal(d) for d in _decorator_names(method, aliases)}
    if "staticmethod" in decorators or "classmethod" in decorators:
        return
    args = method.args.posonlyargs + method.args.args
    if not args:
        return
    self_name = args[0].arg
    is_init = method.name in INIT_METHODS
    container_params = {
        a.arg for a in args[1:] if _is_container_annotation(a.annotation)
    }

    for node in ast.walk(method):
        for attr, line, col in _self_attr_targets(node, self_name):
            if is_init:
                ci.declared.setdefault(attr, line)
            else:
                ci.outside_writes.append(
                    AttrWrite(attr, method.name, line, col)
                )
        if isinstance(node, (ast.Assign, ast.AnnAssign)) and \
                node.value is not None:
            targets = _self_attr_targets(node, self_name)
            if targets:
                kind = _suspicious_value(node.value, aliases)
                if kind is not None:
                    attr, line, col = targets[0]
                    ci.value_sites.append(
                        ValueSite(attr, kind, method.name, line, col)
                    )
                if is_init and isinstance(node.value, ast.Name):
                    param = node.value.id
                    if param in container_params:
                        attr, line, col = targets[0]
                        ci.alias_sites.append(
                            AliasSite(attr, param, line, col)
                        )
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func, aliases)
            if dotted == "setattr" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id == self_name:
                    key = node.args[1] if len(node.args) > 1 else None
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        if is_init:
                            ci.declared.setdefault(key.value, node.lineno)
                        else:
                            ci.outside_writes.append(
                                AttrWrite(
                                    key.value, method.name,
                                    node.lineno, node.col_offset,
                                )
                            )
                    else:
                        ci.dynamic_writes.append(
                            AttrWrite(
                                "<dynamic>", method.name,
                                node.lineno, node.col_offset,
                            )
                        )
            elif dotted == "object.__setattr__" and len(node.args) >= 2:
                first, key = node.args[0], node.args[1]
                if isinstance(first, ast.Name) and first.id == self_name \
                        and isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    if is_init:
                        ci.declared.setdefault(key.value, node.lineno)
                    else:
                        ci.outside_writes.append(
                            AttrWrite(
                                key.value, method.name,
                                node.lineno, node.col_offset,
                            )
                        )


# ---------------------------------------------------------------------------
# Per-module walk


def scan_module(module_path: str, tree: ast.Module) -> ModuleInventory:
    """Build the inventory for one parsed module."""
    aliases = _alias_map(tree)
    mod = ModuleInventory(module_path=module_path)

    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if not isinstance(t, ast.Name):
                    continue
                kind = _mutable_kind(stmt.value, aliases)
                if kind and not _is_constant_table(t.id, stmt.value):
                    mod.module_mutable.append(
                        MutableBinding(
                            t.id, kind, stmt.lineno, stmt.col_offset,
                            scope="",
                        )
                    )
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None \
                and isinstance(stmt.target, ast.Name):
            kind = _mutable_kind(stmt.value, aliases)
            if kind and not _is_constant_table(stmt.target.id, stmt.value):
                mod.module_mutable.append(
                    MutableBinding(
                        stmt.target.id, kind, stmt.lineno,
                        stmt.col_offset, scope="",
                    )
                )

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            ci = _scan_class(node, module_path, aliases, mod.module_mutable)
            mod.classes[ci.name] = ci
        elif isinstance(node, ast.Global):
            for name in node.names:
                mod.global_stmts.append(
                    (name, node.lineno, node.col_offset)
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func, aliases)
            if dotted is None:
                continue
            if dotted in RNG_CONSTRUCTORS or \
                    _terminal(dotted) == RNG_CLASS_NAME or \
                    dotted.startswith("numpy.random."):
                mod.rng_calls.append(
                    (dotted, node.lineno, node.col_offset)
                )
    return mod


def build_inventory(
    modules: Sequence[Tuple[str, ast.Module]]
) -> StateInventory:
    """Inventory for ``(module_path, tree)`` pairs, one shared namespace."""
    out: Dict[str, ModuleInventory] = {}
    for module_path, tree in modules:
        out[module_path] = scan_module(module_path, tree)
    return StateInventory(out)


def inventory_as_dict(inv: StateInventory) -> Dict[str, object]:
    """JSON-safe dump of the inventory (CLI ``--inventory``)."""
    out: Dict[str, object] = {}
    for module_path in sorted(inv.modules):
        mod = inv.modules[module_path]
        classes = {}
        for name in sorted(mod.classes):
            ci = mod.classes[name]
            classes[name] = {
                "bases": list(ci.bases),
                "declared": sorted(inv.declared_attrs(ci)),
                "borrowed": list(ci.borrowed),
                "owned": list(ci.owned),
                "dataclass": ci.is_dataclass,
            }
        if classes:
            out[module_path] = classes
    return out
