"""simstate orchestration: parse, build the inventory, run ST rules.

Reuses simlint's :class:`~repro.lint.checker.Diagnostic` and suppression
machinery (``# simstate: ignore[ST001]``; bare ``ignore`` silences the
line) but, like simflow, analyses the *whole tree at once* -- ST001
needs cross-module inheritance to resolve which base declared an
attribute.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..lint.checker import (
    Diagnostic,
    is_suppressed,
    iter_python_files,
    module_path_of,
    suppressed_lines,
)
from .allowlist import is_allowlisted
from .inventory import StateInventory, build_inventory
from .rules import STATE_RULES

#: simstate analyses the packages whose objects live inside a running
#: simulation and therefore inside a snapshot.  Analysis/plotting/CLI
#: layers hold no simulated state and are out of scope by construction.
STATE_SCOPE_PREFIXES: Tuple[str, ...] = (
    "repro/sim/",
    "repro/bridge/",
    "repro/ndp/",
    "repro/runtime/",
    "repro/balance/",
    "repro/links/",
    "repro/dram/",
    "repro/messages/",
)


def in_state_scope(module_path: str) -> bool:
    return module_path.startswith(STATE_SCOPE_PREFIXES)


def analyze_sources(
    modules: Sequence[Tuple[Union[str, Path], str, str]]
) -> List[Diagnostic]:
    """Analyse ``(path, module_path, source)`` triples as one tree.

    Out-of-scope modules are ignored; modules that fail to parse yield
    an ST000 diagnostic and are dropped from the inventory (the rules
    then run on whatever parsed).
    """
    diagnostics: List[Diagnostic] = []
    parsed: List[Tuple[str, ast.Module]] = []
    path_of: Dict[str, str] = {}
    suppress_of: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for path, module_path, source in modules:
        if not in_state_scope(module_path):
            continue
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule="ST000",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        parsed.append((module_path, tree))
        path_of[module_path] = str(path)
        suppress_of[module_path] = suppressed_lines(source, tool="simstate")

    inventory = build_inventory(sorted(parsed, key=lambda mt: mt[0]))
    for rule in STATE_RULES:
        for module_path, line, col, message in rule.check(inventory):
            if is_allowlisted(rule.code, module_path):
                continue
            suppressed = suppress_of.get(module_path, {})
            if is_suppressed(suppressed, line, rule.code):
                continue
            diagnostics.append(
                Diagnostic(
                    path=path_of.get(module_path, module_path),
                    line=line,
                    col=col,
                    rule=rule.code,
                    message=message,
                )
            )
    diagnostics.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return diagnostics


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    module_path_override: Optional[Dict[str, str]] = None,
) -> List[Diagnostic]:
    """Analyse every .py file under ``paths`` as one state tree."""
    triples: List[Tuple[Union[str, Path], str, str]] = []
    for path in iter_python_files(paths):
        module_path = (module_path_override or {}).get(
            str(path), module_path_of(path)
        )
        triples.append(
            (path, module_path, path.read_text(encoding="utf-8"))
        )
    return analyze_sources(triples)


def build_tree_inventory(
    paths: Sequence[Union[str, Path]],
    module_path_override: Optional[Dict[str, str]] = None,
) -> StateInventory:
    """The raw inventory for ``paths`` (CLI ``--inventory``, snapshot
    cross-checks)."""
    parsed: List[Tuple[str, ast.Module]] = []
    for path in iter_python_files(paths):
        module_path = (module_path_override or {}).get(
            str(path), module_path_of(path)
        )
        if not in_state_scope(module_path):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        parsed.append((module_path, tree))
    return build_inventory(sorted(parsed, key=lambda mt: mt[0]))
