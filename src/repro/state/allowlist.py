"""Sanctioned exceptions to the simstate rules.

Same contract as simlint's allowlist: every entry names one
(rule, module) pair and must carry a written justification -- the
checker refuses empty ones at import time.  Prefer a per-line
``# simstate: ignore[RULE]`` for one-off sites; the allowlist is for
modules whose *purpose* is the exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .rules import STATE_RULE_CODES


@dataclass(frozen=True)
class AllowlistEntry:
    """One sanctioned (rule, module) pair."""

    rule: str
    #: Module path relative to the package root, e.g. "repro/sim/rng.py".
    module: str
    justification: str


ALLOWLIST: Tuple[AllowlistEntry, ...] = (
    AllowlistEntry(
        rule="ST004",
        module="repro/sim/rng.py",
        justification=(
            "the named-stream facade itself: DeterministicRNG wraps "
            "random.Random behind sha256-derived (seed, name) streams "
            "and substream() necessarily constructs new instances; "
            "snapshot/restore captures them via getstate()/setstate()"
        ),
    ),
    AllowlistEntry(
        rule="ST004",
        module="repro/runtime/system.py",
        justification=(
            "the system root constructs the one root DeterministicRNG "
            "stream per run (seeded from SystemConfig.seed); every "
            "other consumer derives a substream from it"
        ),
    ),
    AllowlistEntry(
        rule="ST003",
        module="repro/runtime/task.py",
        justification=(
            "_task_ids is a process-global monotonic itertools.count "
            "used only for relative ordering (reserved_id comparisons "
            "in NDPUnit._next_task); a restore that resumes the count "
            "at a shifted base preserves every comparison, so the "
            "counter is snapshot-safe without being captured.  The "
            "snapshot manifest records task ids symbolically, never "
            "the counter position"
        ),
    ),
    AllowlistEntry(
        rule="ST003",
        module="repro/messages/types.py",
        justification=(
            "_message_ids is a process-global monotonic itertools.count "
            "used only for identity (auditor ledger keys, wire-cache "
            "tags); ids never feed control flow or arithmetic, so a "
            "shifted base after restore is behaviour-preserving and "
            "the counter needs no capture"
        ),
    ),
)


def _validate() -> None:
    seen = set()
    for entry in ALLOWLIST:
        if entry.rule not in STATE_RULE_CODES:
            raise ValueError(
                f"allowlist names unknown rule {entry.rule!r}"
            )
        if not entry.justification.strip():
            raise ValueError(
                f"allowlist entry ({entry.rule}, {entry.module}) has no "
                f"justification -- every sanctioned site must say why"
            )
        key = (entry.rule, entry.module)
        if key in seen:
            raise ValueError(f"duplicate allowlist entry {key}")
        seen.add(key)


_validate()


def is_allowlisted(rule: str, module_path: str) -> bool:
    """True if ``rule`` is sanctioned for the module at ``module_path``."""
    return any(
        entry.rule == rule and entry.module == module_path
        for entry in ALLOWLIST
    )
