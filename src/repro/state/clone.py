"""Closure-aware deep cloning -- the mechanism under snapshot/restore.

``copy.deepcopy`` already does almost everything a simulator snapshot
needs: one shared memo clones the entire object graph (components, the
event heap, RNG streams, auditor counters) while preserving aliasing --
two references to one deque stay two references to one *cloned* deque,
and a bound method's receiver is cloned through the same memo, so queue
callbacks land on the cloned components automatically.

The one gap is functions: stdlib deepcopy treats every function as
atomic, but scheduled callbacks are frequently closures
(``lambda: self._complete(task, duration)``) whose cells point straight
into mutable simulation state.  Sharing those cells between the live
system and its snapshot would let the live run mutate the "frozen"
copy.  :func:`deep_clone` therefore patches the deepcopy dispatch table
*for the duration of one clone* with a function copier that rebuilds
closure cells (and deep-copies default arguments), registered in the
memo before recursing so self-referential closures terminate.

Unsnapshottable leaves (open files, generators, locks, sockets) make
``deepcopy`` raise ``TypeError``; we convert that into
:class:`SnapshotError` with the offending object named.  The static
ST002 rule exists precisely so this error never fires on the shipped
model tree.
"""

from __future__ import annotations

import copy
import types
from typing import Any, Dict

__all__ = ["SnapshotError", "deep_clone"]


class SnapshotError(RuntimeError):
    """A snapshot or restore could not be taken/applied."""


#: Default values that never need a cloned function: immutable scalars.
_ATOMIC_DEFAULTS = (type(None), bool, int, float, str, bytes, frozenset)


def _needs_clone(fn: types.FunctionType) -> bool:
    """Closures always; otherwise only when defaults can hold state."""
    if fn.__closure__:
        return True
    defaults = list(fn.__defaults__ or ())
    defaults.extend((fn.__kwdefaults__ or {}).values())
    return any(
        not isinstance(value, _ATOMIC_DEFAULTS) for value in defaults
    )


def _clone_function(
    fn: types.FunctionType, memo: Dict[int, Any]
) -> types.FunctionType:
    hit = memo.get(id(fn))
    if hit is not None:
        return hit  # type: ignore[no-any-return]
    if not _needs_clone(fn):
        # Plain module-level function: stateless, safe to share.
        memo[id(fn)] = fn
        return fn
    cells = tuple(types.CellType() for _ in (fn.__closure__ or ()))
    clone = types.FunctionType(
        fn.__code__, fn.__globals__, fn.__name__, None, cells or None
    )
    clone.__qualname__ = fn.__qualname__
    # Register before recursing: a cell may point back at the function.
    memo[id(fn)] = clone
    memo.setdefault(id(memo), []).append(fn)  # keep original alive
    if fn.__defaults__ is not None:
        clone.__defaults__ = copy.deepcopy(fn.__defaults__, memo)
    if fn.__kwdefaults__ is not None:
        clone.__kwdefaults__ = copy.deepcopy(fn.__kwdefaults__, memo)
    if fn.__dict__:
        clone.__dict__.update(copy.deepcopy(fn.__dict__, memo))
    for cell, new_cell in zip(fn.__closure__ or (), cells):
        try:
            contents = cell.cell_contents
        except ValueError:
            continue  # genuinely empty cell stays empty
        new_cell.cell_contents = copy.deepcopy(contents, memo)
    return clone


def deep_clone(obj: Any, memo: "Dict[int, Any] | None" = None) -> Any:
    """Deep-copy ``obj`` with closure cells cloned, not shared.

    The dispatch-table patch is process-global for the duration of the
    call; simulation runs are single-threaded (the exec layer
    parallelises across *processes*), so this cannot race.
    """
    dispatch = copy._deepcopy_dispatch  # type: ignore[attr-defined]
    previous = dispatch.get(types.FunctionType)
    dispatch[types.FunctionType] = _clone_function
    try:
        return copy.deepcopy(obj, memo if memo is not None else {})
    except TypeError as exc:
        raise SnapshotError(
            f"object graph holds unsnapshottable state: {exc} -- "
            f"the simstate ST002 rule flags these statically"
        ) from exc
    finally:
        if previous is None:
            del dispatch[types.FunctionType]
        else:
            dispatch[types.FunctionType] = previous
