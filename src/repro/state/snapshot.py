"""Deterministic snapshot/restore of a live simulation.

The snapshot contract (docs/ARCHITECTURE.md, "State inventory &
checkpointing"):

* :func:`snapshot` freezes a running :class:`~repro.runtime.system.NDPSystem`
  (and, when given, its attached application) into a
  :class:`SystemSnapshot`: one closure-aware deep clone of the whole
  object graph -- event queue, component attributes, RNG streams,
  sanitizer and auditor counters, tracker state.  The live system is
  untouched and keeps running ("capture and continue").
* :func:`restore` / :meth:`SystemSnapshot.fork` produce an *independent*
  live system from the frozen graph.  A snapshot can be forked any
  number of times; forks never share mutable state with each other or
  with the blob.
* The oracle is bit-identity: running a forked system to completion
  yields exactly the makespan, event count and metrics of the
  uninterrupted run.  ``tests/test_snapshot.py`` asserts this across
  the full app x design matrix, plain and sanitized.

:meth:`SystemSnapshot.manifest` re-encodes the snapshot symbolically --
every queued callback as ``(owner id, method name)`` against a component
registry derived from the same attribute walk the static inventory
models, every RNG stream by name/seed digest -- so two snapshots of
identical states produce identical manifests even though the raw blobs
are object graphs.

Sharded runs snapshot at window barriers: :class:`BarrierSnapshotter`
hooks :class:`~repro.sim.sharded.ShardedSimulator`'s barrier loop,
capturing per-shard runtime blobs plus the cross-shard ledger into a
:class:`ShardedSnapshot`; :func:`resume_app_sharded` replays the
remaining windows to the identical merged result.

Snapshots are in-memory objects, deliberately: the format version
(:data:`SNAPSHOT_FORMAT_VERSION`) is carried in the meta block so a
future serialized format can reject stale blobs.
"""

from __future__ import annotations

import functools
import hashlib
import sys
import types
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .clone import SnapshotError, deep_clone
from .inventory import StateInventory

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "BarrierSnapshotter",
    "ShardedSnapshot",
    "SnapshotError",
    "SystemSnapshot",
    "component_registry",
    "resume_app_sharded",
    "restore",
    "run_app_with_snapshot",
    "snapshot",
    "verify_inventory",
]

SNAPSHOT_FORMAT_VERSION = 1


def _is_model_object(obj: Any) -> bool:
    """Objects owned by the simulation tree (never stdlib containers)."""
    if isinstance(obj, (type, types.ModuleType, types.FunctionType)):
        return False
    return type(obj).__module__.startswith("repro.")


def _attr_names(obj: Any) -> List[str]:
    """Instance attribute names: ``__dict__`` keys plus filled slots."""
    names = list(getattr(obj, "__dict__", ()) or ())
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()) or ():
            if slot not in ("__dict__", "__weakref__") and hasattr(obj, slot):
                names.append(slot)
    seen = set()
    out = []
    for name in names:
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out


def component_registry(root: Any, root_id: str = "system") -> Dict[str, Any]:
    """Deterministic owner-id -> object map over the model graph.

    Depth-first over instance attributes in sorted order, descending
    into lists/tuples by index and dicts by sorted key, registering
    every ``repro.*`` object under a stable path-like id
    (``system.units[3].sketch``).  The walk is a pure function of the
    object graph, so two identical systems produce identical
    registries -- the manifest and the queue re-encoding build on this.
    """
    registry: Dict[str, Any] = {}
    seen: Dict[int, str] = {}

    def visit(obj: Any, path: str) -> None:
        if id(obj) in seen:
            return
        seen[id(obj)] = path
        registry[path] = obj
        for name in sorted(_attr_names(obj)):
            try:
                value = getattr(obj, name)
            except AttributeError:  # pragma: no cover - slot race
                continue
            descend(value, f"{path}.{name}")

    def descend(value: Any, path: str) -> None:
        if _is_model_object(value):
            visit(value, path)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                if _is_model_object(item):
                    visit(item, f"{path}[{i}]")
        elif isinstance(value, dict):
            for key in sorted(value, key=repr):
                item = value[key]
                if _is_model_object(item):
                    visit(item, f"{path}[{key!r}]")

    visit(root, root_id)
    return registry


def _describe_callback(payload: Any, owner_of: Dict[int, str]) -> str:
    """Symbolic (owner-id, method-name) encoding of one queue payload."""
    from ..sim.engine import Event

    if type(payload) is Event:
        inner = payload.callback
        return f"event:{_describe_callback(inner, owner_of)}"
    if isinstance(payload, types.MethodType):
        owner = owner_of.get(
            id(payload.__self__), type(payload.__self__).__name__
        )
        return f"{owner}.{payload.__func__.__name__}"
    if isinstance(payload, functools.partial):
        return f"partial:{_describe_callback(payload.func, owner_of)}"
    if isinstance(payload, types.FunctionType):
        owner = ""
        for cell in payload.__closure__ or ():
            try:
                contents = cell.cell_contents
            except ValueError:
                continue
            path = owner_of.get(id(contents))
            if path is not None:
                owner = f"@{path}"
                break
        return f"closure:{payload.__qualname__}{owner}"
    return f"callable:{type(payload).__name__}"


def _deep_size(obj: Any) -> int:
    """Approximate retained bytes of an object graph (bench metric)."""
    seen = set()
    total = 0
    stack = [obj]
    while stack:
        item = stack.pop()
        if id(item) in seen:
            continue
        seen.add(id(item))
        if isinstance(item, (type, types.ModuleType)):
            continue
        try:
            total += sys.getsizeof(item)
        except TypeError:  # pragma: no cover - exotic object
            continue
        if isinstance(item, types.FunctionType):
            # Count closure cells and defaults, never __globals__.
            for cell in item.__closure__ or ():
                try:
                    stack.append(cell.cell_contents)
                except ValueError:
                    pass
            stack.extend(item.__defaults__ or ())
            continue
        if isinstance(item, types.MethodType):
            stack.append(item.__self__)
            continue
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        d = getattr(item, "__dict__", None)
        if isinstance(d, dict):
            stack.append(d)
        for name in _attr_names(item):
            if not isinstance(d, dict) or name not in d:
                try:
                    stack.append(getattr(item, name))
                except AttributeError:
                    pass
    return total


# ---------------------------------------------------------------------------
# serial snapshots


@dataclass
class SystemSnapshot:
    """A frozen, re-forkable image of one running system (+ app).

    ``fork()`` clones the frozen graph again, so the blob itself is
    never handed out -- every fork is independent of the blob and of
    every other fork.
    """

    meta: Dict[str, Any]
    _system: Any = field(repr=False)
    _app: Any = field(default=None, repr=False)

    def fork(self) -> Tuple[Any, Any]:
        """An independent live (system, app) pair from the frozen image."""
        return deep_clone((self._system, self._app))

    def manifest(self) -> Dict[str, Any]:
        """Deterministic symbolic encoding of the frozen state.

        Queue entries become ``(time, seq, owner-id.method)`` strings,
        components become their sorted attribute inventories, RNG
        streams their (name, seed, state digest).  Two snapshots of
        identical simulation states yield identical manifests.
        """
        system = self._system
        registry = component_registry(system)
        owner_of = {id(obj): path for path, obj in registry.items()}
        sim = system.sim
        queue = [
            [time, seq, _describe_callback(payload, owner_of)]
            for time, seq, payload in sim.queue_entries()
        ]
        components = {
            path: {
                "class": type(obj).__name__,
                "attrs": sorted(_attr_names(obj)),
            }
            for path, obj in registry.items()
        }
        rng_streams = {}
        from ..sim.rng import DeterministicRNG

        for path, obj in registry.items():
            if isinstance(obj, DeterministicRNG):
                rng_streams[path] = {
                    "name": obj.name,
                    "seed": obj.seed,
                    "digest": obj.state_digest(),
                }
        manifest: Dict[str, Any] = {
            "version": self.meta["version"],
            "cycle": self.meta["cycle"],
            "engine": {
                "now": sim.now,
                "seq": sim._seq,
                "events_processed": sim.events_processed,
                "pending_events": sim.pending_events,
                "cancel_purged": sim.cancel_purged,
                "scheduled_total": sim.scheduled_total,
                "sanitize": sim.sanitize,
            },
            "queue": queue,
            "components": components,
            "rng": rng_streams,
            "tracker": {
                "epoch": system.tracker.epoch,
                "created": system.tracker.total_created,
                "completed": system.tracker.total_completed,
                "finished": system.tracker.finished,
            },
        }
        if getattr(system, "auditor", None) is not None:
            auditor = system.auditor
            manifest["auditor"] = {
                "created_by_type": dict(
                    sorted(auditor.created_by_type.items())
                ),
                "delivered_by_type": dict(
                    sorted(auditor.delivered_by_type.items())
                ),
                "dropped_by_type": dict(
                    sorted(auditor.dropped_by_type.items())
                ),
            }
        return manifest

    def manifest_digest(self) -> str:
        import json

        blob = json.dumps(self.manifest(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def size_bytes(self) -> int:
        """Approximate retained size of the frozen image."""
        return _deep_size((self._system, self._app))


def snapshot(
    system: Any,
    app: Any = None,
    inventory: Optional[StateInventory] = None,
) -> SystemSnapshot:
    """Freeze a live system (and optionally its app) mid-run.

    The live objects are untouched.  When ``inventory`` is given the
    live attribute sets are first cross-checked against the static
    declaration inventory (:func:`verify_inventory`); a mismatch means
    the analyzer and the runtime disagree about where state lives, and
    the snapshot refuses rather than silently under-capturing.
    """
    if inventory is not None:
        problems = verify_inventory(system, inventory)
        if problems:
            raise SnapshotError(
                "live state disagrees with the static inventory: "
                + "; ".join(problems[:5])
            )
    sim = system.sim
    frozen_system, frozen_app = deep_clone((system, app))
    meta = {
        "version": SNAPSHOT_FORMAT_VERSION,
        "cycle": sim.now,
        "seq": sim._seq,
        "events_processed": sim.events_processed,
        "pending_events": sim.pending_events,
        "sanitize": sim.sanitize,
    }
    return SystemSnapshot(meta=meta, _system=frozen_system, _app=frozen_app)


def restore(snap: SystemSnapshot) -> Tuple[Any, Any]:
    """An independent live (system, app) pair from a snapshot."""
    if snap.meta.get("version") != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format v{snap.meta.get('version')} is not "
            f"v{SNAPSHOT_FORMAT_VERSION}"
        )
    return snap.fork()


def verify_inventory(
    system: Any, inventory: StateInventory
) -> List[str]:
    """Cross-check live ``__dict__`` keys against the static inventory.

    For every registered model object whose class the inventory knows,
    every live instance attribute must be statically declared.
    Instance attributes that *shadow a class-level callable* are
    sanctioned instrumentation (the sanitizer's scheduling wrappers,
    the flow auditor's observation hooks) and are skipped -- they wrap
    behaviour, they do not carry model state of their own.
    """
    known: Dict[str, Any] = {}
    for mod in inventory.modules.values():
        for ci in mod.classes.values():
            known.setdefault(ci.name, ci)
    problems: List[str] = []
    for path, obj in component_registry(system).items():
        ci = known.get(type(obj).__name__)
        if ci is None:
            continue
        declared = inventory.declared_attrs(ci)
        declared = declared | set(ci.borrowed) | set(ci.owned)
        for attr in _attr_names(obj):
            if attr in declared:
                continue
            shadowed = getattr(type(obj), attr, None)
            if callable(shadowed) or isinstance(shadowed, property):
                continue  # instrumentation wrapper over a method
            problems.append(
                f"{path} ({type(obj).__name__}) holds undeclared "
                f"attribute '{attr}'"
            )
    return problems


def run_app_with_snapshot(
    app: Any,
    config: Any,
    snapshot_at: int,
    verify: bool = True,
    inventory: Optional[StateInventory] = None,
) -> Tuple[Any, SystemSnapshot]:
    """``run_app`` twin that snapshots at cycle ``snapshot_at``.

    Runs a fresh system to ``snapshot_at``, freezes it, then *forks the
    snapshot* and runs the fork to completion -- the returned
    ``RunResult`` comes entirely from the restored system, so comparing
    it against a plain ``run_app`` proves snapshot+restore is
    bit-identical to running through.  Returns ``(result, snapshot)``.
    """
    from ..analysis.metrics import collect_metrics
    from ..config import Design
    from ..runtime.runner import RunResult, VerificationError, build_system

    if config.design is Design.H:
        raise SnapshotError(
            "snapshots cover the NDP system model; design H runs on the "
            "host baseline"
        )
    system = build_system(config)
    app.attach(system)
    app.seed_tasks(system)
    system.start()
    system.advance(until=snapshot_at)
    snap = snapshot(system, app, inventory=inventory)
    forked_system, forked_app = snap.fork()
    forked_system.finish()
    if verify and not forked_app.verify():
        raise VerificationError(
            f"{forked_app.name} on design {config.design.value}: "
            "restored run does not match the reference"
        )
    metrics = collect_metrics(forked_system, forked_app.name)
    return (
        RunResult(app=forked_app, system=forked_system, metrics=metrics),
        snap,
    )


# ---------------------------------------------------------------------------
# sharded snapshots


@dataclass
class ShardedSnapshot:
    """A barrier-aligned image of a sharded run.

    Per-shard runtime blobs (each a complete sub-machine: system, app
    replica, boundary port) plus everything the coordinator needs to
    resume the barrier loop: undelivered boundary messages, the last
    reports, the cross-shard conservation ledger, and the window/barrier
    counters.
    """

    version: int
    app: Any
    scale: float
    seed: int
    verify: bool
    config: Any
    plan: Any
    windows: int
    barriers: int
    runtimes: List[Any] = field(repr=False)
    reports: Tuple[Any, ...] = ()
    pending: Tuple[Any, ...] = ()
    exported: Dict[Tuple[int, int], int] = field(default_factory=dict)
    injected: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def fork_runtimes(self) -> List[Any]:
        """Independent live shard runtimes (blob stays re-forkable)."""
        return deep_clone(list(self.runtimes))


class BarrierSnapshotter:
    """Barrier hook capturing one :class:`ShardedSnapshot`.

    Pass as ``barrier_hook`` to
    :func:`~repro.runtime.shards.run_app_sharded`; the run continues
    normally after the capture (capture-and-continue), and the snapshot
    lands in :attr:`snapshot` -- or stays ``None`` when the run finished
    before barrier ``at_barrier``.
    """

    def __init__(
        self,
        at_barrier: int,
        app: Any,
        scale: float,
        seed: int,
        verify: bool,
        config: Any,
        plan: Any,
    ) -> None:
        self.at_barrier = at_barrier
        self._context = (app, scale, seed, verify, config, plan)
        self.snapshot: Optional[ShardedSnapshot] = None

    def __call__(
        self,
        engine: Any,
        transport: Any,
        reports: List[Any],
        pending: List[Any],
    ) -> None:
        if self.snapshot is not None or engine.barriers != self.at_barrier:
            return
        runtimes = getattr(transport, "_runtimes", None)
        if not runtimes:
            raise SnapshotError(
                "barrier snapshots require the inline transport "
                "(parallel=False) -- forked shard workers hold their "
                "state in other processes"
            )
        app, scale, seed, verify, config, plan = self._context
        self.snapshot = ShardedSnapshot(
            version=SNAPSHOT_FORMAT_VERSION,
            app=app, scale=scale, seed=seed, verify=verify,
            config=config, plan=plan,
            windows=engine.windows, barriers=engine.barriers,
            runtimes=deep_clone(list(runtimes)),
            reports=tuple(reports),
            pending=tuple(pending),
            exported=dict(engine.exported),
            injected=dict(engine.injected),
        )


def resume_app_sharded(snap: ShardedSnapshot):
    """Resume a barrier snapshot to completion; the merged RunResult is
    bit-identical to the uninterrupted sharded run."""
    from ..runtime.shards import (
        NDPShardBuilder,
        finish_sharded_run,
    )
    from ..sim.sharded import ShardedSimulator

    if snap.version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"sharded snapshot format v{snap.version} is not "
            f"v{SNAPSHOT_FORMAT_VERSION}"
        )
    builders = [
        NDPShardBuilder(
            app=snap.app, scale=snap.scale, seed=snap.seed,
            config=snap.config, plan=snap.plan, shard_id=shard_id,
            verify=snap.verify,
        )
        for shard_id in range(snap.plan.shards)
    ]
    engine = ShardedSimulator(builders, snap.plan, parallel=False)
    engine.windows = snap.windows
    engine.barriers = snap.barriers
    engine.exported = dict(snap.exported)
    engine.injected = dict(snap.injected)
    result = engine.resume(
        snap.fork_runtimes(), list(snap.reports), list(snap.pending)
    )
    return finish_sharded_run(
        snap.app, snap.config, snap.plan, result,
        scale=snap.scale, seed=snap.seed,
    )
