"""simstate -- mutable-state inventory analysis + snapshot/restore.

simlint (:mod:`repro.lint`) checks per-file determinism invariants and
simflow (:mod:`repro.flow`) checks the message protocol; simstate closes
the loop on *state*: a static inventory proving every byte of mutable
simulation state is enumerable, and a runtime snapshot/restore subsystem
(:mod:`repro.state.snapshot`) verified bit-identical against it.

Static rules (``python -m repro.state src``):

=======  ==============================================================
rule     invariant
=======  ==============================================================
ST001    every attribute written outside ``__init__`` is declared at
         construction time (snapshot completeness)
ST002    no unsnapshottable state on components (file handles,
         threads/locks, generators, lambdas held as attributes)
ST003    no module- or class-level mutable state in simulation
         packages (fork-safety for shard workers, replay-safety)
ST004    all RNG state flows through ``sim/rng.py`` named streams
ST005    mutable containers aliased across components declare a single
         registered owner (``_snapshot_owns_`` / ``_snapshot_borrowed_``)
=======  ==============================================================

Suppress per line with ``# simstate: ignore[ST001]`` (bare ``ignore``
silences the line); module-wide exceptions live in
:mod:`repro.state.allowlist` with mandatory justifications.

Runtime half: :func:`~repro.state.snapshot.snapshot` freezes a live
system (event queue, component attributes, RNG streams, sanitizer and
auditor counters, tracker state) into a re-forkable
:class:`~repro.state.snapshot.SystemSnapshot`;
:func:`~repro.state.snapshot.restore` produces an independent live
system that continues bit-identically to an uninterrupted run.
"""

from .checker import (
    STATE_SCOPE_PREFIXES,
    analyze_paths,
    analyze_sources,
    build_tree_inventory,
)
from .inventory import (
    ClassInventory,
    ModuleInventory,
    StateInventory,
    build_inventory,
    inventory_as_dict,
    scan_module,
)
from .rules import STATE_RULE_CODES, STATE_RULES, StateRule
from .snapshot import (
    ShardedSnapshot,
    SnapshotError,
    SystemSnapshot,
    component_registry,
    restore,
    run_app_with_snapshot,
    snapshot,
)

__all__ = [
    "STATE_RULES",
    "STATE_RULE_CODES",
    "STATE_SCOPE_PREFIXES",
    "ClassInventory",
    "ModuleInventory",
    "ShardedSnapshot",
    "SnapshotError",
    "StateInventory",
    "StateRule",
    "SystemSnapshot",
    "analyze_paths",
    "analyze_sources",
    "build_inventory",
    "build_tree_inventory",
    "component_registry",
    "inventory_as_dict",
    "restore",
    "run_app_with_snapshot",
    "scan_module",
    "snapshot",
]
