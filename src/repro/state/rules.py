"""The simstate rules (ST001-ST005).

Like simflow's rules, these see the whole tree at once -- the inventory
(:mod:`repro.state.inventory`) already did the AST work, so each rule is
a filter that turns inventory facts into findings.  Each rule yields
``(module_path, line, col, message)``; the checker maps findings back
onto files and applies ``# simstate: ignore[STxxx]`` suppressions and
the module allowlist.

=======  =============================================================
rule     invariant
=======  =============================================================
ST001    every attribute written outside ``__init__`` is declared in
         ``__init__`` (snapshot completeness: no dynamic attributes)
ST002    no unsnapshottable state on components: file handles,
         threads/locks/sockets, generators, lambdas held as attributes
ST003    no module- or class-level mutable state in simulation
         packages (fork-safety for shard workers, replay-safety for
         restore)
ST004    all RNG state flows through ``sim/rng.py`` named streams
ST005    mutable containers passed into a constructor and stored must
         declare ownership (``_snapshot_owns_`` / ``_snapshot_borrowed_``)
=======  =============================================================
"""

from __future__ import annotations

from typing import Iterator, Tuple

from .inventory import StateInventory

#: (module_path, line, col, message)
Finding = Tuple[str, int, int, str]


class StateRule:
    """Base class: whole-inventory check yielding findings."""

    code: str = "ST000"
    name: str = "base"
    description: str = ""

    def check(self, inv: StateInventory) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover


class UndeclaredAttribute(StateRule):
    code = "ST001"
    name = "undeclared-attribute"
    description = (
        "an attribute is written outside __init__/__post_init__ but "
        "never declared at construction time -- the snapshot inventory "
        "cannot enumerate it, so restore would silently drop state"
    )

    def check(self, inv: StateInventory) -> Iterator[Finding]:
        for module_path in sorted(inv.modules):
            mod = inv.modules[module_path]
            for name in sorted(mod.classes):
                ci = mod.classes[name]
                declared = inv.declared_attrs(ci)
                for write in ci.outside_writes:
                    if write.attr in declared:
                        continue
                    yield (
                        module_path, write.line, write.col,
                        f"attribute '{write.attr}' is written in "
                        f"{ci.name}.{write.method}() but never declared "
                        f"in __init__ -- declare it at construction "
                        f"time so the snapshot inventory is complete",
                    )
                for write in ci.dynamic_writes:
                    yield (
                        module_path, write.line, write.col,
                        f"setattr() with a dynamic attribute name in "
                        f"{ci.name}.{write.method}() -- the state "
                        f"inventory cannot enumerate dynamic attributes",
                    )


class UnsnapshottableState(StateRule):
    code = "ST002"
    name = "unsnapshottable-state"
    description = (
        "a component stores state that cannot be captured by "
        "snapshot/restore: open file handles, thread/lock/socket "
        "objects, generator expressions, or lambdas held as "
        "attributes (scheduled callbacks are sanctioned via the "
        "engine queue, not as component attributes)"
    )

    def check(self, inv: StateInventory) -> Iterator[Finding]:
        for module_path in sorted(inv.modules):
            mod = inv.modules[module_path]
            for name in sorted(mod.classes):
                ci = mod.classes[name]
                for site in ci.value_sites:
                    yield (
                        module_path, site.line, site.col,
                        f"{ci.name}.{site.method}() stores {site.kind} "
                        f"in attribute '{site.attr}' -- unsnapshottable "
                        f"state must not live on simulation objects",
                    )


class ModuleLevelState(StateRule):
    code = "ST003"
    name = "module-level-state"
    description = (
        "module- or class-level mutable state in a simulation package "
        "-- shard worker forks and snapshot restore cannot capture it, "
        "so runs would diverge (ALL_CAPS literal constant tables are "
        "exempt; stateful factories like itertools.count() never are)"
    )

    def check(self, inv: StateInventory) -> Iterator[Finding]:
        for module_path in sorted(inv.modules):
            mod = inv.modules[module_path]
            for binding in mod.module_mutable:
                where = (
                    f"class {binding.scope}" if binding.scope
                    else "module"
                )
                yield (
                    module_path, binding.line, binding.col,
                    f"{where}-level mutable state '{binding.name}' "
                    f"({binding.kind}) -- move it onto a component or "
                    f"allowlist it with a written justification",
                )
            for name, line, col in mod.global_stmts:
                yield (
                    module_path, line, col,
                    f"'global {name}' rebinds module state from inside "
                    f"a simulation package -- fork/restore cannot "
                    f"capture it",
                )


class UnmanagedRNG(StateRule):
    code = "ST004"
    name = "unmanaged-rng"
    description = (
        "an RNG is constructed outside the sim/rng.py named-stream "
        "facade -- its state cannot be captured/restored; derive a "
        "substream from the system root instead"
    )

    def check(self, inv: StateInventory) -> Iterator[Finding]:
        for module_path in sorted(inv.modules):
            mod = inv.modules[module_path]
            for callee, line, col in mod.rng_calls:
                yield (
                    module_path, line, col,
                    f"RNG constructed via {callee}() outside the "
                    f"named-stream facade -- use "
                    f"DeterministicRNG.substream() from the system "
                    f"root so snapshot/restore can capture its state",
                )


class UnownedAlias(StateRule):
    code = "ST005"
    name = "unowned-alias"
    description = (
        "a mutable container passed into __init__ is stored as an "
        "attribute without registered ownership -- aliasing across "
        "components breaks per-object restore; declare the attribute "
        "in _snapshot_owns_ (sole owner) or _snapshot_borrowed_ "
        "(owner registered elsewhere)"
    )

    def check(self, inv: StateInventory) -> Iterator[Finding]:
        for module_path in sorted(inv.modules):
            mod = inv.modules[module_path]
            for name in sorted(mod.classes):
                ci = mod.classes[name]
                sanctioned = set(ci.borrowed) | set(ci.owned)
                for site in ci.alias_sites:
                    if site.attr in sanctioned:
                        continue
                    yield (
                        module_path, site.line, site.col,
                        f"{ci.name}.__init__ stores mutable container "
                        f"parameter '{site.param}' as attribute "
                        f"'{site.attr}' without registered ownership "
                        f"-- declare it in _snapshot_owns_ or "
                        f"_snapshot_borrowed_",
                    )


STATE_RULES: Tuple[StateRule, ...] = (
    UndeclaredAttribute(),
    UnsnapshottableState(),
    ModuleLevelState(),
    UnmanagedRNG(),
    UnownedAlias(),
)

STATE_RULE_CODES = frozenset(rule.code for rule in STATE_RULES)
