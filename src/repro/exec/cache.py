"""On-disk result cache for simulation runs.

A full figure harness replays the same (app, design, config, seed, scale)
cells over and over while only one knob changes; simulation is
deterministic, so every repeated cell is wasted work.  The cache stores
the :class:`~repro.analysis.metrics.RunMetrics` of finished cells as JSON
files keyed by a fingerprint of everything that can influence the result:

* the application name, workload ``scale`` and ``seed``,
* the full :class:`~repro.config.SystemConfig` (canonical JSON of every
  field, enums by value),
* a *code version* -- a hash over the ``repro`` package sources -- so any
  model change invalidates the whole cache.

JSON round-trips Python ints and floats exactly, so a cache hit is
bit-identical to the fresh run that produced it; tests assert this.

The cache directory defaults to ``.ndpbridge-cache/`` under the current
working directory and can be moved with ``NDPBRIDGE_CACHE_DIR`` or
disabled entirely with ``NDPBRIDGE_CACHE=0``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from ..analysis.metrics import RunMetrics
from ..config import SystemConfig
from ..energy import EnergyBreakdown

#: Bump to invalidate caches when the serialization format changes.
FORMAT_VERSION = 1

#: Every field :func:`cell_key` can put into the key blob.  The simrace
#: fingerprint registry (:mod:`repro.race.fingerprints`) declares which
#: environment knobs influence results and which cache-key field carries
#: each one; the cross-check below fails at import time if a knob claims
#: a field this module does not actually hash, closing the gap that let
#: ``NDPBRIDGE_SHARDS`` poison the cache before it became a key field.
CELL_KEY_FIELDS = (
    "format",
    "app",
    "design",
    "config",
    "scale",
    "seed",
    "verify",
    "shards",
    "partition",
    "code",
    "snapshot_at",
    "openloop",
)


def _check_fingerprint_registry() -> None:
    from ..race.fingerprints import fingerprint_field_of

    for knob, field in fingerprint_field_of().items():
        if field not in CELL_KEY_FIELDS:
            raise RuntimeError(
                f"environment knob {knob} declares cache-key field "
                f"{field!r}, but cell_key() does not hash such a field "
                f"-- result caching would ignore the knob"
            )


_check_fingerprint_registry()

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of the ``repro`` package sources (computed once per process).

    Any edit to the model invalidates previously cached results -- the
    cache must never survive a behaviour change.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _code_version = h.hexdigest()[:16]
    return _code_version


def _canonical(obj: object) -> object:
    """Reduce config values to a deterministic JSON-safe form."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    return obj


def config_fingerprint(config: SystemConfig) -> str:
    """Deterministic digest of every configuration field."""
    blob = json.dumps(_canonical(config), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def cell_key(
    app: str,
    config: SystemConfig,
    scale: float,
    seed: int,
    verify: bool = True,
    shards: int = 1,
    partition: str = "",
    snapshot_at: "Optional[int]" = None,
    openloop: "Optional[object]" = None,
) -> str:
    """Cache key for one simulation cell.

    ``shards``/``partition`` fingerprint sharded execution: an N-shard
    run simulates a different machine than the serial run of the same
    config, so its results must never alias the serial cell.  The
    partition hash (see :class:`repro.sim.PartitionPlan`) covers the
    window/lookahead parameters as well as the split itself.

    ``snapshot_at`` fingerprints snapshot-resume execution (the cell is
    paused, snapshotted, and finished from the restored clone).  Its
    metrics are asserted bit-identical to the plain cell's, but a cache
    hit on the plain key would skip the very equivalence the cell
    exists to exercise -- so it gets its own key.  ``None`` (the plain
    path) is omitted from the blob, preserving existing cache keys.

    ``openloop`` fingerprints open-loop request driving: the
    :class:`~repro.workloads.openloop.OpenLoopSpec` (tenants, arrival
    processes, skew schedules, warm-up) is canonicalized into the blob,
    so two cells differing in any workload knob never alias.  ``None``
    (closed-loop) is likewise omitted.
    """
    fields: Dict[str, object] = {
        "format": FORMAT_VERSION,
        "app": app,
        "design": config.design.value,
        "config": config_fingerprint(config),
        "scale": scale,
        "seed": seed,
        "verify": verify,
        "shards": shards,
        "partition": partition,
        "code": code_version(),
    }
    if snapshot_at is not None:
        fields["snapshot_at"] = snapshot_at
    if openloop is not None:
        fields["openloop"] = _canonical(openloop)
    blob = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# RunMetrics <-> JSON (exact round-trip; as_dict() drops fields)
# ----------------------------------------------------------------------
def metrics_to_payload(m: RunMetrics) -> Dict[str, object]:
    return {
        "design": m.design,
        "app": m.app,
        "makespan": m.makespan,
        "avg_unit_time": m.avg_unit_time,
        "max_unit_time": m.max_unit_time,
        "wait_fraction": m.wait_fraction,
        "total_busy_cycles": m.total_busy_cycles,
        "tasks_executed": m.tasks_executed,
        "task_messages": m.task_messages,
        "data_messages": m.data_messages,
        "energy": (
            None
            if m.energy is None
            else {
                "core_sram_pj": m.energy.core_sram_pj,
                "local_dram_pj": m.energy.local_dram_pj,
                "comm_dram_pj": m.energy.comm_dram_pj,
                "static_pj": m.energy.static_pj,
            }
        ),
        "extra": dict(m.extra),
    }


def metrics_from_payload(payload: Dict[str, Any]) -> RunMetrics:
    energy = payload.get("energy")
    return RunMetrics(
        design=payload["design"],
        app=payload["app"],
        makespan=payload["makespan"],
        avg_unit_time=payload["avg_unit_time"],
        max_unit_time=payload["max_unit_time"],
        wait_fraction=payload["wait_fraction"],
        total_busy_cycles=payload["total_busy_cycles"],
        tasks_executed=payload["tasks_executed"],
        task_messages=payload["task_messages"],
        data_messages=payload["data_messages"],
        energy=None if energy is None else EnergyBreakdown(**energy),
        extra=dict(payload.get("extra", {})),
    )


class ResultCache:
    """One JSON file per finished cell under ``root``."""

    def __init__(self, root: "os.PathLike[str] | str") -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def from_env() -> Optional["ResultCache"]:
        """The default cache, honouring the environment knobs.

        ``NDPBRIDGE_CACHE=0`` disables caching (returns ``None``);
        ``NDPBRIDGE_CACHE_DIR`` relocates the cache directory.
        """
        if os.environ.get("NDPBRIDGE_CACHE", "1") in ("0", "off", "no"):
            return None
        root = os.environ.get("NDPBRIDGE_CACHE_DIR", ".ndpbridge-cache")
        return ResultCache(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunMetrics]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return metrics_from_payload(payload["metrics"])

    def put(self, key: str, metrics: RunMetrics) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"format": FORMAT_VERSION,
                   "metrics": metrics_to_payload(metrics)}
        # Write-then-rename so a crashed/parallel writer never leaves a
        # torn file behind; concurrent writers of the same key agree on
        # the contents anyway (determinism).
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.json"):
                path.unlink()
                removed += 1
        return removed
