"""Parallel, cached execution of simulation cells.

The benchmark matrix is embarrassingly parallel: every (app, design)
cell is an independent deterministic simulation.  This module fans the
cells out over a :class:`concurrent.futures.ProcessPoolExecutor`, backed
by the on-disk :class:`~repro.exec.cache.ResultCache`, and reassembles
results in request order so callers see exactly what the old serial loop
produced.

Worker processes rebuild the whole system from the pickled
:class:`~repro.config.SystemConfig`; nothing mutable crosses the process
boundary, so a cell's metrics are bit-identical whether it ran in-process,
in a worker, or came from the cache (the determinism tests assert all
three).

Environment knobs:

* ``NDPBRIDGE_JOBS`` -- worker count (default: the machine's CPU count;
  ``1`` forces the serial in-process path),
* ``NDPBRIDGE_CACHE_DIR`` / ``NDPBRIDGE_CACHE=0`` -- see
  :mod:`repro.exec.cache`.

Every knob read here is declared in the simrace fingerprint registry
(:mod:`repro.race.fingerprints`): knobs that influence results must map
onto a cache-key field, and pure execution knobs (like these) carry a
justification for why they cannot change a cached value.  The RC003
analyzer rule flags any ``os.environ`` read missing from the registry.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.metrics import RunMetrics
from ..config import Design, SystemConfig
from ..workloads.openloop import OpenLoopSpec
from .cache import ResultCache, cell_key, metrics_from_payload, \
    metrics_to_payload

_UNSET = object()


@dataclass(frozen=True)
class CellRequest:
    """One simulation cell: everything needed to run it anywhere.

    ``shards > 1`` runs the cell on the sharded engine (inline inside
    its worker -- the cell pool is already the process-level
    parallelism); the cache key then includes the shard count and the
    partition-map hash so sharded results never alias serial ones.

    ``snapshot_at`` (serial cells only) routes execution through
    :func:`repro.state.snapshot.run_app_with_snapshot`: pause at that
    cycle, snapshot, and finish from the restored clone -- exercising
    the checkpoint machinery on real workloads.  The metrics are
    bit-identical to the plain cell by construction (the snapshot
    oracle asserts it), but the key fingerprints ``snapshot_at`` so
    the equivalence actually runs instead of hitting the plain cache.
    """

    app: str
    config: SystemConfig
    scale: float
    seed: int
    verify: bool = True
    shards: int = 1
    snapshot_at: Optional[int] = None
    #: An :class:`~repro.workloads.openloop.OpenLoopSpec` switches the
    #: cell to open-loop request driving via
    #: :func:`repro.runtime.requests.run_openloop`; the spec is part of
    #: the cache key, so open-loop cells cache/shard like closed-loop
    #: ones without ever aliasing them.
    openloop: Optional[OpenLoopSpec] = None

    @property
    def key(self) -> str:
        partition = ""
        if self.shards > 1:
            from ..sim.partition import plan_partition

            partition = plan_partition(self.config, self.shards).plan_hash
        return cell_key(
            self.app, self.config, self.scale, self.seed, self.verify,
            shards=self.shards, partition=partition,
            snapshot_at=self.snapshot_at, openloop=self.openloop,
        )


def _execute_cell(request: CellRequest) -> Dict[str, object]:
    """Run one cell and return its metrics as a JSON-safe payload.

    Module-level so it pickles for worker processes.  Returning the
    payload (not the RunMetrics) keeps the wire format identical to the
    cache format.
    """
    from ..apps import make_app
    from ..runtime.runner import run_app

    if request.openloop is not None:
        from ..runtime.requests import run_openloop

        result = run_openloop(
            request.app, request.config, request.openloop,
            scale=request.scale, seed=request.seed, verify=request.verify,
            shards=request.shards if request.shards > 1 else None,
            snapshot_at=request.snapshot_at, parallel=False,
        )
        return metrics_to_payload(result.metrics)
    if request.shards > 1:
        from ..runtime.shards import run_app_sharded

        if request.snapshot_at is not None:
            raise ValueError(
                "snapshot_at requires a serial cell (shards=1); "
                "sharded checkpoints go through BarrierSnapshotter"
            )
        result = run_app_sharded(
            request.app, request.config, scale=request.scale,
            seed=request.seed, shards=request.shards,
            verify=request.verify, parallel=False,
        )
        return metrics_to_payload(result.metrics)
    if request.snapshot_at is not None:
        from ..state.snapshot import run_app_with_snapshot

        app = make_app(request.app, scale=request.scale, seed=request.seed)
        forked, _ = run_app_with_snapshot(
            app, request.config, snapshot_at=request.snapshot_at,
            verify=request.verify,
        )
        return metrics_to_payload(forked.metrics)
    app = make_app(request.app, scale=request.scale, seed=request.seed)
    # shards is pinned from the request (never the NDPBRIDGE_SHARDS env
    # knob): the cache key fingerprints request.shards, so an env-routed
    # sharded run here would poison serial cache entries.
    result = run_app(app, request.config, verify=request.verify, shards=1)
    return metrics_to_payload(result.metrics)


def default_jobs() -> int:
    """Worker count from ``NDPBRIDGE_JOBS``, else the CPU count."""
    env = os.environ.get("NDPBRIDGE_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def execute_cells(
    requests: Sequence[CellRequest],
    jobs: Optional[int] = None,
    cache: "Optional[ResultCache]" = _UNSET,  # type: ignore[assignment]
    on_cell: Optional[Callable[[CellRequest, RunMetrics], None]] = None,
) -> List[RunMetrics]:
    """Execute every request, returning metrics in request order.

    Cache hits are returned without simulating; misses run in parallel
    across ``jobs`` worker processes (serially in-process when ``jobs``
    is 1 or only one miss exists).  ``on_cell`` fires once per request in
    request order after all cells finish.
    """
    if jobs is None:
        jobs = default_jobs()
    if cache is _UNSET:
        cache = ResultCache.from_env()

    results: List[Optional[RunMetrics]] = [None] * len(requests)
    miss_indices: List[int] = []
    for i, request in enumerate(requests):
        if cache is not None:
            hit = cache.get(request.key)
            if hit is not None:
                results[i] = hit
                continue
        miss_indices.append(i)

    if miss_indices:
        misses = [requests[i] for i in miss_indices]
        if jobs <= 1 or len(misses) == 1:
            payloads = [_execute_cell(r) for r in misses]
        else:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(misses))
            ) as pool:
                payloads = list(pool.map(_execute_cell, misses))
        for i, request, payload in zip(miss_indices, misses, payloads):
            metrics = metrics_from_payload(payload)
            results[i] = metrics
            if cache is not None:
                cache.put(request.key, metrics)

    out = [m for m in results if m is not None]
    assert len(out) == len(requests)
    if on_cell is not None:
        for request, metrics in zip(requests, out):
            on_cell(request, metrics)
    return out


def run_matrix(
    apps: Sequence[str],
    designs: Sequence[Design],
    config_of: Callable[[Design], SystemConfig],
    scale: float,
    seed: int,
    jobs: Optional[int] = None,
    cache: "Optional[ResultCache]" = _UNSET,  # type: ignore[assignment]
    verify: bool = True,
) -> Dict[str, Dict[str, RunMetrics]]:
    """Run the (app x design) matrix and key results like the old serial
    loop: ``results[app_name][design.value]``."""
    requests = [
        CellRequest(
            app=app,
            config=config_of(design),
            scale=scale,
            seed=seed,
            verify=verify,
        )
        for app in apps
        for design in designs
    ]
    metrics = execute_cells(requests, jobs=jobs, cache=cache)
    results: Dict[str, Dict[str, RunMetrics]] = {}
    it = iter(metrics)
    for app in apps:
        results[app] = {}
        for design in designs:
            results[app][design.value] = next(it)
    return results
