"""Persistent per-shard worker processes for the sharded engine.

:mod:`repro.exec.runner` fans independent *cells* over a throwaway
``ProcessPoolExecutor`` -- fine when each job is one self-contained
simulation.  Sharded runs are different: every shard holds a live
simulator whose state must survive thousands of window barriers, so this
module keeps one long-lived forked worker per shard and speaks a tiny
command protocol over a pipe (``begin`` / ``window`` / ``control`` /
``complete`` / ``finalize`` / ``exit``).  The same environment knobs as
the cell pool apply (``NDPBRIDGE_JOBS`` gates whether parallel mode is
worth entering at all; ``NDPBRIDGE_SANITIZE`` is inherited by the forked
children, so sanitized sharded runs audit every shard).

Commands are broadcast: the parent sends to *all* workers first, then
collects replies in shard order -- windows genuinely overlap across
cores, and reply order (hence result order) is deterministic regardless
of which worker finishes first.

Under ``NDPBRIDGE_SANITIZE=1`` every pipe additionally carries a
:class:`~repro.race.ledger.BoundaryLedger` on *both* ends: running
sha256 digests over a canonical encoding of each command and reply.  At
shutdown the worker ships its digests back and the parent cross-checks
them, proving both sides observed identical payload streams (the
runtime half of the simrace analyzer's process-boundary contract).
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from types import TracebackType
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Type

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.process import BaseProcess

    from ..race.ledger import BoundaryLedger
    from ..sim.sharded import (
        BoundaryMessage,
        ControlDecision,
        ShardReport,
        ShardRuntime,
    )

__all__ = ["ForkTransport", "ShardWorkerError"]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the remote traceback text."""


def _worker_main(
    conn: "Connection",
    build: "Callable[[], ShardRuntime]",
    ledger_on: bool,
) -> None:
    """Worker loop: build the runtime, then serve barrier commands."""
    ledger: "Optional[BoundaryLedger]" = None
    if ledger_on:
        from ..race.ledger import BoundaryLedger

        ledger = BoundaryLedger()

    def send(reply: object) -> None:
        if ledger is not None:
            ledger.note_sent(reply)
        conn.send(reply)

    runtime: "Optional[ShardRuntime]" = None
    try:
        runtime = build()
    except BaseException:
        send(("err", traceback.format_exc()))
        conn.close()
        return
    send(("ok", None))
    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        if ledger is not None:
            ledger.note_received(command)
        op = command[0]
        try:
            if op == "begin":
                send(("ok", runtime.begin()))
            elif op == "window":
                send(("ok", runtime.run_window(command[1], command[2])))
            elif op == "control":
                send(("ok", runtime.apply_control(command[1])))
            elif op == "complete":
                send(("ok", runtime.run_complete()))
            elif op == "finalize":
                send(("ok", runtime.finalize()))
            elif op == "exit":
                if ledger is not None:
                    # The ledger handshake itself stays outside both
                    # ledgers (it carries the digests being compared).
                    conn.send(("ledger", ledger.digests()))
                break
            else:  # pragma: no cover - protocol bug
                send(("err", f"unknown shard worker op {op!r}"))
        except BaseException:
            send(("err", traceback.format_exc()))
    conn.close()


def _fork_context() -> "mp.context.BaseContext":
    """Prefer fork (cheap, inherits the built model's modules and env)."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context()


class ForkTransport:
    """One persistent forked worker per shard builder.

    Implements the same broadcast interface as the inline transport in
    :mod:`repro.sim.sharded`, so the sharded engine can swap transports
    without changing the barrier protocol.

    ``ledger`` forces the boundary hash ledger on (``True``) or off
    (``False``); the default (``None``) follows ``NDPBRIDGE_SANITIZE``.
    """

    def __init__(
        self,
        builders: "Sequence[Callable[[], ShardRuntime]]",
        ledger: Optional[bool] = None,
    ) -> None:
        if ledger is None:
            from ..sim.engine import sanitize_from_env

            ledger = sanitize_from_env()
        self._builders = list(builders)
        self._ledger_on = bool(ledger)
        self._procs: "List[BaseProcess]" = []
        self._conns: "List[Connection]" = []
        self._ledgers: "List[Optional[BoundaryLedger]]" = []

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ForkTransport":
        ctx = _fork_context()
        try:
            for build in self._builders:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, build, self._ledger_on),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
                if self._ledger_on:
                    from ..race.ledger import BoundaryLedger

                    self._ledgers.append(BoundaryLedger())
                else:
                    self._ledgers.append(None)
            # Each worker acks (or reports a build failure) exactly once.
            for conn, ledger in zip(self._conns, self._ledgers):
                self._recv(conn, ledger)
        except BaseException:
            self._shutdown(verify=False)
            raise
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        # Only cross-check the ledgers on a clean exit: an in-flight
        # exception already explains any stream divergence.
        self._shutdown(verify=exc_type is None)

    def _shutdown(self, verify: bool = False) -> None:
        worker_digests: "Dict[int, object]" = {}
        for shard_id, (conn, ledger) in enumerate(
            zip(self._conns, self._ledgers)
        ):
            try:
                command = ("exit",)
                if ledger is not None:
                    ledger.note_sent(command)
                conn.send(command)
                if ledger is not None and verify:
                    status, value = conn.recv()
                    if status == "ledger":
                        worker_digests[shard_id] = value
            except (OSError, ValueError, EOFError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        ledgers = self._ledgers
        self._procs = []
        self._conns = []
        self._ledgers = []
        if verify and self._ledger_on:
            from ..race.ledger import check_ledgers

            for shard_id, ledger in enumerate(ledgers):
                if ledger is None:
                    continue
                worker = worker_digests.get(shard_id)
                if worker is None:
                    raise ShardWorkerError(
                        f"shard {shard_id} worker exited without its "
                        f"boundary ledger -- payload streams unverified"
                    )
                check_ledgers(shard_id, ledger.digests(), worker)  # type: ignore[arg-type]

    # -- protocol ------------------------------------------------------
    @staticmethod
    def _recv(
        conn: "Connection", ledger: "Optional[BoundaryLedger]" = None
    ) -> object:
        try:
            reply = conn.recv()
        except EOFError as exc:  # pragma: no cover - worker died
            raise ShardWorkerError("shard worker exited unexpectedly") from exc
        if ledger is not None:
            ledger.note_received(reply)
        status, value = reply
        if status == "err":
            raise ShardWorkerError(f"shard worker failed:\n{value}")
        return value

    def _broadcast(self, commands: Sequence[tuple]) -> List[object]:
        """Send one command per worker, then collect replies in order."""
        for conn, ledger, command in zip(
            self._conns, self._ledgers, commands
        ):
            if ledger is not None:
                ledger.note_sent(command)
            conn.send(command)
        return [
            self._recv(conn, ledger)
            for conn, ledger in zip(self._conns, self._ledgers)
        ]

    # -- transport interface (mirrors _InlineTransport) ----------------
    def begin_all(self) -> "List[ShardReport]":
        out = self._broadcast([("begin",)] * len(self._conns))
        return out  # type: ignore[return-value]

    def window_all(
        self,
        until: int,
        inboxes: "Sequence[Sequence[BoundaryMessage]]",
    ) -> "List[ShardReport]":
        commands = [
            ("window", until, list(inbox)) for inbox in inboxes
        ]
        out = self._broadcast(commands)
        return out  # type: ignore[return-value]

    def control_all(self, decision: "ControlDecision") -> "List[ShardReport]":
        out = self._broadcast([("control", decision)] * len(self._conns))
        return out  # type: ignore[return-value]

    def run_complete_all(self) -> None:
        self._broadcast([("complete",)] * len(self._conns))

    def finalize_all(self) -> "List[Dict[str, object]]":
        out = self._broadcast([("finalize",)] * len(self._conns))
        return out  # type: ignore[return-value]
