"""Persistent per-shard worker processes for the sharded engine.

:mod:`repro.exec.runner` fans independent *cells* over a throwaway
``ProcessPoolExecutor`` -- fine when each job is one self-contained
simulation.  Sharded runs are different: every shard holds a live
simulator whose state must survive thousands of window barriers, so this
module keeps one long-lived forked worker per shard and speaks a tiny
command protocol over a pipe (``begin`` / ``window`` / ``control`` /
``complete`` / ``finalize`` / ``exit``).  The same environment knobs as
the cell pool apply (``NDPBRIDGE_JOBS`` gates whether parallel mode is
worth entering at all; ``NDPBRIDGE_SANITIZE`` is inherited by the forked
children, so sanitized sharded runs audit every shard).

Commands are broadcast: the parent sends to *all* workers first, then
collects replies in shard order -- windows genuinely overlap across
cores, and reply order (hence result order) is deterministic regardless
of which worker finishes first.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from types import TracebackType
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Type

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.process import BaseProcess

    from ..sim.sharded import (
        BoundaryMessage,
        ControlDecision,
        ShardReport,
        ShardRuntime,
    )

__all__ = ["ForkTransport", "ShardWorkerError"]


class ShardWorkerError(RuntimeError):
    """A shard worker raised; carries the remote traceback text."""


def _worker_main(
    conn: "Connection", build: "Callable[[], ShardRuntime]"
) -> None:
    """Worker loop: build the runtime, then serve barrier commands."""
    runtime: "Optional[ShardRuntime]" = None
    try:
        runtime = build()
    except BaseException:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))
    while True:
        try:
            command = conn.recv()
        except EOFError:
            break
        op = command[0]
        try:
            if op == "begin":
                conn.send(("ok", runtime.begin()))
            elif op == "window":
                conn.send(("ok", runtime.run_window(command[1], command[2])))
            elif op == "control":
                conn.send(("ok", runtime.apply_control(command[1])))
            elif op == "complete":
                conn.send(("ok", runtime.run_complete()))
            elif op == "finalize":
                conn.send(("ok", runtime.finalize()))
            elif op == "exit":
                break
            else:  # pragma: no cover - protocol bug
                conn.send(("err", f"unknown shard worker op {op!r}"))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
    conn.close()


def _fork_context() -> "mp.context.BaseContext":
    """Prefer fork (cheap, inherits the built model's modules and env)."""
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return mp.get_context()


class ForkTransport:
    """One persistent forked worker per shard builder.

    Implements the same broadcast interface as the inline transport in
    :mod:`repro.sim.sharded`, so the sharded engine can swap transports
    without changing the barrier protocol.
    """

    def __init__(
        self, builders: "Sequence[Callable[[], ShardRuntime]]"
    ) -> None:
        self._builders = list(builders)
        self._procs: "List[BaseProcess]" = []
        self._conns: "List[Connection]" = []

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ForkTransport":
        ctx = _fork_context()
        try:
            for build in self._builders:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main, args=(child_conn, build), daemon=True
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            # Each worker acks (or reports a build failure) exactly once.
            for conn in self._conns:
                self._recv(conn)
        except BaseException:
            self._shutdown()
            raise
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._shutdown()

    def _shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, ValueError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._procs = []
        self._conns = []

    # -- protocol ------------------------------------------------------
    @staticmethod
    def _recv(conn: "Connection") -> object:
        try:
            status, value = conn.recv()
        except EOFError as exc:  # pragma: no cover - worker died
            raise ShardWorkerError("shard worker exited unexpectedly") from exc
        if status == "err":
            raise ShardWorkerError(f"shard worker failed:\n{value}")
        return value

    def _broadcast(self, commands: Sequence[tuple]) -> List[object]:
        """Send one command per worker, then collect replies in order."""
        for conn, command in zip(self._conns, commands):
            conn.send(command)
        return [self._recv(conn) for conn in self._conns]

    # -- transport interface (mirrors _InlineTransport) ----------------
    def begin_all(self) -> "List[ShardReport]":
        out = self._broadcast([("begin",)] * len(self._conns))
        return out  # type: ignore[return-value]

    def window_all(
        self,
        until: int,
        inboxes: "Sequence[Sequence[BoundaryMessage]]",
    ) -> "List[ShardReport]":
        commands = [
            ("window", until, list(inbox)) for inbox in inboxes
        ]
        out = self._broadcast(commands)
        return out  # type: ignore[return-value]

    def control_all(self, decision: "ControlDecision") -> "List[ShardReport]":
        out = self._broadcast([("control", decision)] * len(self._conns))
        return out  # type: ignore[return-value]

    def run_complete_all(self) -> None:
        self._broadcast([("complete",)] * len(self._conns))

    def finalize_all(self) -> "List[Dict[str, object]]":
        out = self._broadcast([("finalize",)] * len(self._conns))
        return out  # type: ignore[return-value]
