"""Parallel + cached execution of simulation cells.

``repro.exec`` decouples *what* to simulate (a :class:`CellRequest`) from
*where* it runs (in-process, a worker pool, or straight out of the
on-disk result cache).  The benchmark harness and the parameter sweeps
are both built on it; see :mod:`repro.exec.runner` for the execution
model and :mod:`repro.exec.cache` for the cache key design.
"""

from .cache import (
    ResultCache,
    cell_key,
    code_version,
    config_fingerprint,
    metrics_from_payload,
    metrics_to_payload,
)
from .runner import CellRequest, default_jobs, execute_cells, run_matrix

__all__ = [
    "CellRequest",
    "ResultCache",
    "cell_key",
    "code_version",
    "config_fingerprint",
    "default_jobs",
    "execute_cells",
    "metrics_from_payload",
    "metrics_to_payload",
    "run_matrix",
]
