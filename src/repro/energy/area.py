"""Area model for the added hardware (Section V-A, "Hardware cost").

The paper synthesizes the added logic in TSMC 28 nm and models SRAM with
CACTI 7.0, reporting:

* bridge logic: 0.00252 mm^2; bridge SRAM (1.25 MB total): 1.46 mm^2 --
  together 1.46% of a rank buffer chip;
* per-NDP-unit logic: 0.000134 mm^2 plus 20.2 kB SRAM;
* the load-balancing additions (toArrive counter, sketch, reserve-queue
  bitmap) are < 2.2 kB SRAM per unit;
* the rank-level dataBorrowed table (1 MB, 16-way) is 1.18 mm^2 = 1.18%
  of the buffer chip;
* the split-DIMM variant replicates router + command generator per DB
  chip: 0.0201 mm^2 of logic for eight DBs.

This module recomputes those totals from the configured structure sizes,
using a bytes-per-mm^2 density fitted to the paper's published pairs, so
area scales consistently when the configuration sweeps structure sizes
(Fig. 16(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig

#: SRAM density implied by the paper's 1.25 MB <-> 1.46 mm^2 pair.
SRAM_BYTES_PER_MM2 = (1.25 * 1024 * 1024) / 1.46

#: Logic blocks, from the paper's synthesis results (mm^2).
BRIDGE_LOGIC_MM2 = 0.00252
UNIT_LOGIC_MM2 = 0.000134
SPLIT_DIMM_LOGIC_MM2 = 0.0201

#: Reference rank buffer-chip area implied by "1.46 mm^2 is 1.46%".
BUFFER_CHIP_MM2 = 100.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Added silicon per bridge and per NDP unit."""

    bridge_logic_mm2: float
    bridge_sram_mm2: float
    unit_logic_mm2: float
    unit_sram_mm2: float

    @property
    def bridge_total_mm2(self) -> float:
        return self.bridge_logic_mm2 + self.bridge_sram_mm2

    @property
    def unit_total_mm2(self) -> float:
        return self.unit_logic_mm2 + self.unit_sram_mm2

    @property
    def bridge_buffer_chip_fraction(self) -> float:
        """Bridge additions as a fraction of the rank buffer chip."""
        return self.bridge_total_mm2 / BUFFER_CHIP_MM2


def bridge_sram_bytes(config: SystemConfig) -> int:
    """Total SRAM the level-1 bridge adds (Table I)."""
    topo = config.topology
    scale = config.balance.metadata_scale
    return int(
        config.bridge.scatter_buffer_bytes_per_bank * topo.banks_per_rank
        + config.bridge.backup_buffer_bytes
        + config.bridge.mailbox_bytes
        + config.bridge.databorrowed_bytes * scale
    )


def unit_sram_bytes(config: SystemConfig) -> int:
    """SRAM the NDP unit controller adds (metadata + sketch + counters)."""
    scale = config.balance.metadata_scale
    sketch_bytes = (
        config.sketch.buckets * config.sketch.entries_per_bucket
        * (8 + config.sketch.counter_bytes)
    )
    reserve_bitmap = config.unit_mem.reserved_queue_chunks // 8
    to_arrive_counter = 4
    return int(
        config.sram.islent_bytes * scale
        + config.sram.databorrowed_bytes * scale
        + sketch_bytes + reserve_bitmap + to_arrive_counter
    )


def estimate_area(config: SystemConfig) -> AreaBreakdown:
    """Recompute the Section V-A area numbers for this configuration."""
    bridge_logic = BRIDGE_LOGIC_MM2
    if config.comm.split_dimm:
        bridge_logic += SPLIT_DIMM_LOGIC_MM2
    return AreaBreakdown(
        bridge_logic_mm2=bridge_logic,
        bridge_sram_mm2=bridge_sram_bytes(config) / SRAM_BYTES_PER_MM2,
        unit_logic_mm2=UNIT_LOGIC_MM2,
        unit_sram_mm2=unit_sram_bytes(config) / SRAM_BYTES_PER_MM2,
    )
