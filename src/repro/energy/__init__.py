"""Energy model."""

from .accounting import EnergyBreakdown, account_energy
from .area import AreaBreakdown, estimate_area

__all__ = ["EnergyBreakdown", "account_energy", "AreaBreakdown", "estimate_area"]
