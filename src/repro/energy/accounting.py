"""Post-run energy accounting (Section VII / Fig. 13).

Energy is reconstructed from the run's statistics registry with the
constants of :class:`~repro.config.EnergyConfig`:

* **core + SRAM** -- busy core cycles at 10 mW plus per-access SRAM energy
  for the caches, sketch and metadata tables;
* **local DRAM** -- 64-bit bank words moved by the cores' own DMA;
* **communication DRAM** -- bank words moved by bridges/host gathers and
  scatters, plus bytes on the off-chip links;
* **static** -- leakage/background power of units and bridges over the
  makespan.

This mirrors the paper's four-way breakdown in Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import Design, SystemConfig
from ..sim import StatsRegistry


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in picojoules."""

    core_sram_pj: float
    local_dram_pj: float
    comm_dram_pj: float
    static_pj: float

    @property
    def total_pj(self) -> float:
        return (
            self.core_sram_pj + self.local_dram_pj
            + self.comm_dram_pj + self.static_pj
        )

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def as_dict(self) -> dict:
        return {
            "core_sram_pj": self.core_sram_pj,
            "local_dram_pj": self.local_dram_pj,
            "comm_dram_pj": self.comm_dram_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
        }


def _mw_to_pj_per_cycle(milliwatts: float, cycle_ns: float) -> float:
    # 1 mW = 1e-3 J/s = 1e9 pJ/s; one cycle lasts cycle_ns * 1e-9 s.
    return milliwatts * cycle_ns


def account_energy(
    config: SystemConfig,
    stats: StatsRegistry,
    makespan_cycles: int,
    total_busy_cycles: int,
) -> EnergyBreakdown:
    """Build the four-way energy breakdown for one finished run."""
    e = config.energy
    cycle_ns = config.cycle_ns

    # Core + SRAM.
    core_pj = total_busy_cycles * _mw_to_pj_per_cycle(
        e.core_power_mw, cycle_ns
    )
    sram_accesses = stats.sum_counters(".sram_accesses")
    core_sram_pj = core_pj + sram_accesses * e.sram_access_pj

    # DRAM bank words, split local vs communication.
    local_words = stats.sum_counters(".local_words_64bit")
    comm_words = stats.sum_counters(".comm_words_64bit")
    local_dram_pj = local_words * e.bank_access_pj_per_64bit
    comm_dram_pj = comm_words * e.bank_access_pj_per_64bit

    # Off-chip movement: every link byte recorded by any Link.
    link_bytes = stats.sum_counters(".bytes")
    comm_dram_pj += link_bytes * e.channel_pj_per_byte

    # Static power: all units plus one bridge per rank (and the level-2
    # logic, folded into the same constant) for the whole run.
    n_units = config.topology.total_units
    n_bridges = config.topology.ranks
    if config.design in (Design.B, Design.W, Design.O):
        static_mw = (
            n_units * e.static_power_mw_per_unit
            + n_bridges * e.static_power_mw_per_bridge
        )
    else:
        static_mw = n_units * e.static_power_mw_per_unit
    static_pj = makespan_cycles * _mw_to_pj_per_cycle(static_mw, cycle_ns)

    return EnergyBreakdown(
        core_sram_pj=core_sram_pj,
        local_dram_pj=local_dram_pj,
        comm_dram_pj=comm_dram_pj,
        static_pj=static_pj,
    )
