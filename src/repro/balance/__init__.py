"""Load-balancing structures and policies (Section VI)."""

from .metadata import BorrowEntry, DataBorrowedTable, IsLentBitmap
from .policy import ChildLoad, SchedulePlan, SchedulingPolicy
from .reserved_queue import ReservedQueue
from .sketch import HotDataSketch, ObserveResult, SketchEntry

__all__ = [
    "BorrowEntry",
    "DataBorrowedTable",
    "IsLentBitmap",
    "ChildLoad",
    "SchedulePlan",
    "SchedulingPolicy",
    "ReservedQueue",
    "HotDataSketch",
    "ObserveResult",
    "SketchEntry",
]
