"""Migrated-data metadata (Section VI-B).

Two structures track where blocks have gone:

* ``isLent`` -- a bitmap in each home unit, one bit per ``G_xfer`` block,
  set while the block is lent to another unit.  Its SRAM capacity (2 kB by
  default) bounds how much of the bank is *lendable*; blocks beyond the
  tracked range simply cannot be scheduled out, which is exactly the
  capacity/performance trade-off Fig. 16(a) sweeps.
* ``dataBorrowed`` -- a set-associative LRU table.  In a unit it maps an
  original block address to the block's remapped address in the local
  borrowed-data region; in a bridge it maps the block to the receiver unit
  id.  The two levels are kept inclusive by the scheduler.  An LRU
  replacement evicts a borrowed block, which must then be returned home.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional


class IsLentBitmap:
    """One bit per home block: is it currently lent out?"""

    #: bits of SRAM per tracked block
    BITS_PER_BLOCK = 1

    def __init__(self, sram_bytes: int, base_block: int, scale: float = 1.0):
        if sram_bytes <= 0:
            raise ValueError("bitmap SRAM size must be positive")
        self.capacity_blocks = max(1, int(sram_bytes * 8 * scale))
        self.base_block = base_block
        self._lent: set = set()

    def tracks(self, block_id: int) -> bool:
        """Is the block within the bitmap's addressable range?"""
        return 0 <= block_id - self.base_block < self.capacity_blocks

    def is_lent(self, block_id: int) -> bool:
        return block_id in self._lent

    def set_lent(self, block_id: int) -> None:
        if not self.tracks(block_id):
            raise ValueError(
                f"block {block_id} outside isLent range "
                f"[{self.base_block}, {self.base_block + self.capacity_blocks})"
            )
        self._lent.add(block_id)

    def clear_lent(self, block_id: int) -> None:
        self._lent.discard(block_id)

    @property
    def lent_count(self) -> int:
        return len(self._lent)


@dataclass
class BorrowEntry:
    """One dataBorrowed entry: original block -> location."""

    block_id: int
    value: int            # remapped address (unit table) or receiver id (bridge)
    home_unit: int


class DataBorrowedTable:
    """Set-associative LRU table of borrowed blocks.

    ``capacity_bytes / ENTRY_BYTES`` entries are organized into sets of
    ``ways`` entries each; LRU within a set.  ``insert`` returns the evicted
    entry (if any) so the caller can initiate the block's return home --
    the behaviour Section VI-B specifies for replacements.
    """

    ENTRY_BYTES = 16

    def __init__(self, capacity_bytes: int, ways: int, scale: float = 1.0):
        if capacity_bytes <= 0 or ways <= 0:
            raise ValueError("table capacity and ways must be positive")
        total_entries = max(ways, int(capacity_bytes * scale) // self.ENTRY_BYTES)
        self.ways = ways
        self.num_sets = max(1, total_entries // ways)
        # Each set is an OrderedDict used as an LRU list (front = LRU).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity_entries(self) -> int:
        return self.num_sets * self.ways

    def _set_of(self, block_id: int) -> OrderedDict:
        return self._sets[block_id % self.num_sets]

    def lookup(self, block_id: int) -> Optional[BorrowEntry]:
        s = self._set_of(block_id)
        entry = s.get(block_id)
        if entry is None:
            self.misses += 1
            return None
        s.move_to_end(block_id)  # most recently used
        self.hits += 1
        return entry

    def contains(self, block_id: int) -> bool:
        return block_id in self._set_of(block_id)

    def insert(
        self, block_id: int, value: int, home_unit: int
    ) -> Optional[BorrowEntry]:
        """Insert/update an entry; returns the LRU victim if one was evicted."""
        s = self._set_of(block_id)
        if block_id in s:
            s[block_id].value = value
            s.move_to_end(block_id)
            return None
        victim: Optional[BorrowEntry] = None
        if len(s) >= self.ways:
            _, victim = s.popitem(last=False)
            self.evictions += 1
        s[block_id] = BorrowEntry(block_id, value, home_unit)
        return victim

    def remove(self, block_id: int) -> Optional[BorrowEntry]:
        s = self._set_of(block_id)
        return s.pop(block_id, None)

    def entries(self) -> List[BorrowEntry]:
        out: List[BorrowEntry] = []
        for s in self._sets:
            out.extend(s.values())
        return out

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)
